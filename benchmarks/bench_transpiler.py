"""Transpiler bench: lowering the paper's instrumented circuits to ibmqx4.

Times the full device pipeline on each experiment circuit and reports the
gate-count expansion (the NISQ cost the paper's placement choices manage).
"""

import pytest

from benchmarks.conftest import emit
from repro.circuits import library
from repro.core.injector import AssertionInjector
from repro.devices.ibmqx4 import ibmqx4
from repro.transpiler.passes import transpile_for_device

DEVICE = ibmqx4()


def instrumented(kind):
    if kind == "table1":
        injector = AssertionInjector(library.QuantumCircuit(1))
        injector.assert_classical(0, 0)
    elif kind == "table2":
        injector = AssertionInjector(library.bell_pair())
        injector.assert_entangled([0, 1])
    else:
        from repro.circuits.circuit import QuantumCircuit

        program = QuantumCircuit(1)
        program.h(0)
        injector = AssertionInjector(program)
        injector.assert_superposition(0)
    injector.measure_program()
    return injector.circuit


@pytest.mark.benchmark(group="transpiler")
@pytest.mark.parametrize("kind", ["table1", "table2", "sec43"])
def test_transpile_experiment_circuits(benchmark, kind):
    circuit = instrumented(kind)
    lowered = benchmark(transpile_for_device, circuit, DEVICE)
    emit(
        f"{kind}: {circuit.size()} ops -> {lowered.size()} native ops, "
        f"cx: {circuit.count_ops().get('cx', 0)} -> "
        f"{lowered.count_ops().get('cx', 0)}"
    )
    for inst in lowered.data:
        if inst.operation.is_gate:
            assert inst.name in DEVICE.basis_gates
        if inst.name == "cx":
            assert DEVICE.coupling_map.supports(*inst.qubits)
