"""Shared configuration for the benchmark harness.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the regenerated
paper tables next to the timing numbers.

``bench_runtime.py`` cases additionally :func:`record` their wall-clocks
and speedups; at session end they are written to ``BENCH_runtime.json``
in the repo root, so the perf trajectory is machine-readable and can be
tracked across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

#: Case name -> {"baseline_s", "optimized_s", "speedup", ...} fields.
_BENCH_RESULTS: dict = {}

#: Where the machine-readable runtime-bench record lands.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"


def emit(text: str) -> None:
    """Print a regenerated table (visible with ``-s``)."""
    print()
    print(text)


def record(case: str, baseline_s: float, optimized_s: float, **extra) -> None:
    """Record one bench case's wall-clocks (and derived speedup).

    ``extra`` fields (shot counts, worker counts, ...) are stored
    verbatim so the JSON is self-describing.
    """
    _BENCH_RESULTS[case] = dict(
        baseline_s=round(float(baseline_s), 6),
        optimized_s=round(float(optimized_s), 6),
        speedup=round(float(baseline_s) / float(optimized_s), 3)
        if optimized_s > 0
        else None,
        **extra,
    )


def pytest_sessionfinish(session) -> None:
    """Merge every recorded case into ``BENCH_runtime.json`` (if any ran).

    Cases not re-run this session keep their previous record, so a
    partial bench invocation (``-k one_case``) never erases the rest of
    the tracked perf trajectory.
    """
    if not _BENCH_RESULTS:
        return
    cases: dict = {}
    try:
        previous = json.loads(BENCH_JSON_PATH.read_text())
        if isinstance(previous, dict) and isinstance(previous.get("cases"), dict):
            cases = previous["cases"]
    except (OSError, ValueError):
        pass  # no previous record (or corrupt): start fresh
    cases.update(_BENCH_RESULTS)
    payload = {
        "generated_unix": time.time(),
        "cpu_count": os.cpu_count(),
        "cases": dict(sorted(cases.items())),
    }
    BENCH_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
