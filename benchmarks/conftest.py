"""Shared configuration for the benchmark harness.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the regenerated
paper tables next to the timing numbers.
"""

from __future__ import annotations

import pytest


def emit(text: str) -> None:
    """Print a regenerated table (visible with ``-s``)."""
    print()
    print(text)
