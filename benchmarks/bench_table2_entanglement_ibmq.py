"""E4 / Table 2 bench: entanglement assertion on the ibmqx4 model.

Regenerates the eight-row q0q1q2 table, the Bell error rates before/after
assertion filtering, and times the pipeline.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.table2 import run_table2


@pytest.mark.benchmark(group="table2")
def test_table2_entanglement_assertion_ibmq(benchmark):
    result = benchmark(run_table2, shots=8192, seed=2020)
    emit(result.summary())
    # Paper shape: the two correct rows dominate,
    assert result.distribution["000"] + result.distribution["011"] > 0.6
    # raw Bell error in the double-digit regime (paper: 18.4%),
    assert 0.05 < result.raw_error < 0.30
    # and filtering delivers a double-digit relative improvement
    # (paper: 31.5%).
    assert result.filtered_error < result.raw_error
    assert result.improvement > 0.10
