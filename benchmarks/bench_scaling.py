"""A2 bench: assertion overhead and scaling on the stabilizer engine.

Times the fully instrumented GHZ(n) pipeline up to n = 64 and regenerates
the overhead table (ancillas, extra CNOTs, pass rates).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.scaling import run_scaling


@pytest.mark.benchmark(group="scaling")
def test_assertion_scaling_stabilizer(benchmark):
    result = benchmark(run_scaling, sizes=(2, 4, 8, 16, 32, 64), shots=64, seed=5)
    emit(result.summary())
    for n, mode, ancillas, extra_cx, pass_rate, _sec in result.rows:
        assert pass_rate == pytest.approx(1.0)
        if mode == "pairwise":
            assert ancillas == n - 1
            assert extra_cx == 2 * (n - 1)
        else:
            assert ancillas == 1
