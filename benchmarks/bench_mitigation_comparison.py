"""A6 bench: assertion filtering vs readout-error mitigation.

Regenerates the four-technique comparison on the Table 2 Bell workload
under full noise and gate-only noise.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.mitigation_comparison import run_mitigation_comparison


@pytest.mark.benchmark(group="mitigation")
def test_filtering_vs_mitigation(benchmark):
    result = benchmark(run_mitigation_comparison, shots=8192, seed=2020)
    emit(result.summary())
    # Under full noise: every technique beats raw, and combining wins.
    raw = result.error("full noise", "raw")
    assert result.error("full noise", "mitigated") < raw
    assert result.error("full noise", "filtered") < raw
    assert result.error("full noise", "both") < result.error(
        "full noise", "mitigated"
    )
    assert result.error("full noise", "both") < result.error(
        "full noise", "filtered"
    )
    # Under gate-only noise: mitigation is nearly inert, filtering still
    # delivers a large cut — the structural difference between them.
    gate_raw = result.error("gate noise only", "raw")
    gate_mitigated = result.error("gate noise only", "mitigated")
    gate_filtered = result.error("gate noise only", "filtered")
    assert gate_mitigated > gate_raw * 0.8       # barely moves
    assert gate_filtered < gate_raw * 0.6        # large cut
