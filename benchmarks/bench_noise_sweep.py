"""A4 bench: filtering benefit vs noise level (0.5x-2x ibmqx4 calibration).

Regenerates the sweep series for both hardware experiments.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.sweeps import run_noise_sweep


@pytest.mark.benchmark(group="noise-sweep")
def test_filtering_benefit_noise_sweep(benchmark):
    result = benchmark(
        run_noise_sweep, scales=(0.5, 1.0, 2.0), shots=8192, seed=2020
    )
    emit(result.summary())
    for experiment in ("table1", "table2"):
        series = result.series(experiment)
        raws = [raw for _scale, raw, _filtered in series]
        assert raws == sorted(raws)  # error grows with noise
    for _name, _scale, raw, filtered, reduction in result.rows:
        assert filtered < raw
        assert reduction > 0.0
