"""A7 bench: stacked assertions and the auto-correction saturation effect.

Regenerates both detection curves: one-shot bugs saturate at 0.5 (the
paper's projection property repairs survivors), recurring bugs amplify as
1 - 2^-k.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.amplification import run_amplification


@pytest.mark.benchmark(group="amplification")
def test_stacked_assertion_amplification(benchmark):
    result = benchmark(run_amplification, max_k=6)
    emit(result.summary())
    for k in range(1, 7):
        ideal = 1.0 - 2.0 ** (-k)
        # Auto-correction saturates the one-shot curve at exactly 1/2...
        assert result.detection(k, "one-shot") == pytest.approx(0.5, abs=1e-9)
        # ...while a recurring bug follows the ideal amplification curve.
        assert result.detection(k, "recurring") == pytest.approx(ideal, abs=1e-9)
