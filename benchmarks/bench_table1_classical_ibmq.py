"""E3 / Table 1 bench: classical assertion on the ibmqx4 model.

Regenerates the four-row q1q2 table, the raw/filtered error rates and the
relative reduction, and times the full pipeline (build -> transpile ->
exact noisy density-matrix run -> 8192-shot sampling).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.table1 import run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_classical_assertion_ibmq(benchmark):
    result = benchmark(run_table1, shots=8192, seed=2020)
    emit(result.summary())
    # Paper shape (who wins, roughly by how much):
    # - the correct outcome 00 dominates,
    assert result.distribution["00"] > 0.85
    # - raw error sits in the few-percent hardware regime (paper: 3.5%),
    assert 0.01 < result.raw_error < 0.10
    # - filtering on the assertion ancilla reduces it (paper: -28.5%),
    assert result.filtered_error < result.raw_error
    assert result.reduction > 0.10
