"""A5 bench: simulator cross-validation and relative performance.

Runs the same instrumented Bell-assertion workload on all four engines and
times each; correctness of the mutual agreement is asserted alongside.
Engines are resolved by name through the runtime provider, and the
``repro.runtime.execute`` path is validated against the direct engine run
once per engine — outside the timed region, so the group's cross-engine
timings measure the engines themselves, not runtime dispatch.
"""

import pytest

from repro.circuits import library
from repro.core.injector import AssertionInjector
from repro.runtime import execute, get_backend
from repro.simulators.statevector import StatevectorSimulator


def instrumented_bell():
    injector = AssertionInjector(library.bell_pair())
    injector.assert_entangled([0, 1])
    injector.measure_program()
    return injector.circuit


def run_once(backend, circuit):
    return backend.run(circuit, shots=1024, seed=7)


@pytest.fixture(scope="module")
def circuit():
    return instrumented_bell()


@pytest.fixture(scope="module")
def backends(circuit):
    """Module-scoped backends so timings measure the engines, not setup.

    The ``execute()`` entry point is asserted seed-equivalent to the
    direct run for every engine.
    """
    built = {
        spec: get_backend(spec, **options)
        for spec, options in [
            ("statevector", {}),
            ("density_matrix", {}),
            ("stabilizer", {}),
            # noise_scale=0 + transpile=False keeps the historical
            # ideal-trajectory workload: all four engines run the *same*
            # 3-qubit circuit, so the group timings stay comparable.
            ("trajectory:ibmqx4", {"noise_scale": 0.0, "transpile": False}),
        ]
    }
    for backend in built.values():
        via_runtime = execute(circuit, backend, shots=1024, seed=7).result()
        assert dict(via_runtime.counts) == dict(run_once(backend, circuit).counts)
    return built


@pytest.fixture(scope="module")
def reference(circuit):
    return StatevectorSimulator().exact_probabilities(circuit)


@pytest.mark.benchmark(group="simulators")
def test_statevector_engine(benchmark, circuit, reference, backends):
    result = benchmark(run_once, backends["statevector"], circuit)
    for key, p in result.probabilities.items():
        assert reference.get(key, 0.0) == pytest.approx(p, abs=1e-9)


@pytest.mark.benchmark(group="simulators")
def test_density_matrix_engine(benchmark, circuit, reference, backends):
    result = benchmark(run_once, backends["density_matrix"], circuit)
    for key, p in result.probabilities.items():
        assert reference.get(key, 0.0) == pytest.approx(p, abs=1e-9)


@pytest.mark.benchmark(group="simulators")
def test_stabilizer_engine(benchmark, circuit, reference, backends):
    result = benchmark(run_once, backends["stabilizer"], circuit)
    for key, count in result.counts.items():
        assert reference.get(key, 0.0) == pytest.approx(count / 1024, abs=0.08)


@pytest.mark.benchmark(group="simulators")
def test_trajectory_engine(benchmark, circuit, reference, backends):
    result = benchmark(run_once, backends["trajectory:ibmqx4"], circuit)
    for key, count in result.counts.items():
        assert reference.get(key, 0.0) == pytest.approx(count / 1024, abs=0.08)


# ----------------------------------------------------------------------
# Batched-vs-looped shot sweep (PR 5)
# ----------------------------------------------------------------------
#
# The same noisy trajectory workload through both execution methods, at
# two shot counts: the per-shot walker scales linearly in Python
# iterations, the batch-axis path amortises everything over NumPy tiles.
# Counts are bit-identical (pinned in tests/simulators/test_batched.py);
# these cases exist to keep the ratio visible in the benchmark table.


@pytest.fixture(scope="module")
def noisy_backends():
    return {
        method: get_backend(
            "trajectory:ibmqx4", noise_scale=1.0, method=method, transpile=False
        )
        for method in ("loop", "batched")
    }


@pytest.mark.benchmark(group="trajectory-methods")
@pytest.mark.parametrize("method", ["loop", "batched"])
@pytest.mark.parametrize("shots", [256, 1024])
def test_trajectory_method_sweep(benchmark, circuit, noisy_backends, method, shots):
    backend = noisy_backends[method]
    result = benchmark(backend.run, circuit, shots=shots, seed=7)
    assert result.counts.shots == shots
    assert result.metadata["method"] == method
