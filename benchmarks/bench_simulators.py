"""A5 bench: simulator cross-validation and relative performance.

Runs the same instrumented Bell-assertion workload on all four engines and
times each; correctness of the mutual agreement is asserted alongside.
"""

import pytest

from repro.circuits import library
from repro.core.injector import AssertionInjector
from repro.noise.trajectories import TrajectorySimulator
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.simulators.stabilizer import StabilizerSimulator
from repro.simulators.statevector import StatevectorSimulator


def instrumented_bell():
    injector = AssertionInjector(library.bell_pair())
    injector.assert_entangled([0, 1])
    injector.measure_program()
    return injector.circuit


@pytest.fixture(scope="module")
def circuit():
    return instrumented_bell()


@pytest.fixture(scope="module")
def reference(circuit):
    return StatevectorSimulator().exact_probabilities(circuit)


@pytest.mark.benchmark(group="simulators")
def test_statevector_engine(benchmark, circuit, reference):
    result = benchmark(StatevectorSimulator().run, circuit, 1024, 7)
    for key, p in result.probabilities.items():
        assert reference.get(key, 0.0) == pytest.approx(p, abs=1e-9)


@pytest.mark.benchmark(group="simulators")
def test_density_matrix_engine(benchmark, circuit, reference):
    result = benchmark(DensityMatrixSimulator().run, circuit, 1024, 7)
    for key, p in result.probabilities.items():
        assert reference.get(key, 0.0) == pytest.approx(p, abs=1e-9)


@pytest.mark.benchmark(group="simulators")
def test_stabilizer_engine(benchmark, circuit, reference):
    result = benchmark(StabilizerSimulator().run, circuit, 1024, 7)
    for key, count in result.counts.items():
        assert reference.get(key, 0.0) == pytest.approx(count / 1024, abs=0.08)


@pytest.mark.benchmark(group="simulators")
def test_trajectory_engine(benchmark, circuit, reference):
    result = benchmark(TrajectorySimulator().run, circuit, 1024, 7)
    for key, count in result.counts.items():
        assert reference.get(key, 0.0) == pytest.approx(count / 1024, abs=0.08)
