"""A5b bench: phase-error detection — the Z-parity blind spot.

Regenerates the extension ablation: under Z-flip noise, the paper's
Z-parity assertions detect nothing while the X-parity extension (and the
combined full GHZ check) track the error rate.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablation_phase import run_phase_ablation


@pytest.mark.benchmark(group="ablation-phase")
def test_phase_error_detection_ablation(benchmark):
    result = benchmark(run_phase_ablation, noise_levels=(0.0, 0.05, 0.1, 0.2))
    emit(result.summary())
    for noise in (0.05, 0.1, 0.2):
        # The paper's Z-parity checks are structurally blind to Z noise...
        assert result.detection(noise, "z-pairs") == pytest.approx(0.0, abs=1e-9)
        # ...the X-parity extension sees it...
        assert result.detection(noise, "x-parity") > 0.1
        # ...and the combined check sees at least as much.
        assert result.detection(noise, "full") >= result.detection(
            noise, "x-parity"
        )
    # No false positives without noise.
    assert result.detection(0.0, "full") == pytest.approx(0.0, abs=1e-9)
