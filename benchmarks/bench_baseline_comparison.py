"""A3 bench: dynamic assertions vs the statistical baseline (ISCA'19).

Regenerates the detection/executions/continuation comparison table on
bugged and correct Bell/superposition programs.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.baseline_comparison import run_baseline_comparison


@pytest.mark.benchmark(group="baseline")
def test_dynamic_vs_statistical_assertions(benchmark):
    result = benchmark(run_baseline_comparison, shots=2048, alpha=0.01, seed=17)
    emit(result.summary())
    # Both approaches detect the real bugs...
    assert result.detection("bell missing CX", "dynamic")
    assert result.detection("bell missing CX", "statistical")
    assert result.detection("superposition X-for-H", "dynamic")
    # ...and neither flags correct programs.
    assert not result.detection("bell correct", "dynamic")
    assert not result.detection("superposition correct", "statistical")
    # Only the dynamic approach keeps the program running.
    for _scenario, approach, _det, _execs, continues in result.rows:
        assert continues == (approach == "dynamic")
