"""Runtime bench: the batched execute() path vs the sequential run() loop.

The workload mirrors the paper's sweeps: a handful of distinct instrumented
circuits, each executed many times (noise points, shot counts, repeated
assertion variants).  The sequential baseline pays a fresh transpile and a
fresh density-matrix evolution per run — exactly what the seed code did.
The batched path goes through ``repro.runtime.execute`` with the transpile
cache and job deduplication on, so each distinct circuit is lowered and
simulated once and every duplicate job re-uses or re-samples the cached
distribution.

The v2 benches cover the two cross-call reuse paths: the shared process
pool on a GIL-bound stabilizer batch (thread fan-out buys nothing there),
and the distribution cache on a repeated noisy sweep (the second call
re-samples instead of re-simulating).

The v3 bench covers the *cross-process* path: the same sweep run in two
fresh interpreter processes against one ``REPRO_CACHE_DIR``.  The first
(cold) process pays every transpile and simulation and persists them; the
second (warm) process serves everything from the disk-backed cache store —
zero transpiles, zero exact-distribution simulations, bit-identical
counts.

The v4 bench covers the scheduler: a long unseeded trajectory job under
``schedule="fixed"`` runs as one pool task, while ``schedule="adaptive"``
shards it into cost-model-sized chunks that saturate the process pool.

The v5 bench covers the batch-axis engine: the same 5-qubit noisy
assertion workload at 4096 shots through ``method="loop"`` (the per-shot
walker) vs ``method="batched"`` (all shots of a tile evolve along a NumPy
batch axis) — bit-identical counts, target >= 10x.

The v6/v7 benches storm the multi-tenant service layer (concurrent
tenants vs back-to-back submissions, plus the write-ahead-journal tax);
the v8 bench runs the same storm *over the HTTP wire* — OpenQASM + JSON
on every hop through ``repro.service.http`` — recording wire jobs/sec;
the v9 bench measures the always-on tracing tax (traced vs untraced
storm jobs/sec, asserted <=5%); the v10 bench runs the storm under the
fault-injection harness — an armed-but-silent plan must cost <=15% over a
clean storm, an actively-faulting plan must still terminate every job
with surviving counts bit-identical, and a killed process-pool worker
must heal via pool rebuild with zero failed jobs.

Counts are asserted bit-identical between every pair of paths (the
runtime's determinism contract) and each optimized wall-clock must beat
its baseline.

Run with ``pytest benchmarks/bench_runtime.py -s`` to see the numbers.
Every case also records its wall-clocks into ``BENCH_runtime.json`` (see
``conftest.record``) so the perf trajectory is tracked across PRs.
"""

import os
import time

from conftest import emit, record

from repro.circuits import library
from repro.core.injector import AssertionInjector
from repro.devices.backend import NoisyDeviceBackend, TrajectoryDeviceBackend
from repro.devices.ibmqx4 import ibmqx4
from repro.runtime import DistributionCache, TranspileCache, execute, get_backend

SHOTS = 2048
SEED = 11
REPEATS = 4  # sweep repetitions of each distinct circuit


def sweep_circuits():
    """Build 4 distinct instrumented sweep variants (16 jobs with repeats)."""
    variants = []

    bell_classical = AssertionInjector(library.bell_pair())
    bell_classical.assert_classical(0, 0)
    bell_classical.measure_program()
    variants.append(bell_classical.circuit)

    bell_entangled = AssertionInjector(library.bell_pair())
    bell_entangled.assert_entangled([0, 1])
    bell_entangled.measure_program()
    variants.append(bell_entangled.circuit)

    for mode in ("pairwise", "single"):
        ghz = AssertionInjector(library.ghz_state(3))
        ghz.assert_entangled([0, 1, 2], mode=mode)
        ghz.measure_program()
        variants.append(ghz.circuit)

    return variants * REPEATS


def test_batched_execute_beats_sequential_loop():
    device = ibmqx4()
    circuits = sweep_circuits()
    assert len(circuits) >= 8

    # Sequential baseline: fresh transpile + fresh simulation per run, the
    # way the experiments executed before the runtime existed.
    uncached = NoisyDeviceBackend(device, cache=False)
    start = time.perf_counter()
    sequential = [uncached.run(c, shots=SHOTS, seed=SEED) for c in circuits]
    sequential_s = time.perf_counter() - start

    # Batched path: one execute() call, shared cache, dedupe, thread pool.
    cache = TranspileCache()
    cached = NoisyDeviceBackend(device, cache=cache)
    start = time.perf_counter()
    jobs = execute(circuits, cached, shots=SHOTS, seed=SEED, max_workers=4)
    batched = jobs.result()
    batched_s = time.perf_counter() - start

    for loop_result, job_result in zip(sequential, batched):
        assert dict(loop_result.counts) == dict(job_result.counts)

    distinct = len(set(c.fingerprint() for c in circuits))
    assert jobs.num_executed == distinct
    assert cache.stats()["misses"] == distinct
    # Dedup cuts the simulated work 4x, so this wall-clock comparison has
    # ~300% headroom against scheduler noise on shared CI runners; the
    # semantic guarantees are carried by the equality asserts above.
    assert batched_s < sequential_s, (
        f"batched path ({batched_s:.3f}s) should beat the sequential loop "
        f"({sequential_s:.3f}s)"
    )
    record(
        "batched_execute_vs_sequential_loop", sequential_s, batched_s,
        jobs=len(circuits), distinct_circuits=distinct,
    )
    emit(
        "runtime bench — batched execute() vs sequential backend.run() loop\n"
        f"jobs            : {len(circuits)} ({distinct} distinct circuits)\n"
        f"sequential loop : {sequential_s:8.3f} s\n"
        f"batched execute : {batched_s:8.3f} s  "
        f"(speedup {sequential_s / batched_s:.1f}x, "
        f"{jobs.num_executed} simulations, "
        f"{cache.stats()['hits']} transpile-cache hits)"
    )


def test_resampled_shot_sweep_simulates_once():
    """A shots/seed sweep over one circuit runs a single simulation."""
    device = ibmqx4()
    injector = AssertionInjector(library.bell_pair())
    injector.assert_entangled([0, 1])
    injector.measure_program()
    circuit = injector.circuit

    shots = [512, 1024, 2048, 4096, 512, 1024, 2048, 4096]
    seeds = [1, 2, 3, 4, 5, 6, 7, 8]
    backend = NoisyDeviceBackend(device, cache=TranspileCache())

    start = time.perf_counter()
    jobs = execute([circuit] * 8, backend, shots=shots, seed=seeds, max_workers=4)
    results = jobs.result()
    batched_s = time.perf_counter() - start
    assert jobs.num_executed == 1

    start = time.perf_counter()
    dedicated = [
        NoisyDeviceBackend(device, cache=False).run(circuit, shots=n, seed=s)
        for n, s in zip(shots, seeds)
    ]
    sequential_s = time.perf_counter() - start

    for loop_result, job_result in zip(dedicated, results):
        assert dict(loop_result.counts) == dict(job_result.counts)
    record("resampled_shot_sweep", sequential_s, batched_s, jobs=8)
    emit(
        "runtime bench — 8-point shot/seed sweep of one circuit\n"
        f"sequential loop : {sequential_s:8.3f} s (8 simulations)\n"
        f"batched execute : {batched_s:8.3f} s (1 simulation + 7 resamples, "
        f"speedup {sequential_s / batched_s:.1f}x)"
    )


def test_process_pool_accelerates_per_shot_batch():
    """v2: the process pool is the fan-out that helps the GIL-bound engines.

    The stabilizer tableau engine is pure Python, so a thread pool cannot
    overlap its shots — only worker processes can.  Counts must be
    bit-identical to the serial path under the same seeds; the wall-clock
    win is asserted only where extra cores exist to deliver it.
    """
    circuits = []
    for i in range(4):
        injector = AssertionInjector(library.ghz_state(20 + i))
        injector.assert_entangled(list(range(20 + i)), mode="pairwise")
        injector.measure_program()
        circuits.append(injector.circuit)
    backend = get_backend("stabilizer")
    seeds = [31, 32, 33, 34]

    start = time.perf_counter()
    serial = execute(
        circuits, backend, shots=96, seed=seeds, executor="serial", dedupe=False
    ).counts()
    serial_s = time.perf_counter() - start

    workers = min(4, os.cpu_count() or 1)
    start = time.perf_counter()
    pooled = execute(
        circuits, backend, shots=96, seed=seeds, executor="process",
        max_workers=workers, dedupe=False,
    ).counts()
    process_s = time.perf_counter() - start

    assert [dict(c) for c in pooled] == [dict(c) for c in serial]
    if (os.cpu_count() or 1) >= 4:
        # With 4 workers on >=4 cores the expected speedup is ~3x, leaving
        # wide headroom against fork+pickle overhead and scheduler noise on
        # shared runners; fewer cores can't guarantee a win, so there the
        # equality asserts above carry the whole guarantee.
        assert process_s < serial_s, (
            f"process pool ({process_s:.3f}s) should beat serial "
            f"({serial_s:.3f}s) on {os.cpu_count()} cores"
        )
    record(
        "stabilizer_process_pool", serial_s, process_s,
        workers=workers, cores=os.cpu_count(),
    )
    emit(
        "runtime bench — GIL-bound stabilizer batch, serial vs process pool\n"
        f"jobs            : {len(circuits)} (GHZ 20-23, pairwise assertions)\n"
        f"serial          : {serial_s:8.3f} s\n"
        f"process pool    : {process_s:8.3f} s  "
        f"({workers} workers on {os.cpu_count()} core(s), "
        f"speedup {serial_s / process_s:.1f}x)"
    )


def test_cross_call_distribution_cache_resamples_repeat_sweep():
    """v2: a repeated noisy sweep re-samples from the distribution cache.

    The first call simulates each distinct circuit once and populates the
    cache; the second call — new seeds, same circuits and backend — never
    touches the backend, yet every count histogram is bit-identical to a
    dedicated uncached run.  Strictly less work, so the wall-clock win
    holds even on a single-core runner.
    """
    device = ibmqx4()
    circuits = sweep_circuits()[:8]  # 4 distinct variants x 2
    backend = NoisyDeviceBackend(device, cache=TranspileCache())
    cache = DistributionCache()

    start = time.perf_counter()
    first = execute(
        circuits, backend, shots=2048, seed=list(range(1, 9)),
        distribution_cache=cache,
    )
    first_counts = first.counts()
    first_s = time.perf_counter() - start
    assert first.num_executed == 4  # one real simulation per distinct circuit
    assert first.num_cached == 0

    second_seeds = list(range(101, 109))
    start = time.perf_counter()
    second = execute(
        circuits, backend, shots=2048, seed=second_seeds,
        distribution_cache=cache,
    )
    second_counts = second.counts()
    second_s = time.perf_counter() - start
    assert second.num_executed == 0  # every job served without simulating
    assert second.num_cached == 4
    assert cache.stats()["hits"] == 4

    # Bit-identical to the dedicated, uncached, serial path.
    uncached = NoisyDeviceBackend(device, cache=False)
    for circuit, seed, counts in zip(circuits, second_seeds, second_counts):
        dedicated = uncached.run(circuit, shots=2048, seed=seed)
        assert dict(counts) == dict(dedicated.counts)
    assert len(first_counts) == len(second_counts)

    assert second_s < first_s, (
        f"cached sweep ({second_s:.3f}s) should beat the simulating sweep "
        f"({first_s:.3f}s)"
    )
    record("distribution_cache_repeat_sweep", first_s, second_s, jobs=len(circuits))
    emit(
        "runtime bench — repeated noisy sweep, cold vs warm distribution cache\n"
        f"jobs            : {len(circuits)} (4 distinct circuits)\n"
        f"first call      : {first_s:8.3f} s (4 simulations, cache cold)\n"
        f"second call     : {second_s:8.3f} s (0 simulations, 4 cache hits, "
        f"speedup {first_s / second_s:.1f}x)"
    )


def test_adaptive_chunking_saturates_pool_on_trajectory_engine():
    """v4: cost-driven chunk sizing vs the fixed single-task plan.

    The trajectory engine pays per shot, so a long unseeded job under the
    fixed schedule occupies exactly one process-pool worker while the rest
    idle.  The adaptive schedule reads the cost model's measured per-shot
    cost (learned here from a short probe run — in production, from any
    earlier call or a persisted profile) and shards the job to saturate
    the pool.  The job is unseeded because that is where adaptive chunking
    applies automatically (a caller seed pins the chunk plan; see the
    scheduler's determinism contract), so the assertions are structural
    (chunk count, total shots) plus the wall-clock win where the cores
    exist to deliver it.
    """
    backend = get_backend("trajectory:ibmqx4", noise_scale=0.25)
    injector = AssertionInjector(library.bell_pair())
    injector.assert_entangled([0, 1])
    injector.measure_program()
    circuit = injector.circuit
    shots = 1536
    # A fixed 4-wide pool: the planner sizes chunks for the pool it is
    # given, and the wall-clock assertion below is gated on the cores
    # actually existing to back those workers.
    workers = 4

    # Probe: one short seeded run teaches the model this engine's cost.
    execute(circuit, backend, shots=64, seed=1, executor="serial").result()

    start = time.perf_counter()
    fixed = execute(
        circuit, backend, shots=shots, executor="process",
        max_workers=workers, schedule="fixed",
    )
    fixed.result()
    fixed_s = time.perf_counter() - start

    start = time.perf_counter()
    adaptive = execute(
        circuit, backend, shots=shots, executor="process",
        max_workers=workers, schedule="adaptive",
    )
    adaptive.result()
    adaptive_s = time.perf_counter() - start

    assert len(fixed._futures) == 1  # the fixed plan is one pool task
    chunk = adaptive.plan["chunk_shots"]
    assert chunk is not None and chunk < shots  # the model forced a split
    assert len(adaptive._futures) > 1
    assert adaptive.result().counts.shots == shots
    if (os.cpu_count() or 1) >= 4:
        # With >=4 cores the fixed plan leaves 3 of them idle, so the
        # sharded plan has ~3x headroom against pool/pickle overhead.
        assert adaptive_s < fixed_s, (
            f"adaptive chunking ({adaptive_s:.3f}s) should beat the "
            f"single-task fixed plan ({fixed_s:.3f}s) on {os.cpu_count()} cores"
        )
    record(
        "adaptive_chunking_trajectory", fixed_s, adaptive_s,
        shots=shots, workers=workers, chunk_shots=chunk,
    )
    emit(
        "runtime bench — trajectory engine, fixed vs adaptive chunking\n"
        f"job             : {shots} unseeded shots, {workers} process workers\n"
        f"fixed schedule  : {fixed_s:8.3f} s (1 task)\n"
        f"adaptive        : {adaptive_s:8.3f} s ({len(adaptive._futures)} tasks "
        f"of <= {chunk} shots, speedup {fixed_s / adaptive_s:.1f}x)"
    )


def test_batched_shot_axis_beats_per_shot_loop():
    """v5: the batch-axis trajectory engine vs the per-shot walker.

    The paper's NISQ error-filtering sweeps burn thousands of trajectory
    shots per point; re-walking the circuit in Python per shot was the
    hottest path left after PR 2-4 parallelised and cached around it.
    ``method="batched"`` evolves all shots of a tile along a NumPy batch
    axis instead.  Both methods consume identical per-trajectory Philox
    substreams, so the counts are bit-identical — the speedup is pure
    engine throughput, independent of core count (no pools involved).
    """
    injector = AssertionInjector(library.ghz_state(4))
    injector.assert_entangled([0, 1, 2, 3], mode="single")
    injector.measure_program()
    circuit = injector.circuit
    assert circuit.num_qubits == 5
    shots, seed = 4096, 2020
    device = ibmqx4()
    cache = TranspileCache()
    looped = TrajectoryDeviceBackend(device, method="loop", cache=cache)
    batched = TrajectoryDeviceBackend(device, method="batched", cache=cache)
    looped.prepare(circuit)  # pay the transpile outside both timed regions

    start = time.perf_counter()
    loop_result = looped.run(circuit, shots=shots, seed=seed)
    loop_s = time.perf_counter() - start

    start = time.perf_counter()
    batched_result = batched.run(circuit, shots=shots, seed=seed)
    batched_s = time.perf_counter() - start

    assert dict(batched_result.counts) == dict(loop_result.counts)
    assert batched_result.counts.shots == shots
    speedup = loop_s / batched_s
    # Measured ~13-17x; the 10x acceptance floor leaves headroom against
    # scheduler noise, and the quantity is a ratio of two single-threaded
    # CPU-bound runs on the same box, so shared-load noise mostly cancels.
    assert speedup >= 10, (
        f"batched shot axis ({batched_s:.3f}s) should be >=10x faster than "
        f"the per-shot loop ({loop_s:.3f}s), got {speedup:.1f}x"
    )
    record(
        "batched_shot_axis_vs_loop", loop_s, batched_s,
        shots=shots, qubits=circuit.num_qubits, device="ibmqx4",
    )
    emit(
        "runtime bench — trajectory engine, per-shot loop vs batch axis\n"
        f"job             : 5-qubit noisy assertion circuit, {shots} shots\n"
        f"method='loop'   : {loop_s:8.3f} s\n"
        f"method='batched': {batched_s:8.3f} s  (speedup {speedup:.1f}x, "
        "bit-identical counts)"
    )


def _run_sweep_process(cache_dir):
    """Time the shared cross-process sweep driver (all four variants)."""
    from repro.runtime.harness import VARIANT_NAMES, run_sweep_process

    return run_sweep_process(
        cache_dir=cache_dir, variants=VARIANT_NAMES, shots=2048, repeats=4
    )


def test_warm_disk_cache_accelerates_cold_process(tmp_path):
    """v3: a fresh process with a warm REPRO_CACHE_DIR skips all the work.

    Both runs pay interpreter startup and imports; only the first pays
    transpilation and density-matrix simulation.  The warm process must
    report zero transpile misses and zero executed simulations while
    producing bit-identical counts — the paper's "pay the analysis once"
    discipline surviving the interpreter.
    """
    cache_dir = tmp_path / "cache"
    cold, cold_s = _run_sweep_process(cache_dir)
    warm, warm_s = _run_sweep_process(cache_dir)

    assert warm["counts"] == cold["counts"]
    assert cold["executed"] == 4  # one simulation per distinct circuit
    assert warm["executed"] == 0
    assert warm["cached"] == 4
    assert warm["transpile"]["misses"] == 0
    assert warm["distribution"]["misses"] == 0
    assert warm_s < cold_s, (
        f"warm process ({warm_s:.3f}s) should beat the cold process "
        f"({cold_s:.3f}s)"
    )
    record("warm_disk_cache_cold_process", cold_s, warm_s, jobs=len(cold["counts"]))
    emit(
        "runtime bench — same sweep in two processes, one REPRO_CACHE_DIR\n"
        f"jobs            : {len(cold['counts'])} (4 distinct circuits)\n"
        f"cold process    : {cold_s:8.3f} s (4 simulations, "
        f"{cold['transpile']['misses']} transpiles)\n"
        f"warm process    : {warm_s:8.3f} s (0 simulations, 0 transpiles, "
        f"speedup {cold_s / warm_s:.1f}x)"
    )


def test_service_storm_many_clients(tmp_path):
    """v6: the multi-tenant async service under a many-client storm.

    Baseline: the same submissions driven strictly one at a time
    (submit, await, collect, repeat) — every job pays the full queue
    round-trip latency back to back.  Optimized: all clients submit
    concurrently through ``RuntimeService`` and stream completions via
    ``as_completed()``, so queue machinery, dispatch and collection
    pipeline across submissions.  Quotas and rate limits are live for
    every tenant, and one sampled submission is asserted bit-identical
    to plain ``execute()`` (the service never touches counts).

    The v7 rider measures the durability tax: a *sustained* storm — a
    distinct circuit per submission, so every job pays a real transpile
    and density-matrix simulation instead of a cache resample — run
    plain vs with the write-ahead job journal and cost ledger writing
    every submission and settlement through to disk.  The journaled run
    must stay within 10% of the plain wall-clock (best-of runs; a ratio
    of two same-box runs, so shared-load noise mostly cancels).  And a
    service that has completed exactly one job must report a sane
    jobs/sec — bounded by one-per-elapsed, never the ~1e9/s the pre-fix
    ``RateMeter`` gave a single early event.

    ``REPRO_STORM_SMOKE=1`` shrinks the storm for CI smoke runs.
    """
    import asyncio

    from repro.service import ClientQuota, RuntimeService

    smoke = os.environ.get("REPRO_STORM_SMOKE", "").strip() not in ("", "0")
    clients = 3 if smoke else 6
    per_client = 3 if smoke else 8
    shots = 256
    circuit = library.bell_pair()
    circuit.measure_all()
    backend = get_backend("statevector")
    reference = execute(circuit, backend, shots=shots, seed=0).result().counts
    quota = ClientQuota(max_in_flight_jobs=4, over_quota="queue")

    async def sequential() -> float:
        service = RuntimeService(executor="thread", journal=False,
                                 accounting=False)
        try:
            tokens = [
                service.register_client(f"seq{c}", quota=quota)
                for c in range(clients)
            ]
            start = time.perf_counter()
            for c, token in enumerate(tokens):
                for i in range(per_client):
                    handle = await service.submit(
                        circuit, backend, shots=shots,
                        seed=c * per_client + i, token=token,
                    )
                    await handle.result()
            return time.perf_counter() - start
        finally:
            await service.close()

    async def storm():
        # Explicitly journal-less, even when $REPRO_CACHE_DIR is set.
        service = RuntimeService(executor="thread", journal=False,
                                 accounting=False)
        try:
            tokens = [
                service.register_client(f"storm{c}", quota=quota)
                for c in range(clients)
            ]

            async def one_client(c, token):
                handles = [
                    await service.submit(
                        circuit, backend, shots=shots,
                        seed=c * per_client + i, token=token,
                    )
                    for i in range(per_client)
                ]
                async for handle in service.as_completed(handles, timeout=300):
                    assert handle.status() == "done"
                return handles

            start = time.perf_counter()
            all_handles = await asyncio.gather(*(
                one_client(c, token) for c, token in enumerate(tokens)
            ))
            elapsed = time.perf_counter() - start
            sampled = await all_handles[0][0].counts()
            assert sampled[0] == reference  # seed 0: service == execute()
            return elapsed, service.stats()
        finally:
            await service.close()

    async def single_job():
        service = RuntimeService(executor="thread", journal=False,
                                 accounting=False)
        try:
            token = service.register_client("solo")
            handle = await service.submit(circuit, backend, shots=shots,
                                          seed=0, token=token)
            await handle.result()
            stats = service.stats()
            return stats["jobs_per_second"], stats["uptime_s"]
        finally:
            await service.close()

    run_offsets = iter(range(0, 10_000_000, 10_000))

    def sustained_circuit(index):
        circuit = library.ghz_state(4)
        circuit.rz(1e-4 * (index + 1), 0)  # distinct fingerprint per job
        circuit.measure_all()
        return circuit

    async def sustained(cache_dir=None):
        # A distinct circuit per submission: no distribution-cache
        # resampling, every job pays a real transpile + density-matrix
        # simulation, so wall-clock measures sustained throughput.  Each
        # run draws fresh angles so no run warms another's caches.
        base = next(run_offsets)
        if cache_dir is None:
            service = RuntimeService(executor="thread", journal=False,
                                     accounting=False)
        else:
            service = RuntimeService(executor="thread",
                                     cache_dir=str(cache_dir))
        try:
            tokens = [
                service.register_client(f"sus{c}", quota=quota)
                for c in range(clients)
            ]

            async def one_client(c, token):
                handles = [
                    await service.submit(
                        sustained_circuit(base + c * per_client + i),
                        "noisy:ibmqx4", shots=shots,
                        seed=c * per_client + i, token=token,
                    )
                    for i in range(per_client)
                ]
                async for handle in service.as_completed(handles,
                                                         timeout=300):
                    assert handle.status() == "done"

            start = time.perf_counter()
            await asyncio.gather(*(
                one_client(c, token) for c, token in enumerate(tokens)
            ))
            return time.perf_counter() - start
        finally:
            await service.close()

    sequential_s = asyncio.run(sequential())
    storm_s, stats = asyncio.run(storm())

    # Journaling overhead on the sustained storm: best-of runs on both
    # sides, with escalation rounds against wall-clock noise.
    asyncio.run(sustained())  # warm-up: code paths, not circuits
    sustained_s = asyncio.run(sustained())
    journaled_s = None
    for attempt in range(3):
        candidate = asyncio.run(sustained(tmp_path / f"journal{attempt}"))
        journaled_s = candidate if journaled_s is None else min(
            journaled_s, candidate
        )
        if journaled_s <= sustained_s * 1.10:
            break
        sustained_s = min(sustained_s, asyncio.run(sustained()))
    overhead = journaled_s / sustained_s - 1.0
    assert journaled_s <= sustained_s * 1.10, (
        f"write-ahead journaling ({journaled_s:.3f}s) should cost <=10% "
        f"over the plain sustained storm ({sustained_s:.3f}s), "
        f"got {overhead:+.1%}"
    )

    jobs = clients * per_client
    assert stats["completed_jobs"] == jobs
    latency = stats["queue_latency"]
    assert latency["total_count"] == jobs
    assert latency["p99_s"] is not None
    # Bounded tail: queueing may stack client batches, but the p99 wait
    # must stay within the storm's own wall-clock (no stuck submissions).
    assert latency["p99_s"] <= storm_s
    jobs_per_second = jobs / storm_s

    # One completed job can never legitimately report more than
    # one-per-elapsed (the pre-fix RateMeter said ~1e9/s here).
    single_rate, single_uptime = asyncio.run(single_job())
    assert 0.0 < single_rate <= 1.05 / min(single_uptime, 60.0), (
        f"one completed job after {single_uptime:.3f}s reported "
        f"{single_rate:.3g} jobs/s"
    )

    record(
        "service_storm_many_clients",
        sequential_s,
        storm_s,
        clients=clients,
        jobs=jobs,
        shots_per_job=shots,
        jobs_per_second=round(jobs_per_second, 2),
        queue_p50_s=round(latency["p50_s"], 6),
        queue_p99_s=round(latency["p99_s"], 6),
        sustained_s=round(sustained_s, 6),
        journaled_s=round(journaled_s, 6),
        journaling_overhead=round(overhead, 4),
        single_job_rate=round(single_rate, 6),
        smoke=smoke,
    )
    emit(
        "runtime bench — many-client storm through repro.service\n"
        f"storm           : {clients} clients x {per_client} submissions "
        f"({jobs} jobs, quotas + rate limits live)\n"
        f"sequential      : {sequential_s:8.3f} s\n"
        f"service storm   : {storm_s:8.3f} s  "
        f"({jobs_per_second:.1f} jobs/s, p50 {latency['p50_s'] * 1e3:.1f} ms, "
        f"p99 {latency['p99_s'] * 1e3:.1f} ms, "
        f"speedup {sequential_s / storm_s:.1f}x)\n"
        f"sustained storm : {sustained_s:8.3f} s plain, {journaled_s:8.3f} s "
        f"journaled (write-ahead journal + cost ledger, "
        f"overhead {overhead:+.1%})\n"
        f"single-job rate : {single_rate:8.3f} jobs/s after "
        f"{single_uptime:.3f}s uptime (sane, not ~1e9)"
    )


def test_service_wire_storm():
    """v8: the same storm over the HTTP wire instead of in-process.

    Baseline: one :class:`ServiceClient` submits and awaits one job at a
    time over HTTP — every job pays the full request/queue/response
    round trip back to back.  Optimized: every tenant drives its own
    client on its own thread against one :class:`BackgroundServer`, so
    HTTP parsing, admission, dispatch and collection pipeline across
    connections.  One sampled submission is asserted bit-identical to
    plain ``execute()`` — OpenQASM serialization, the JSON hop and the
    asyncio front-end must not perturb counts.

    ``REPRO_STORM_SMOKE=1`` shrinks the storm for CI smoke runs.
    """
    import threading

    from repro.service import (
        BackgroundServer,
        ClientQuota,
        RuntimeService,
        ServiceClient,
    )

    smoke = os.environ.get("REPRO_STORM_SMOKE", "").strip() not in ("", "0")
    clients = 3 if smoke else 6
    per_client = 3 if smoke else 8
    shots = 256
    circuit = library.bell_pair()
    circuit.measure_all()
    reference = dict(
        execute(circuit, "statevector", shots=shots, seed=0).result().counts
    )
    quota = ClientQuota(max_in_flight_jobs=4, over_quota="queue")

    service = RuntimeService(executor="thread", journal=False,
                             accounting=False)
    tokens = {
        f"wire{c}": service.register_client(f"wire{c}", quota=quota)
        for c in range(clients)
    }
    with BackgroundServer(service) as server:
        # Sequential over-the-wire baseline: one tenant, one job in
        # flight, full HTTP round trip per job.
        with ServiceClient(server.url, token=tokens["wire0"]) as client:
            start = time.perf_counter()
            for i in range(per_client * clients):
                job_id = client.submit(circuit, "statevector", shots=shots,
                                       seed=i)
                client.counts(job_id, timeout=120)
            sequential_s = time.perf_counter() - start

        # The storm: one client per tenant, each on its own thread.
        sampled = {}

        def one_client(c, token):
            with ServiceClient(server.url, token=token) as client:
                job_ids = [
                    client.submit(circuit, "statevector", shots=shots,
                                  seed=c * per_client + i)
                    for i in range(per_client)
                ]
                counts = [client.counts(j, timeout=120) for j in job_ids]
                if c == 0:
                    sampled["counts"] = counts[0][0]

        threads = [
            threading.Thread(target=one_client, args=(c, token))
            for c, (_name, token) in enumerate(sorted(tokens.items()))
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        storm_s = time.perf_counter() - start

    assert sampled["counts"] == reference  # seed 0: wire == execute()
    jobs = clients * per_client
    jobs_per_second = jobs / storm_s

    record(
        "service_wire_storm",
        sequential_s,
        storm_s,
        clients=clients,
        per_client=per_client,
        jobs=jobs,
        shots_per_job=shots,
        jobs_per_second=round(jobs_per_second, 2),
        smoke=smoke,
    )
    emit(
        "runtime bench — storm over the HTTP wire (repro.service.http)\n"
        f"storm           : {clients} clients x {per_client} submissions "
        f"({jobs} jobs over HTTP, QASM + JSON on every hop)\n"
        f"sequential wire : {sequential_s:8.3f} s\n"
        f"threaded wire   : {storm_s:8.3f} s  "
        f"({jobs_per_second:.1f} jobs/s, "
        f"speedup {sequential_s / storm_s:.1f}x)"
    )


def test_traced_storm_overhead():
    """v9: the tracing tax — the same many-client storm, spans off vs on.

    Tracing is always-on in production, so its cost is measured the way
    it is paid: the full service storm (admission, queue, dispatch,
    chunk fan-out, settle) run once with ``set_tracing_enabled(False)``
    and once with span trees recording every stage, including the
    worker-side chunk records shipped back across the executor boundary.
    The traced storm must stay within 5% of the untraced wall-clock
    (best-of runs with escalation, same-box ratio so shared-load noise
    mostly cancels).  The traced run is asserted to actually produce
    full span trees — a "win" from tracing silently not happening would
    be meaningless.

    ``REPRO_STORM_SMOKE=1`` shrinks the storm for CI smoke runs.
    """
    import asyncio

    from repro.obs import set_tracing_enabled
    from repro.service import ClientQuota, RuntimeService

    smoke = os.environ.get("REPRO_STORM_SMOKE", "").strip() not in ("", "0")
    clients = 3 if smoke else 6
    per_client = 3 if smoke else 8
    shots = 256
    circuit = library.bell_pair()
    circuit.measure_all()
    backend = get_backend("statevector")
    quota = ClientQuota(max_in_flight_jobs=4, over_quota="queue")

    async def storm():
        service = RuntimeService(executor="thread", journal=False,
                                 accounting=False)
        try:
            tokens = [
                service.register_client(f"trc{c}", quota=quota)
                for c in range(clients)
            ]

            async def one_client(c, token):
                handles = [
                    await service.submit(
                        circuit, backend, shots=shots,
                        seed=c * per_client + i, token=token,
                    )
                    for i in range(per_client)
                ]
                async for handle in service.as_completed(handles,
                                                         timeout=300):
                    assert handle.status() == "done"
                return handles

            start = time.perf_counter()
            all_handles = await asyncio.gather(*(
                one_client(c, token) for c, token in enumerate(tokens)
            ))
            elapsed = time.perf_counter() - start
            return elapsed, all_handles[0][0].trace()
        finally:
            await service.close()

    def run_storm(traced):
        previous = set_tracing_enabled(traced)
        try:
            return asyncio.run(storm())
        finally:
            set_tracing_enabled(previous)

    def walk(node):
        yield node
        for child in node.get("children", ()):
            yield from walk(child)

    run_storm(True)  # warm-up: code paths and caches, not the clock

    untraced_s, stub = run_storm(False)
    assert stub["span_id"] is None  # the off switch really was off

    traced_s = None
    trace = None
    for attempt in range(3):
        candidate_s, candidate_trace = run_storm(True)
        if traced_s is None or candidate_s < traced_s:
            traced_s, trace = candidate_s, candidate_trace
        if traced_s <= untraced_s * 1.05:
            break
        untraced_s = min(untraced_s, run_storm(False)[0])

    # The traced run recorded the full tree: every stage plus the
    # worker-side chunk record merged back across the executor boundary.
    assert trace["span_id"] is not None
    stages = {node["name"] for node in walk(trace)}
    assert {"job", "admission", "queue", "dispatch", "chunk"} <= stages
    chunks = [n for n in walk(trace) if n["name"] == "chunk"]
    assert all(n["attrs"]["worker_wall_s"] >= 0.0 for n in chunks)

    overhead = traced_s / untraced_s - 1.0
    assert traced_s <= untraced_s * 1.05, (
        f"always-on tracing ({traced_s:.3f}s) should cost <=5% over the "
        f"untraced storm ({untraced_s:.3f}s), got {overhead:+.1%}"
    )

    jobs = clients * per_client
    record(
        "traced_storm_overhead",
        untraced_s,
        traced_s,
        clients=clients,
        jobs=jobs,
        shots_per_job=shots,
        untraced_jobs_per_second=round(jobs / untraced_s, 2),
        traced_jobs_per_second=round(jobs / traced_s, 2),
        tracing_overhead=round(overhead, 4),
        spans_per_job=len(list(walk(trace))),
        smoke=smoke,
    )
    emit(
        "runtime bench — tracing tax on the many-client storm\n"
        f"storm           : {clients} clients x {per_client} submissions "
        f"({jobs} jobs, full span trees per job)\n"
        f"untraced storm  : {untraced_s:8.3f} s "
        f"({jobs / untraced_s:.1f} jobs/s)\n"
        f"traced storm    : {traced_s:8.3f} s "
        f"({jobs / traced_s:.1f} jobs/s, {len(list(walk(trace)))} spans/job, "
        f"overhead {overhead:+.1%})"
    )


def test_chaos_storm_resilience():
    """v10: the many-client storm under the fault-injection harness.

    Three questions, one workload.  First, the cost of *capability*: the
    same storm with an armed-but-silent plan (every site at rate 0.0, so
    each chunk attempt consults the plan and fires nothing) must stay
    within 15% of the clean storm's wall-clock — resilience machinery
    may not tax the fault-free path.  Second, behaviour under real
    chaos: with ~20% of chunk attempts faulting, retries must terminate
    every job, almost all must survive, and every survivor's counts must
    stay bit-identical to the clean reference (retries resubmit with the
    chunk's original seed).  Third, the acceptance scenario: a
    process-pool worker hard-killed mid-storm heals through pool rebuild
    + resubmission with *zero* failed jobs.

    ``REPRO_STORM_SMOKE=1`` shrinks the storm for CI smoke runs.
    """
    import asyncio

    from repro.faults import FaultPlan
    from repro.runtime import pool_stats
    from repro.service import ClientQuota, RuntimeService

    smoke = os.environ.get("REPRO_STORM_SMOKE", "").strip() not in ("", "0")
    clients = 3 if smoke else 6
    per_client = 3 if smoke else 8
    jobs = clients * per_client
    shots = 256
    retry = {"max_retries": 3, "backoff_s": 0.001, "max_backoff_s": 0.01}
    circuit = library.bell_pair()
    circuit.measure_all()
    backend = get_backend("statevector")
    quota = ClientQuota(max_in_flight_jobs=4, over_quota="queue")
    reference = {
        seed: dict(execute(circuit, backend, shots=shots,
                           seed=seed).result().counts)
        for seed in range(jobs)
    }

    async def storm(fault_plan=None, executor="thread", chunk_shots=None,
                    reference=reference):
        service = RuntimeService(executor=executor, journal=False,
                                 accounting=False)
        try:
            tokens = [
                service.register_client(f"chaos{c}", quota=quota)
                for c in range(clients)
            ]

            async def one_client(c, token):
                options = dict(retry=dict(retry))
                if fault_plan is not None:
                    options["fault_plan"] = fault_plan
                if chunk_shots is not None:
                    options["chunk_shots"] = chunk_shots
                handles = [
                    (c * per_client + i, await service.submit(
                        circuit, backend, shots=shots,
                        seed=c * per_client + i, token=token, **options,
                    ))
                    for i in range(per_client)
                ]
                async for _h in service.as_completed(
                    [h for _s, h in handles], timeout=300
                ):
                    pass
                return handles

            start = time.perf_counter()
            all_handles = await asyncio.gather(*(
                one_client(c, token) for c, token in enumerate(tokens)
            ))
            elapsed = time.perf_counter() - start
            survived = failed = 0
            for handles in all_handles:
                for seed, handle in handles:
                    if handle.status() == "done":
                        survived += 1
                        counts = await handle.counts()
                        assert counts == [reference[seed]], (
                            f"survivor seed {seed} diverged from the "
                            "fault-free reference"
                        )
                    else:
                        failed += 1
            return elapsed, survived, failed
        finally:
            await service.close()

    def run_storm(**kwargs):
        return asyncio.run(storm(**kwargs))

    silent_sites = {site: 0.0 for site in
                    ("chunk.simulate", "pool.worker_crash")}

    # -- capability tax: armed-but-silent plan vs clean, best-of runs ----
    run_storm()  # warm-up: pools, transpiles, distribution machinery
    clean_s, survived, failed = run_storm()
    assert (survived, failed) == (jobs, 0)
    armed_s = None
    for _attempt in range(3):
        candidate, survived, failed = run_storm(
            fault_plan=FaultPlan(seed=1, sites=dict(silent_sites))
        )
        assert (survived, failed) == (jobs, 0)
        armed_s = candidate if armed_s is None else min(armed_s, candidate)
        if armed_s <= clean_s * 1.15:
            break
        best, _s, _f = run_storm()
        clean_s = min(clean_s, best)
    injection_overhead = armed_s / clean_s - 1.0
    assert armed_s <= clean_s * 1.15, (
        f"armed-but-silent fault plan ({armed_s:.3f}s) should cost <=15% "
        f"over the clean storm ({clean_s:.3f}s), got {injection_overhead:+.1%}"
    )

    # -- live chaos: ~20% of chunk attempts fault, retries absorb it ----
    plan = FaultPlan(seed=13, sites={"chunk.simulate": 0.2})
    faulted_s, survived, failed = run_storm(fault_plan=plan)
    fired = plan.stats()["chunk.simulate"]["fired"]
    assert fired > 0, "a 20% plan that never fired measured nothing"
    assert survived + failed == jobs  # every job terminated
    assert survived >= jobs * 0.8

    # -- acceptance: a worker hard-killed mid-storm, zero failed jobs ----
    # Chunked jobs re-seed per (seed, chunk index), so the crash storm's
    # survivors are held against a reference computed the same way.
    chunked_reference = {
        seed: dict(execute(circuit, backend, shots=shots, seed=seed,
                           chunk_shots=shots // 4, executor="process",
                           retry=False).result().counts)
        for seed in range(jobs)
    }
    rebuilds_before = pool_stats()["rebuilds"]
    crash_plan = FaultPlan(seed=2, sites={
        "pool.worker_crash": {"rate": 1.0, "times": 1},
    })
    crash_s, crash_survived, crash_failed = run_storm(
        fault_plan=crash_plan, executor="process", chunk_shots=shots // 4,
        reference=chunked_reference,
    )
    assert crash_plan.stats()["pool.worker_crash"]["fired"] == 1
    assert (crash_survived, crash_failed) == (jobs, 0)
    assert pool_stats()["rebuilds"] > rebuilds_before

    record(
        "chaos_storm_resilience",
        clean_s,
        armed_s,
        clients=clients,
        jobs=jobs,
        shots_per_job=shots,
        clean_jobs_per_second=round(jobs / clean_s, 2),
        armed_jobs_per_second=round(jobs / armed_s, 2),
        injection_overhead=round(injection_overhead, 4),
        faulted_s=round(faulted_s, 6),
        faulted_jobs_per_second=round(jobs / faulted_s, 2),
        faults_fired=fired,
        faulted_survived=survived,
        faulted_failed=failed,
        crash_storm_s=round(crash_s, 6),
        crash_jobs_per_second=round(jobs / crash_s, 2),
        smoke=smoke,
    )
    emit(
        "runtime bench — storm resilience under fault injection\n"
        f"storm           : {clients} clients x {per_client} submissions "
        f"({jobs} jobs, retries live)\n"
        f"clean storm     : {clean_s:8.3f} s ({jobs / clean_s:.1f} jobs/s)\n"
        f"armed (silent)  : {armed_s:8.3f} s ({jobs / armed_s:.1f} jobs/s, "
        f"overhead {injection_overhead:+.1%})\n"
        f"faulted (20%)   : {faulted_s:8.3f} s ({jobs / faulted_s:.1f} "
        f"jobs/s, {fired} faults fired, {survived}/{jobs} survived, "
        f"{failed} failed)\n"
        f"worker crash    : {crash_s:8.3f} s (process pool killed once, "
        f"rebuilt, {crash_survived}/{jobs} jobs done, 0 failed)"
    )
