"""Runtime bench: the batched execute() path vs the sequential run() loop.

The workload mirrors the paper's sweeps: a handful of distinct instrumented
circuits, each executed many times (noise points, shot counts, repeated
assertion variants).  The sequential baseline pays a fresh transpile and a
fresh density-matrix evolution per run — exactly what the seed code did.
The batched path goes through ``repro.runtime.execute`` with the transpile
cache and job deduplication on, so each distinct circuit is lowered and
simulated once and every duplicate job re-uses or re-samples the cached
distribution.

Counts are asserted bit-identical between the two paths (the runtime's
determinism contract) and the batched wall-clock must beat the loop.

Run with ``pytest benchmarks/bench_runtime.py -s`` to see the numbers.
"""

import time

from conftest import emit

from repro.circuits import library
from repro.core.injector import AssertionInjector
from repro.devices.backend import NoisyDeviceBackend
from repro.devices.ibmqx4 import ibmqx4
from repro.runtime import TranspileCache, execute

SHOTS = 2048
SEED = 11
REPEATS = 4  # sweep repetitions of each distinct circuit


def sweep_circuits():
    """Build 4 distinct instrumented sweep variants (16 jobs with repeats)."""
    variants = []

    bell_classical = AssertionInjector(library.bell_pair())
    bell_classical.assert_classical(0, 0)
    bell_classical.measure_program()
    variants.append(bell_classical.circuit)

    bell_entangled = AssertionInjector(library.bell_pair())
    bell_entangled.assert_entangled([0, 1])
    bell_entangled.measure_program()
    variants.append(bell_entangled.circuit)

    for mode in ("pairwise", "single"):
        ghz = AssertionInjector(library.ghz_state(3))
        ghz.assert_entangled([0, 1, 2], mode=mode)
        ghz.measure_program()
        variants.append(ghz.circuit)

    return variants * REPEATS


def test_batched_execute_beats_sequential_loop():
    device = ibmqx4()
    circuits = sweep_circuits()
    assert len(circuits) >= 8

    # Sequential baseline: fresh transpile + fresh simulation per run, the
    # way the experiments executed before the runtime existed.
    uncached = NoisyDeviceBackend(device, cache=False)
    start = time.perf_counter()
    sequential = [uncached.run(c, shots=SHOTS, seed=SEED) for c in circuits]
    sequential_s = time.perf_counter() - start

    # Batched path: one execute() call, shared cache, dedupe, thread pool.
    cache = TranspileCache()
    cached = NoisyDeviceBackend(device, cache=cache)
    start = time.perf_counter()
    jobs = execute(circuits, cached, shots=SHOTS, seed=SEED, max_workers=4)
    batched = jobs.result()
    batched_s = time.perf_counter() - start

    for loop_result, job_result in zip(sequential, batched):
        assert dict(loop_result.counts) == dict(job_result.counts)

    distinct = len(set(c.fingerprint() for c in circuits))
    assert jobs.num_executed == distinct
    assert cache.stats()["misses"] == distinct
    # Dedup cuts the simulated work 4x, so this wall-clock comparison has
    # ~300% headroom against scheduler noise on shared CI runners; the
    # semantic guarantees are carried by the equality asserts above.
    assert batched_s < sequential_s, (
        f"batched path ({batched_s:.3f}s) should beat the sequential loop "
        f"({sequential_s:.3f}s)"
    )
    emit(
        "runtime bench — batched execute() vs sequential backend.run() loop\n"
        f"jobs            : {len(circuits)} ({distinct} distinct circuits)\n"
        f"sequential loop : {sequential_s:8.3f} s\n"
        f"batched execute : {batched_s:8.3f} s  "
        f"(speedup {sequential_s / batched_s:.1f}x, "
        f"{jobs.num_executed} simulations, "
        f"{cache.stats()['hits']} transpile-cache hits)"
    )


def test_resampled_shot_sweep_simulates_once():
    """A shots/seed sweep over one circuit runs a single simulation."""
    device = ibmqx4()
    injector = AssertionInjector(library.bell_pair())
    injector.assert_entangled([0, 1])
    injector.measure_program()
    circuit = injector.circuit

    shots = [512, 1024, 2048, 4096, 512, 1024, 2048, 4096]
    seeds = [1, 2, 3, 4, 5, 6, 7, 8]
    backend = NoisyDeviceBackend(device, cache=TranspileCache())

    start = time.perf_counter()
    jobs = execute([circuit] * 8, backend, shots=shots, seed=seeds, max_workers=4)
    results = jobs.result()
    batched_s = time.perf_counter() - start
    assert jobs.num_executed == 1

    start = time.perf_counter()
    dedicated = [
        NoisyDeviceBackend(device, cache=False).run(circuit, shots=n, seed=s)
        for n, s in zip(shots, seeds)
    ]
    sequential_s = time.perf_counter() - start

    for loop_result, job_result in zip(dedicated, results):
        assert dict(loop_result.counts) == dict(job_result.counts)
    emit(
        "runtime bench — 8-point shot/seed sweep of one circuit\n"
        f"sequential loop : {sequential_s:8.3f} s (8 simulations)\n"
        f"batched execute : {batched_s:8.3f} s (1 simulation + 7 resamples, "
        f"speedup {sequential_s / batched_s:.1f}x)"
    )
