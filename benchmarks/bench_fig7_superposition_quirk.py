"""E2 / Fig. 7 bench: superposition assertion verified QUIRK-style.

Regenerates the figure's table (measured vs closed-form error rates, plus
the forced-superposition property) and times the exact reproduction.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.fig7 import run_fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7_superposition_assertion_quirk(benchmark):
    result = benchmark(run_fig7)
    emit(result.summary())
    # Paper shape: classical inputs err exactly 50% and exit in an equal
    # superposition; |+> never errs; |-> always errs.
    for label in ("|0>", "|1>"):
        _l, measured, predicted, weight = result.row(label)
        assert measured == pytest.approx(0.5)
        assert weight == pytest.approx(0.5)
    assert result.row("|+>")[1] == pytest.approx(0.0, abs=1e-12)
    assert result.row("|->")[1] == pytest.approx(1.0)
    # Measured error equals the paper's (2 - 4ab)/4 everywhere.
    for _label, measured, predicted, _w in result.rows:
        assert measured == pytest.approx(predicted, abs=1e-9)
