"""E1 / Fig. 6 bench: classical assertion verified QUIRK-style.

Regenerates the figure's claim table (error probabilities + post-selected
projection fidelity) and times the exact statevector reproduction.
"""

import math

import pytest

from benchmarks.conftest import emit
from repro.experiments.fig6 import run_fig6


@pytest.mark.benchmark(group="fig6")
def test_fig6_classical_assertion_quirk(benchmark):
    result = benchmark(run_fig6)
    emit(result.summary())
    # Paper shape: |+> errs 50% and is projected exactly to |0> on pass.
    _label, p_err, fidelity = result.row("|+>")
    assert p_err == pytest.approx(0.5)
    assert fidelity == pytest.approx(1.0)
    # Classical inputs behave deterministically.
    assert result.row("|0>")[1] == pytest.approx(0.0, abs=1e-12)
    assert result.row("|1>")[1] == pytest.approx(1.0)
    # P(error) = |b|^2 generalises.
    assert result.row("0.8|0>")[1] == pytest.approx(0.36, abs=1e-9)
