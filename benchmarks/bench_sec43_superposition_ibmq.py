"""E5 / §4.3 bench: superposition assertion on the ibmqx4 model.

Regenerates the assertion-error-rate number the paper reports for the
hardware run (15.6 %) plus the fidelity improvement our simulator can
additionally measure, and times the pipeline.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.sec43 import run_sec43


@pytest.mark.benchmark(group="sec43")
def test_sec43_superposition_assertion_ibmq(benchmark):
    result = benchmark(run_sec43, shots=8192, seed=2020)
    emit(result.summary())
    # Paper shape: the assertion fires on a noticeable fraction of shots
    # even though the Z-basis readout of |+> is uninformative.
    assert 0.02 < result.assertion_error_rate < 0.25
    # Filtering on the ancilla improves the |+> fidelity of the survivors.
    assert result.fidelity_filtered > result.fidelity_unfiltered
