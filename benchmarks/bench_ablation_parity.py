"""A1 bench: even-vs-odd CNOT-count ablation (the Fig. 4 correctness claim).

Regenerates the ablation table showing that an odd parity chain leaves the
ancilla entangled (1 bit of entropy) and halves the downstream GHZ
fidelity, while even chains are free.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablation_parity import run_parity_ablation


@pytest.mark.benchmark(group="ablation-parity")
def test_parity_cnot_count_ablation(benchmark):
    result = benchmark(run_parity_ablation, sizes=(2, 3, 4, 5))
    emit(result.summary())
    for _n, variant, entropy, fidelity in result.rows:
        if variant == "even":
            assert entropy == pytest.approx(0.0, abs=1e-9)
            assert fidelity == pytest.approx(1.0, abs=1e-9)
        else:
            assert entropy == pytest.approx(1.0, abs=1e-9)
            assert fidelity == pytest.approx(0.5, abs=1e-6)
