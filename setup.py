"""Setuptools entry point with offline-environment support.

The execution environment ships setuptools 65 without the ``wheel``
distribution, which PEP 660 editable installs require.  When ``wheel`` is
missing, we alias the bundled clean-room shim (``build_support/wheel_shim``)
as the ``wheel`` module and register its ``bdist_wheel`` command, so plain
``pip install -e . --no-build-isolation`` (and ``python setup.py develop``)
work offline.  With a real ``wheel`` installed the shim is ignored.

All package metadata lives in ``pyproject.toml``.
"""

import importlib
import os
import sys

from setuptools import setup

_CMDCLASS = {}

try:
    import wheel  # noqa: F401  (real wheel available: nothing to do)
except ImportError:
    _here = os.path.dirname(os.path.abspath(__file__))
    _support = os.path.join(_here, "build_support")
    if _support not in sys.path:
        sys.path.insert(0, _support)
    _shim = importlib.import_module("wheel_shim")
    sys.modules["wheel"] = _shim
    sys.modules["wheel.wheelfile"] = importlib.import_module("wheel_shim.wheelfile")
    _bdist_module = importlib.import_module("wheel_shim.bdist_wheel")
    sys.modules["wheel.bdist_wheel"] = _bdist_module
    _CMDCLASS["bdist_wheel"] = _bdist_module.bdist_wheel

setup(cmdclass=_CMDCLASS)
