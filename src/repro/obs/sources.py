"""Collector registrations for the runtime layer's existing stats.

The runtime's subsystems already keep counters — executor pool registry,
the two `CacheStore`-backed caches (per-tier hits/misses/stores/
evictions/errors), and the cost model's learned estimates.  This module
folds them into :data:`~repro.obs.metrics.DEFAULT_REGISTRY` as on-demand
collectors: nothing is sampled until a snapshot or a ``/v1/metrics``
scrape asks.

Imports of the runtime modules happen inside the collector bodies so the
``obs`` package itself stays import-cycle free (``repro.runtime``
imports us at the bottom of its ``__init__`` to self-register).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.obs.metrics import DEFAULT_REGISTRY, MetricsRegistry, Sample

__all__ = ["register_runtime_sources"]

_REGISTERED: set = set()


def _cache_samples(cache_name: str, stats: dict) -> List[Sample]:
    samples: List[Sample] = []
    samples.append(("repro_cache_entries", {"cache": cache_name}, stats.get("entries", 0)))
    for tier in ("memory", "disk"):
        tier_stats = stats.get(tier)
        if not tier_stats:
            continue
        labels = {"cache": cache_name, "tier": tier}
        for field in ("hits", "misses", "stores", "evictions", "errors"):
            if field in tier_stats:
                samples.append(
                    (f"repro_cache_{field}_total", labels, tier_stats[field], "counter")
                )
        if "entries" in tier_stats:
            samples.append(("repro_cache_tier_entries", labels, tier_stats["entries"]))
    return samples


def _collect_pools() -> Iterable[Sample]:
    from repro.runtime.pool import pool_stats

    stats = pool_stats()
    yield ("repro_executor_pools_active", None, stats.get("active", 0))
    yield ("repro_executor_pools_created_total", None, stats.get("created", 0), "counter")
    yield ("repro_executor_pools_reused_total", None, stats.get("reused", 0), "counter")
    yield ("repro_executor_pool_rebuilds_total", None, stats.get("rebuilds", 0), "counter")
    # ``pools`` is a list of (kind, width) pairs — one live pool per kind.
    for label, width in stats.get("pools") or ():
        yield ("repro_executor_pool_width", {"pool": str(label)}, width)


def _collect_transpile_cache() -> Iterable[Sample]:
    from repro.runtime.cache import transpile_cache_stats

    return _cache_samples("transpile", transpile_cache_stats())


def _collect_distribution_cache() -> Iterable[Sample]:
    from repro.runtime.distcache import distribution_cache_stats

    return _cache_samples("distribution", distribution_cache_stats())


def _collect_cost_model() -> Iterable[Sample]:
    from repro.runtime.profile import cost_model_stats

    stats = cost_model_stats()
    samples: List[Sample] = _cache_samples("cost_model", stats)
    for label, entry in (stats.get("profiles") or {}).items():
        labels = {"profile": label}
        if entry.get("shot_samples"):
            samples.append(("repro_cost_model_per_shot_seconds", labels, entry["per_shot"]))
            samples.append(
                ("repro_cost_model_shot_samples_total", labels, entry["shot_samples"], "counter")
            )
        if entry.get("prepare_samples"):
            samples.append(
                ("repro_cost_model_per_prepare_seconds", labels, entry["per_prepare"])
            )
    return samples


def register_runtime_sources(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Register the runtime-layer collectors (idempotent per registry)."""
    registry = registry or DEFAULT_REGISTRY
    if id(registry) in _REGISTERED:
        return registry
    registry.register_collector("runtime.pools", _collect_pools)
    registry.register_collector("runtime.transpile_cache", _collect_transpile_cache)
    registry.register_collector("runtime.distribution_cache", _collect_distribution_cache)
    registry.register_collector("runtime.cost_model", _collect_cost_model)
    _REGISTERED.add(id(registry))
    return registry
