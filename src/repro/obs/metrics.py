"""Process-wide metrics registry: counters, gauges, bounded histograms.

One registry replaces the stack's scattered snapshot shapes.  Metrics
come in two flavours:

* **instruments** — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` objects handed out by the registry and updated
  directly from hot paths.  Each instrument takes its own small lock on
  update and on read, so a snapshot never observes a torn value (e.g. a
  histogram whose ``count`` and ``sum`` disagree) and counters are
  monotone across successive snapshots.
* **collectors** — callables registered by subsystems that already keep
  their own counters (executor pools, cache tiers, the cost model, the
  scheduler, the service).  A collector returns samples on demand; it is
  only invoked at snapshot/exposition time, so registering one costs
  nothing on the hot path.  Collectors registered under the same name
  replace each other (a fresh service instance takes over the
  ``service`` slot), and a collector that raises is dropped from that
  snapshot rather than poisoning the scrape.

:meth:`MetricsRegistry.snapshot` returns plain JSON-safe dicts (the
``--runtime-stats-json`` shape); :meth:`MetricsRegistry.render_prometheus`
renders the text exposition format served at ``GET /v1/metrics``.
"""

from __future__ import annotations

import math
import re
import threading
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "DEFAULT_REGISTRY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
]

#: A collector sample: ``(name, labels-or-None, value)`` with an optional
#: fourth element giving the exposition type (``"gauge"`` by default).
Sample = Tuple  # (name, Optional[Dict[str, Any]], float[, str])

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize_name(name: str) -> str:
    name = _NAME_RE.sub("_", str(name))
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _label_key(labels: Optional[Dict[str, Any]]) -> Tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(label_key: Tuple) -> str:
    if not label_key:
        return ""
    escaped = (
        (k, v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n"))
        for k, v in label_key
    )
    return "{" + ",".join(f'{_LABEL_RE.sub("_", k)}="{v}"' for k, v in escaped) + "}"


class _Metric:
    """Shared identity plumbing for all instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, labels: Optional[Dict[str, Any]], help: str) -> None:
        self.name = _sanitize_name(name)
        self.label_key = _label_key(labels)
        self.help = help
        self._lock = threading.Lock()

    @property
    def full_name(self) -> str:
        return self.name + _render_labels(self.label_key)


class Counter(_Metric):
    """Monotonically increasing count; ``inc()`` rejects negative steps."""

    kind = "counter"

    def __init__(self, name: str, labels=None, help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> float:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Metric):
    """Point-in-time value, either ``set()`` directly or read from ``fn``."""

    kind = "gauge"

    def __init__(self, name: str, labels=None, help: str = "", fn: Optional[Callable[[], float]] = None) -> None:
        super().__init__(name, labels, help)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:
                return math.nan
        with self._lock:
            return self._value


class Histogram(_Metric):
    """Count/sum/min/max plus a bounded reservoir for percentiles.

    The reservoir is a ``deque(maxlen=...)`` keeping the most recent
    observations — the same sliding-window flavour as the service's
    ``LatencyWindow`` — so memory stays bounded under storms while
    ``count``/``sum`` remain exact totals.  ``snapshot()`` copies state
    under the instrument lock: never torn, even mid-storm.
    """

    kind = "histogram"

    def __init__(self, name: str, labels=None, help: str = "", reservoir: int = 1024) -> None:
        super().__init__(name, labels, help)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._reservoir = deque(maxlen=max(1, int(reservoir)))

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._reservoir.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            count = self._count
            total = self._sum
            lo, hi = self._min, self._max
            window = sorted(self._reservoir)
        stats: Dict[str, Any] = {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": (total / count) if count else None,
        }
        for q in (0.5, 0.9, 0.99):
            stats[f"p{int(q * 100)}"] = _nearest_rank(window, q)
        return stats


def _nearest_rank(ordered: List[float], quantile: float) -> Optional[float]:
    if not ordered:
        return None
    rank = max(1, math.ceil(quantile * len(ordered)))
    return ordered[rank - 1]


class MetricsRegistry:
    """Get-or-create instrument factory plus on-demand collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, Tuple], _Metric] = {}
        self._collectors: Dict[str, Callable[[], Iterable[Sample]]] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------

    def _get_or_create(self, cls, name: str, labels, **kwargs) -> _Metric:
        key = (_sanitize_name(name), _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {key[0]} already registered as {metric.kind}, "
                    f"not {cls.kind}"
                )
            return metric

    def counter(self, name: str, labels=None, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, labels, help=help)

    def gauge(self, name: str, labels=None, help: str = "", fn=None) -> Gauge:
        gauge = self._get_or_create(Gauge, name, labels, help=help)
        if fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(self, name: str, labels=None, help: str = "", reservoir: int = 1024) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help=help, reservoir=reservoir)

    # ------------------------------------------------------------------
    # Collectors
    # ------------------------------------------------------------------

    def register_collector(self, name: str, fn: Callable[[], Iterable[Sample]]) -> None:
        """Register (or replace) a named on-demand sample source."""
        with self._lock:
            self._collectors[str(name)] = fn

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(str(name), None)

    def _collect(self) -> List[Tuple[str, Tuple, float, str]]:
        with self._lock:
            collectors = list(self._collectors.items())
        samples: List[Tuple[str, Tuple, float, str]] = []
        for _name, fn in collectors:
            try:
                produced = list(fn())
            except Exception:
                continue
            for sample in produced:
                name, labels, value = sample[0], sample[1], sample[2]
                kind = sample[3] if len(sample) > 3 else "gauge"
                try:
                    value = float(value)
                except (TypeError, ValueError):
                    continue
                samples.append((_sanitize_name(name), _label_key(labels), value, kind))
        return samples

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Return the full registry as JSON-safe dicts.

        Each instrument is read under its own lock (no torn histograms);
        collector samples land under ``gauges``/``counters`` keyed by
        their rendered name.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in metrics:
            if isinstance(metric, Counter):
                out["counters"][metric.full_name] = metric.value
            elif isinstance(metric, Histogram):
                out["histograms"][metric.full_name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                value = metric.value
                out["gauges"][metric.full_name] = None if math.isnan(value) else value
        for name, label_key, value, kind in self._collect():
            bucket = "counters" if kind == "counter" else "gauges"
            out[bucket][name + _render_labels(label_key)] = value
        return out

    def render_prometheus(self) -> str:
        """Render the Prometheus text exposition format (version 0.0.4)."""
        families: Dict[str, Dict[str, Any]] = {}

        def family(name: str, kind: str, help: str = "") -> List[str]:
            entry = families.setdefault(name, {"kind": kind, "help": help, "lines": []})
            return entry["lines"]

        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            labels = _render_labels(metric.label_key)
            if isinstance(metric, Counter):
                family(metric.name, "counter", metric.help).append(
                    f"{metric.name}{labels} {_fmt(metric.value)}"
                )
            elif isinstance(metric, Histogram):
                stats = metric.snapshot()
                lines = family(metric.name, "summary", metric.help)
                for q in ("p50", "p90", "p99"):
                    if stats[q] is not None:
                        quantile = {"p50": "0.5", "p90": "0.9", "p99": "0.99"}[q]
                        pairs = metric.label_key + (("quantile", quantile),)
                        lines.append(f"{metric.name}{_render_labels(pairs)} {_fmt(stats[q])}")
                lines.append(f"{metric.name}_sum{labels} {_fmt(stats['sum'])}")
                lines.append(f"{metric.name}_count{labels} {_fmt(stats['count'])}")
            elif isinstance(metric, Gauge):
                value = metric.value
                if not math.isnan(value):
                    family(metric.name, "gauge", metric.help).append(
                        f"{metric.name}{labels} {_fmt(value)}"
                    )
        for name, label_key, value, kind in self._collect():
            kind = "counter" if kind == "counter" else "gauge"
            family(name, kind).append(f"{name}{_render_labels(label_key)} {_fmt(value)}")

        chunks: List[str] = []
        for name in sorted(families):
            entry = families[name]
            if entry["help"]:
                chunks.append(f"# HELP {name} {entry['help']}")
            chunks.append(f"# TYPE {name} {entry['kind']}")
            chunks.extend(entry["lines"])
        return "\n".join(chunks) + "\n" if chunks else ""


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


#: The process-wide registry every subsystem registers into.
DEFAULT_REGISTRY = MetricsRegistry()
