"""Observability layer: job trace span trees and a unified metrics registry.

The stack spans five layers (HTTP -> service -> scheduler -> executor
pools -> batched simulators) and, before this package, each kept private
telemetry: `service.stats` rolled its own latency windows, the scheduler
and :class:`~repro.runtime.store.CacheStore` kept ad-hoc counters, and
the :class:`~repro.runtime.profile.CostModel` learned from wall-clocks
nobody could inspect per job.  ``repro.obs`` closes the loop:

* :mod:`repro.obs.trace` — per-job span trees (submit -> admission ->
  queue wait -> dispatch -> prepare -> per-chunk simulate -> collect ->
  settle) with monotonic timestamps.  Span contexts are plain picklable
  dicts shipped inside chunk tasks, so worker-measured wall-clocks
  survive thread *and* process executor boundaries and merge back into
  the parent tree on completion.  Tracing is always on and cheap (a few
  dict/list appends per chunk); :func:`set_tracing_enabled` exists so
  benchmarks can measure the overhead, not so production can avoid it.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, histograms with bounded reservoirs) that the
  existing ad-hoc stats register into: executor pools, both cache
  tiers, the cost model, scheduler counters and the service layer all
  publish through one snapshot with one exposition format
  (:meth:`MetricsRegistry.render_prometheus` backs ``GET /v1/metrics``).

Nothing in here imports the runtime or service layers at module import
time — those layers import *us* and register their sources — so the
dependency direction stays acyclic.
"""

from repro.obs.metrics import (
    DEFAULT_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    set_tracing_enabled,
    tracing_enabled,
    worker_chunk_record,
)

__all__ = [
    "Counter",
    "DEFAULT_REGISTRY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "set_tracing_enabled",
    "tracing_enabled",
    "worker_chunk_record",
]
