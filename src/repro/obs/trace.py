"""Per-job trace span trees with cross-executor propagation.

A :class:`Span` is one timed stage of a job's life (``queue``,
``prepare``, ``chunk``, ...).  Spans form a tree rooted at the job; every
timestamp is :func:`time.monotonic` so durations are immune to wall-clock
steps.  The tree is built in the submitting process; the only stage that
runs somewhere else is the chunk simulation, which may execute in a
worker *process* whose monotonic clock is unrelated to ours.  The
contract for crossing that boundary:

* the parent creates the chunk span and ships only a small picklable
  *context* dict (:meth:`Span.context`) into the chunk task;
* the worker measures its own wall-clock and returns a plain dict built
  by :func:`worker_chunk_record` alongside the chunk result;
* the parent merges that record into the pre-created span
  (:meth:`Span.merge_worker`) when the future completes — worker
  *durations* are trusted, worker *timestamps* are not.

Mutation is append-only on lists and item-assignment on dicts, both
atomic under the GIL, so recording never takes a lock: tracing stays
always-on and cheap enough that the storm bench holds traced-vs-untraced
overhead under 5%.  :meth:`Span.to_dict` snapshots a running tree; a
reader may observe a stage mid-flight (``duration_s: null``), never a
torn record.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "set_tracing_enabled",
    "tracing_enabled",
    "worker_chunk_record",
]

_SPAN_IDS = itertools.count(1)

#: Process-wide switch.  Tracing is designed to be always-on; this knob
#: exists so the storm benchmark can measure a genuinely untraced
#: baseline.  It is not part of the public service configuration.
_TRACING_ENABLED = True


def tracing_enabled() -> bool:
    """Return whether new spans should be created in this process."""
    return _TRACING_ENABLED


def set_tracing_enabled(enabled: bool) -> bool:
    """Set the process-wide tracing switch; returns the previous value.

    Benchmark-only: flipping this off mid-job leaves that job's existing
    spans in place (guards check for a span, not this flag), it only
    stops *new* jobs from being traced.
    """
    global _TRACING_ENABLED
    previous = _TRACING_ENABLED
    _TRACING_ENABLED = bool(enabled)
    return previous


class Span:
    """One timed stage of a job, with attributes, events and children."""

    __slots__ = ("name", "span_id", "start_s", "end_s", "attrs", "events", "children")

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        start_s: Optional[float] = None,
    ) -> None:
        self.name = str(name)
        self.span_id = next(_SPAN_IDS)
        self.start_s = time.monotonic() if start_s is None else float(start_s)
        self.end_s: Optional[float] = None
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.events: List[Dict[str, Any]] = []
        self.children: List["Span"] = []

    # ------------------------------------------------------------------
    # Building the tree
    # ------------------------------------------------------------------

    def child(self, name: str, **attrs: Any) -> "Span":
        """Create, attach and return a child span starting now."""
        span = Span(name, attrs or None)
        self.children.append(span)
        return span

    def finish(self, end_s: Optional[float] = None) -> "Span":
        """Stamp the end time once; later calls are no-ops (idempotent)."""
        if self.end_s is None:
            self.end_s = time.monotonic() if end_s is None else float(end_s)
        return self

    def set(self, **attrs: Any) -> "Span":
        """Merge attributes into the span."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **fields: Any) -> Dict[str, Any]:
        """Append a timestamped structured event to this span."""
        record = {"name": str(name), "t_s": time.monotonic()}
        record.update(fields)
        self.events.append(record)
        return record

    # ------------------------------------------------------------------
    # Crossing executor boundaries
    # ------------------------------------------------------------------

    def context(self) -> Dict[str, Any]:
        """Return the picklable context shipped inside a chunk task."""
        return {"span_id": self.span_id, "name": self.name}

    def merge_worker(self, record: Optional[Dict[str, Any]]) -> "Span":
        """Fold a worker-side :func:`worker_chunk_record` into this span.

        Worker durations are copied verbatim (``worker_wall_s`` is the
        acceptance-checked number); worker timestamps are ignored because
        another process's monotonic clock shares no epoch with ours.
        """
        if record:
            for key, value in record.items():
                if key != "span_id":
                    self.attrs[key] = value
        return self

    # ------------------------------------------------------------------
    # Reading the tree
    # ------------------------------------------------------------------

    @property
    def duration_s(self) -> Optional[float]:
        """Seconds from start to finish, or ``None`` while running."""
        return None if self.end_s is None else self.end_s - self.start_s

    def find(self, name: str) -> List["Span"]:
        """Return every descendant span (depth-first) with ``name``."""
        found = []
        for span in self.children:
            if span.name == name:
                found.append(span)
            found.extend(span.find(name))
        return found

    def to_dict(self, t0: Optional[float] = None) -> Dict[str, Any]:
        """Snapshot the subtree as JSON-safe dicts.

        Timestamps are rebased to the root's start (``t0``) so the wire
        form is a readable relative timeline rather than raw monotonic
        values.  Safe to call on a running tree.
        """
        base = self.start_s if t0 is None else t0
        end_s = self.end_s
        node: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "start_s": round(self.start_s - base, 9),
            "duration_s": None if end_s is None else round(end_s - self.start_s, 9),
            "attrs": dict(self.attrs),
        }
        if self.events:
            node["events"] = [
                {**dict(event), "t_s": round(event["t_s"] - base, 9)}
                for event in list(self.events)
            ]
        node["children"] = [span.to_dict(base) for span in list(self.children)]
        return node


def worker_chunk_record(
    context: Optional[Dict[str, Any]],
    *,
    engine: str,
    shots: int,
    duration_s: float,
    batch_width: Optional[int] = None,
) -> Optional[Dict[str, Any]]:
    """Build the plain dict a chunk worker returns next to its result.

    ``None`` context (tracing off at submit time) yields ``None`` so the
    untraced path ships nothing extra across the pickle boundary.
    """
    if context is None:
        return None
    record = {
        "span_id": context.get("span_id"),
        "engine": engine,
        "worker_shots": int(shots),
        "worker_wall_s": float(duration_s),
        "worker_pid": os.getpid(),
    }
    if batch_width is not None:
        record["batch_width"] = int(batch_width)
    return record
