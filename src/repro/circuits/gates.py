"""Gate definitions and exact unitary matrices.

The matrix conventions follow the de-facto standard used by mainstream SDKs:

* ``u3(theta, phi, lam)`` is the generic single-qubit rotation
  ``[[cos(t/2), -e^{i lam} sin(t/2)], [e^{i phi} sin(t/2), e^{i(phi+lam)} cos(t/2)]]``.
* Multi-qubit gate matrices are written in the basis ``|q_first ... q_last>``
  where the *first* operand is the most-significant bit.  For example
  ``CX(control, target)`` is ``diag(I, X)`` in the ``|control, target>`` basis.

All matrices are returned as fresh ``numpy`` arrays so callers may mutate them
safely.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GateError

SQRT2_INV = 1.0 / math.sqrt(2.0)

#: Tolerance used for unitarity and equality checks on gate matrices.
MATRIX_ATOL = 1e-10


# ---------------------------------------------------------------------------
# Matrix constructors
# ---------------------------------------------------------------------------

def identity_matrix() -> np.ndarray:
    """Return the single-qubit identity matrix."""
    return np.eye(2, dtype=complex)


def x_matrix() -> np.ndarray:
    """Return the Pauli-X (NOT) matrix."""
    return np.array([[0, 1], [1, 0]], dtype=complex)


def y_matrix() -> np.ndarray:
    """Return the Pauli-Y matrix."""
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def z_matrix() -> np.ndarray:
    """Return the Pauli-Z matrix."""
    return np.array([[1, 0], [0, -1]], dtype=complex)


def h_matrix() -> np.ndarray:
    """Return the Hadamard matrix."""
    return np.array([[SQRT2_INV, SQRT2_INV], [SQRT2_INV, -SQRT2_INV]], dtype=complex)


def s_matrix() -> np.ndarray:
    """Return the phase gate S = sqrt(Z)."""
    return np.array([[1, 0], [0, 1j]], dtype=complex)


def sdg_matrix() -> np.ndarray:
    """Return the inverse phase gate S†."""
    return np.array([[1, 0], [0, -1j]], dtype=complex)


def t_matrix() -> np.ndarray:
    """Return the T gate (pi/8 gate)."""
    return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)


def tdg_matrix() -> np.ndarray:
    """Return the inverse T gate."""
    return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)


def sx_matrix() -> np.ndarray:
    """Return the sqrt(X) gate."""
    return 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)


def sxdg_matrix() -> np.ndarray:
    """Return the inverse sqrt(X) gate."""
    return 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex)


def rx_matrix(theta: float) -> np.ndarray:
    """Return the rotation about the X axis by ``theta``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry_matrix(theta: float) -> np.ndarray:
    """Return the rotation about the Y axis by ``theta``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz_matrix(theta: float) -> np.ndarray:
    """Return the rotation about the Z axis by ``theta``."""
    e_minus = cmath.exp(-0.5j * theta)
    e_plus = cmath.exp(0.5j * theta)
    return np.array([[e_minus, 0], [0, e_plus]], dtype=complex)


def phase_matrix(lam: float) -> np.ndarray:
    """Return the phase gate ``diag(1, e^{i lam})`` (aka ``u1``)."""
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def u2_matrix(phi: float, lam: float) -> np.ndarray:
    """Return the ``u2`` gate: ``u3(pi/2, phi, lam)``."""
    return u3_matrix(math.pi / 2.0, phi, lam)


def u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Return the generic single-qubit gate ``u3(theta, phi, lam)``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def cx_matrix() -> np.ndarray:
    """Return the CNOT matrix in the ``|control, target>`` basis."""
    return controlled_matrix(x_matrix())


def cy_matrix() -> np.ndarray:
    """Return the controlled-Y matrix."""
    return controlled_matrix(y_matrix())


def cz_matrix() -> np.ndarray:
    """Return the controlled-Z matrix."""
    return controlled_matrix(z_matrix())


def ch_matrix() -> np.ndarray:
    """Return the controlled-Hadamard matrix."""
    return controlled_matrix(h_matrix())


def swap_matrix() -> np.ndarray:
    """Return the SWAP matrix."""
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    )


def iswap_matrix() -> np.ndarray:
    """Return the iSWAP matrix."""
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
    )


def cp_matrix(lam: float) -> np.ndarray:
    """Return the controlled-phase matrix ``diag(1, 1, 1, e^{i lam})``."""
    return controlled_matrix(phase_matrix(lam))


def crx_matrix(theta: float) -> np.ndarray:
    """Return the controlled-RX matrix."""
    return controlled_matrix(rx_matrix(theta))


def cry_matrix(theta: float) -> np.ndarray:
    """Return the controlled-RY matrix."""
    return controlled_matrix(ry_matrix(theta))


def crz_matrix(theta: float) -> np.ndarray:
    """Return the controlled-RZ matrix."""
    return controlled_matrix(rz_matrix(theta))


def cu3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Return the controlled-``u3`` matrix."""
    return controlled_matrix(u3_matrix(theta, phi, lam))


def rzz_matrix(theta: float) -> np.ndarray:
    """Return the two-qubit ZZ-rotation ``exp(-i theta/2 Z (x) Z)``."""
    e_minus = cmath.exp(-0.5j * theta)
    e_plus = cmath.exp(0.5j * theta)
    return np.diag([e_minus, e_plus, e_plus, e_minus]).astype(complex)


def rxx_matrix(theta: float) -> np.ndarray:
    """Return the two-qubit XX-rotation ``exp(-i theta/2 X (x) X)``."""
    c = math.cos(theta / 2.0)
    s = -1j * math.sin(theta / 2.0)
    mat = np.zeros((4, 4), dtype=complex)
    for i in range(4):
        mat[i, i] = c
        mat[i, 3 - i] = s
    return mat


def ccx_matrix() -> np.ndarray:
    """Return the Toffoli (CCX) matrix in the ``|c1, c2, t>`` basis."""
    return controlled_matrix(cx_matrix())


def cswap_matrix() -> np.ndarray:
    """Return the Fredkin (CSWAP) matrix in the ``|c, t1, t2>`` basis."""
    return controlled_matrix(swap_matrix())


def controlled_matrix(unitary: np.ndarray) -> np.ndarray:
    """Return the controlled version of ``unitary``.

    The control is prepended as the most-significant qubit:
    ``diag(I, unitary)``.
    """
    dim = unitary.shape[0]
    out = np.eye(2 * dim, dtype=complex)
    out[dim:, dim:] = unitary
    return out


# ---------------------------------------------------------------------------
# Matrix predicates and decompositions
# ---------------------------------------------------------------------------

def is_unitary_matrix(matrix: np.ndarray, atol: float = MATRIX_ATOL) -> bool:
    """Return ``True`` if ``matrix`` is square, a power-of-two dim, unitary."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    dim = matrix.shape[0]
    if dim == 0 or dim & (dim - 1):
        return False
    return np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=atol)


def matrices_equal_up_to_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-8
) -> bool:
    """Return ``True`` if ``a == e^{i phi} b`` for some global phase ``phi``."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    # Find the largest entry of b to fix the phase robustly.
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = a[idx] / b[idx]
    if not math.isclose(abs(phase), 1.0, abs_tol=1e-6):
        return False
    return bool(np.allclose(a, phase * b, atol=atol))


def euler_zyz_angles(unitary: np.ndarray) -> Tuple[float, float, float, float]:
    """Decompose a 1-qubit unitary as ``e^{i g} Rz(phi) Ry(theta) Rz(lam)``.

    Returns ``(theta, phi, lam, global_phase)``.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (2, 2):
        raise GateError(f"expected a 2x2 matrix, got shape {unitary.shape}")
    if not is_unitary_matrix(unitary, atol=1e-8):
        raise GateError("matrix is not unitary")
    # Remove the global phase: det(U) = e^{2ig} for U in U(2).
    det = np.linalg.det(unitary)
    global_phase = 0.5 * cmath.phase(det)
    su2 = unitary * cmath.exp(-1j * global_phase)
    # su2 = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #        [sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    theta = 2.0 * math.atan2(abs(su2[1, 0]), abs(su2[0, 0]))
    if abs(su2[0, 0]) > MATRIX_ATOL and abs(su2[1, 0]) > MATRIX_ATOL:
        phi_plus_lam = 2.0 * cmath.phase(su2[1, 1])
        phi_minus_lam = 2.0 * cmath.phase(su2[1, 0])
        phi = 0.5 * (phi_plus_lam + phi_minus_lam)
        lam = 0.5 * (phi_plus_lam - phi_minus_lam)
    elif abs(su2[1, 0]) <= MATRIX_ATOL:
        # Diagonal: only phi + lam matters; put all of it in phi.
        phi = 2.0 * cmath.phase(su2[1, 1])
        lam = 0.0
    else:
        # Anti-diagonal: only phi - lam matters; put all of it in phi.
        phi = 2.0 * cmath.phase(su2[1, 0])
        lam = 0.0
    return theta, phi, lam, global_phase


def u3_angles_from_unitary(unitary: np.ndarray) -> Tuple[float, float, float, float]:
    """Decompose a 1-qubit unitary as ``e^{i g} u3(theta, phi, lam)``.

    Returns ``(theta, phi, lam, global_phase)``.  Because
    ``u3(t, p, l) = e^{i(p+l)/2} Rz(p) Ry(t) Rz(l)``, this is a thin wrapper
    around :func:`euler_zyz_angles` with the phase adjusted.
    """
    theta, phi, lam, zyz_phase = euler_zyz_angles(unitary)
    return theta, phi, lam, zyz_phase - 0.5 * (phi + lam)


# ---------------------------------------------------------------------------
# Operation / Gate classes
# ---------------------------------------------------------------------------

class Operation:
    """Base class for anything that can be applied to circuit bits.

    Parameters
    ----------
    name:
        Canonical lower-case operation name (e.g. ``"cx"``).
    num_qubits:
        Number of qubit operands.
    num_clbits:
        Number of classical-bit operands (only measurement uses this).
    params:
        Real-valued parameters, e.g. rotation angles.
    """

    def __init__(
        self,
        name: str,
        num_qubits: int,
        num_clbits: int = 0,
        params: Sequence[float] = (),
    ) -> None:
        self.name = name
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.params = tuple(float(p) for p in params)

    @property
    def is_gate(self) -> bool:
        """Return ``True`` for unitary operations."""
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return (
            self.name == other.name
            and self.num_qubits == other.num_qubits
            and self.num_clbits == other.num_clbits
            and len(self.params) == len(other.params)
            and all(
                math.isclose(a, b, abs_tol=1e-12)
                for a, b in zip(self.params, other.params)
            )
        )

    def __hash__(self) -> int:
        return hash((self.name, self.num_qubits, self.num_clbits, self.params))

    def __repr__(self) -> str:
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{type(self).__name__}({self.name!r}, params=({args}))"
        return f"{type(self).__name__}({self.name!r})"


class Gate(Operation):
    """A unitary operation with a concrete matrix.

    Standard gates are created through :func:`get_gate` or the
    :class:`~repro.circuits.QuantumCircuit` builder methods; arbitrary
    unitaries through :class:`UnitaryGate`.
    """

    def __init__(
        self,
        name: str,
        num_qubits: int,
        params: Sequence[float] = (),
        matrix_fn: Optional[Callable[..., np.ndarray]] = None,
    ) -> None:
        super().__init__(name, num_qubits, 0, params)
        self._matrix_fn = matrix_fn

    @property
    def is_gate(self) -> bool:
        return True

    @property
    def matrix(self) -> np.ndarray:
        """Return the unitary matrix of this gate."""
        if self._matrix_fn is None:
            raise GateError(f"gate {self.name!r} has no matrix")
        return self._matrix_fn(*self.params)

    def inverse(self) -> "Gate":
        """Return the inverse gate, preserving a standard name if possible."""
        return _invert_gate(self)

    def copy(self) -> "Gate":
        """Return a shallow copy of this gate."""
        return Gate(self.name, self.num_qubits, self.params, self._matrix_fn)


class UnitaryGate(Gate):
    """A gate defined by an explicit unitary matrix.

    Parameters
    ----------
    matrix:
        A ``2^k x 2^k`` unitary matrix.
    label:
        Optional display name; defaults to ``"unitary"``.
    """

    def __init__(self, matrix: np.ndarray, label: str = "unitary") -> None:
        matrix = np.asarray(matrix, dtype=complex)
        if not is_unitary_matrix(matrix, atol=1e-8):
            raise GateError("UnitaryGate requires a unitary matrix")
        num_qubits = int(round(math.log2(matrix.shape[0])))
        super().__init__(label, num_qubits, (), None)
        self._matrix = matrix.copy()

    @property
    def matrix(self) -> np.ndarray:
        return self._matrix.copy()

    def inverse(self) -> "UnitaryGate":
        return UnitaryGate(self._matrix.conj().T, label=f"{self.name}_dg")

    def copy(self) -> "UnitaryGate":
        return UnitaryGate(self._matrix, label=self.name)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, UnitaryGate):
            return self.name == other.name and np.allclose(
                self._matrix, other._matrix, atol=MATRIX_ATOL
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.name, self.num_qubits))


class Measure(Operation):
    """Projective measurement of one qubit into one classical bit."""

    def __init__(self) -> None:
        super().__init__("measure", 1, 1)


class Reset(Operation):
    """Reset a qubit to |0> (measure and conditionally flip)."""

    def __init__(self) -> None:
        super().__init__("reset", 1, 0)


class Barrier(Operation):
    """A no-op fence that blocks transpiler reordering across it."""

    def __init__(self, num_qubits: int) -> None:
        super().__init__("barrier", num_qubits, 0)


# ---------------------------------------------------------------------------
# Standard gate registry
# ---------------------------------------------------------------------------

#: name -> (num_qubits, num_params, matrix function)
_STANDARD: Dict[str, Tuple[int, int, Callable[..., np.ndarray]]] = {
    "id": (1, 0, identity_matrix),
    "x": (1, 0, x_matrix),
    "y": (1, 0, y_matrix),
    "z": (1, 0, z_matrix),
    "h": (1, 0, h_matrix),
    "s": (1, 0, s_matrix),
    "sdg": (1, 0, sdg_matrix),
    "t": (1, 0, t_matrix),
    "tdg": (1, 0, tdg_matrix),
    "sx": (1, 0, sx_matrix),
    "sxdg": (1, 0, sxdg_matrix),
    "rx": (1, 1, rx_matrix),
    "ry": (1, 1, ry_matrix),
    "rz": (1, 1, rz_matrix),
    "p": (1, 1, phase_matrix),
    "u1": (1, 1, phase_matrix),
    "u2": (1, 2, u2_matrix),
    "u3": (1, 3, u3_matrix),
    "cx": (2, 0, cx_matrix),
    "cy": (2, 0, cy_matrix),
    "cz": (2, 0, cz_matrix),
    "ch": (2, 0, ch_matrix),
    "swap": (2, 0, swap_matrix),
    "iswap": (2, 0, iswap_matrix),
    "cp": (2, 1, cp_matrix),
    "crx": (2, 1, crx_matrix),
    "cry": (2, 1, cry_matrix),
    "crz": (2, 1, crz_matrix),
    "cu3": (2, 3, cu3_matrix),
    "rxx": (2, 1, rxx_matrix),
    "rzz": (2, 1, rzz_matrix),
    "ccx": (3, 0, ccx_matrix),
    "cswap": (3, 0, cswap_matrix),
}

#: Gates whose conjugation action maps Paulis to Paulis (up to sign).
CLIFFORD_GATE_NAMES = frozenset(
    {"id", "x", "y", "z", "h", "s", "sdg", "sx", "sxdg", "cx", "cy", "cz", "swap"}
)

#: (name, negate-all-params) pairs for parameterised self-inverse-by-negation
#: gates, plus explicit name swaps for fixed gates.
_INVERSE_NAME = {
    "id": "id",
    "x": "x",
    "y": "y",
    "z": "z",
    "h": "h",
    "s": "sdg",
    "sdg": "s",
    "t": "tdg",
    "tdg": "t",
    "sx": "sxdg",
    "sxdg": "sx",
    "cx": "cx",
    "cy": "cy",
    "cz": "cz",
    "ch": "ch",
    "swap": "swap",
    "ccx": "ccx",
    "cswap": "cswap",
}

_NEGATE_PARAM_GATES = frozenset(
    {"rx", "ry", "rz", "p", "u1", "cp", "crx", "cry", "crz", "rxx", "rzz"}
)


def standard_gate_names() -> Iterable[str]:
    """Return the names of all registered standard gates."""
    return sorted(_STANDARD)


def get_gate(name: str, params: Sequence[float] = ()) -> Gate:
    """Look up a standard gate by ``name`` with the given ``params``.

    Raises
    ------
    GateError
        If the name is unknown or the parameter count is wrong.
    """
    key = name.lower()
    if key not in _STANDARD:
        raise GateError(f"unknown gate {name!r}")
    num_qubits, num_params, matrix_fn = _STANDARD[key]
    if len(params) != num_params:
        raise GateError(
            f"gate {name!r} expects {num_params} parameter(s), got {len(params)}"
        )
    return Gate(key, num_qubits, params, matrix_fn)


def is_clifford_gate(operation: Operation) -> bool:
    """Return ``True`` if ``operation`` is a Clifford-group gate.

    Parameterised rotations are recognised as Clifford only when the angle is
    an exact multiple of ``pi/2`` — the stabilizer simulator rejects anything
    else.
    """
    if operation.name in CLIFFORD_GATE_NAMES:
        return True
    if operation.name in {"rz", "p", "u1"} and operation.params:
        angle = operation.params[0] % (2.0 * math.pi)
        return any(
            math.isclose(angle, k * math.pi / 2.0, abs_tol=1e-12) for k in range(5)
        )
    return False


def _invert_gate(gate: Gate) -> Gate:
    """Return the inverse of a gate, preferring a named standard gate."""
    if gate.name in _INVERSE_NAME:
        return get_gate(_INVERSE_NAME[gate.name], gate.params)
    if gate.name in _NEGATE_PARAM_GATES:
        return get_gate(gate.name, tuple(-p for p in gate.params))
    if gate.name == "u2":
        phi, lam = gate.params
        return get_gate("u3", (-math.pi / 2.0, -lam, -phi))
    if gate.name in {"u3", "cu3"}:
        theta, phi, lam = gate.params
        return get_gate(gate.name, (-theta, -lam, -phi))
    if gate.name == "iswap":
        return UnitaryGate(iswap_matrix().conj().T, label="iswap_dg")
    # Fallback: invert the concrete matrix.
    return UnitaryGate(gate.matrix.conj().T, label=f"{gate.name}_dg")
