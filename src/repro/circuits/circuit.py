"""The :class:`QuantumCircuit` builder.

A circuit owns a flat list of qubits and classical bits (optionally grouped
into named registers) and an ordered list of
:class:`~repro.circuits.instructions.Instruction` objects.  Builder methods
exist for every standard gate, plus ``measure``, ``reset``, ``barrier``,
conditional execution (:meth:`QuantumCircuit.c_if` style via the ``condition``
keyword), composition, inversion and ancilla allocation — everything the
runtime-assertion injector (:mod:`repro.core`) needs.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.gates import (
    Barrier,
    Gate,
    Measure,
    Operation,
    Reset,
    UnitaryGate,
    get_gate,
)
from repro.circuits.instructions import Instruction
from repro.circuits.registers import ClassicalRegister, Clbit, QuantumRegister, Qubit
from repro.exceptions import CircuitError

QubitSpecifier = Union[int, Qubit]
ClbitSpecifier = Union[int, Clbit]


class _TrackedInstructionList(list):
    """An instruction list that invalidates its circuit's fingerprint memo.

    ``QuantumCircuit.data`` is a public list mutated freely across the
    codebase (builder methods, transpiler passes, experiments), so the
    memoised :meth:`QuantumCircuit.fingerprint` can only be safe if every
    list mutation — ``append``, slice assignment, ``pop``, ... — notifies
    the owning circuit.  Reads cost nothing; each mutator clears the memo
    after delegating to :class:`list`.
    """

    def __init__(self, circuit: "QuantumCircuit", iterable=()) -> None:
        super().__init__(iterable)
        self._circuit = circuit

    def _touch(self) -> None:
        circuit = getattr(self, "_circuit", None)
        if circuit is not None:
            circuit._invalidate_fingerprint()

    def append(self, value) -> None:
        super().append(value)
        self._touch()

    def extend(self, iterable) -> None:
        super().extend(iterable)
        self._touch()

    def insert(self, index, value) -> None:
        super().insert(index, value)
        self._touch()

    def remove(self, value) -> None:
        super().remove(value)
        self._touch()

    def pop(self, index=-1):
        value = super().pop(index)
        self._touch()
        return value

    def clear(self) -> None:
        super().clear()
        self._touch()

    def sort(self, **kwargs) -> None:
        super().sort(**kwargs)
        self._touch()

    def reverse(self) -> None:
        super().reverse()
        self._touch()

    def __setitem__(self, index, value) -> None:
        super().__setitem__(index, value)
        self._touch()

    def __delitem__(self, index) -> None:
        super().__delitem__(index)
        self._touch()

    def __iadd__(self, other):
        result = super().__iadd__(other)
        self._touch()
        return result

    def __imul__(self, factor):
        result = super().__imul__(factor)
        self._touch()
        return result


class QuantumCircuit:
    """A mutable quantum circuit.

    Parameters
    ----------
    *regs:
        Any mix of ``int`` (anonymous qubit then clbit counts, in order) and
        :class:`QuantumRegister` / :class:`ClassicalRegister` instances.
    name:
        Optional circuit name used by the drawer and QASM export.

    Examples
    --------
    >>> qc = QuantumCircuit(2, 2)
    >>> qc.h(0)           # doctest: +ELLIPSIS
    <repro.circuits.circuit.QuantumCircuit object at ...>
    >>> _ = qc.cx(0, 1)
    >>> _ = qc.measure([0, 1], [0, 1])
    >>> qc.num_qubits, qc.num_clbits, len(qc)
    (2, 2, 4)
    """

    def __init__(
        self,
        *regs: Union[int, QuantumRegister, ClassicalRegister],
        name: str = "circuit",
    ) -> None:
        self.name = name
        self.qregs: List[QuantumRegister] = []
        self.cregs: List[ClassicalRegister] = []
        self._qubit_index: Dict[Qubit, int] = {}
        self._clbit_index: Dict[Clbit, int] = {}
        self._fingerprint_cache: Optional[str] = None
        #: Bumped by every mutation; fingerprint() only installs its memo
        #: when the generation it hashed is still current, so a mutation
        #: racing an in-flight hash can never pin a stale digest.
        self._fingerprint_generation = 0
        self.data = []
        int_args = [r for r in regs if isinstance(r, int)]
        if len(int_args) > 2:
            raise CircuitError(
                "at most two integer arguments (num_qubits, num_clbits) allowed"
            )
        for reg in regs:
            if isinstance(reg, QuantumRegister):
                self.add_register(reg)
            elif isinstance(reg, ClassicalRegister):
                self.add_register(reg)
            elif isinstance(reg, int):
                pass  # handled below, in order
            else:
                raise CircuitError(f"unexpected circuit argument {reg!r}")
        if int_args:
            if int_args[0] > 0:
                self.add_register(QuantumRegister(int_args[0], name="q"))
            elif int_args[0] < 0:
                raise CircuitError("number of qubits must be non-negative")
        if len(int_args) == 2:
            if int_args[1] > 0:
                self.add_register(ClassicalRegister(int_args[1], name="c"))
            elif int_args[1] < 0:
                raise CircuitError("number of clbits must be non-negative")

    # ------------------------------------------------------------------
    # Instruction storage
    # ------------------------------------------------------------------

    @property
    def data(self) -> List[Instruction]:
        """The ordered instruction list.

        Mutating it (through list methods or by assigning a new list)
        invalidates the memoised :meth:`fingerprint`.  Mutating an
        *existing* :class:`Instruction` or its operation in place bypasses
        that tracking — instructions are treated as immutable everywhere in
        this codebase; replace them instead.
        """
        return self._data

    @data.setter
    def data(self, value: Iterable[Instruction]) -> None:
        self._data = _TrackedInstructionList(self, value)
        self._invalidate_fingerprint()

    def _invalidate_fingerprint(self) -> None:
        """Drop the fingerprint memo and mark the current content stale."""
        self._fingerprint_cache = None
        self._fingerprint_generation += 1

    # ------------------------------------------------------------------
    # Registers and bits
    # ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Return the total number of qubits."""
        return len(self._qubit_index)

    @property
    def num_clbits(self) -> int:
        """Return the total number of classical bits."""
        return len(self._clbit_index)

    @property
    def qubits(self) -> List[Qubit]:
        """Return all qubits in flat index order."""
        return sorted(self._qubit_index, key=self._qubit_index.get)

    @property
    def clbits(self) -> List[Clbit]:
        """Return all classical bits in flat index order."""
        return sorted(self._clbit_index, key=self._clbit_index.get)

    def add_register(
        self, register: Union[QuantumRegister, ClassicalRegister]
    ) -> Union[QuantumRegister, ClassicalRegister]:
        """Append a register, extending the flat bit index space."""
        self._invalidate_fingerprint()  # bit counts participate in the hash
        if isinstance(register, QuantumRegister):
            if any(r.name == register.name for r in self.qregs):
                raise CircuitError(f"duplicate register name {register.name!r}")
            self.qregs.append(register)
            base = len(self._qubit_index)
            for offset, bit in enumerate(register):
                self._qubit_index[bit] = base + offset
        elif isinstance(register, ClassicalRegister):
            if any(r.name == register.name for r in self.cregs):
                raise CircuitError(f"duplicate register name {register.name!r}")
            self.cregs.append(register)
            base = len(self._clbit_index)
            for offset, bit in enumerate(register):
                self._clbit_index[bit] = base + offset
        else:
            raise CircuitError(f"not a register: {register!r}")
        return register

    def add_qubits(self, count: int, name: str = "") -> QuantumRegister:
        """Allocate ``count`` fresh qubits and return their register.

        This is how the assertion injector allocates ancilla qubits without
        disturbing existing bit indices.
        """
        if count < 1:
            raise CircuitError(f"must add at least one qubit, got {count}")
        reg = QuantumRegister(count, name=name) if name else QuantumRegister(count)
        return self.add_register(reg)

    def add_clbits(self, count: int, name: str = "") -> ClassicalRegister:
        """Allocate ``count`` fresh classical bits and return their register."""
        if count < 1:
            raise CircuitError(f"must add at least one clbit, got {count}")
        reg = ClassicalRegister(count, name=name) if name else ClassicalRegister(count)
        return self.add_register(reg)

    def qubit_index(self, qubit: QubitSpecifier) -> int:
        """Resolve a qubit specifier to its flat index."""
        if isinstance(qubit, Qubit):
            try:
                return self._qubit_index[qubit]
            except KeyError:
                raise CircuitError(f"{qubit!r} is not in this circuit") from None
        index = int(qubit)
        if not 0 <= index < self.num_qubits:
            raise CircuitError(
                f"qubit index {index} out of range (circuit has "
                f"{self.num_qubits} qubit(s))"
            )
        return index

    def clbit_index(self, clbit: ClbitSpecifier) -> int:
        """Resolve a classical-bit specifier to its flat index."""
        if isinstance(clbit, Clbit):
            try:
                return self._clbit_index[clbit]
            except KeyError:
                raise CircuitError(f"{clbit!r} is not in this circuit") from None
        index = int(clbit)
        if not 0 <= index < self.num_clbits:
            raise CircuitError(
                f"clbit index {index} out of range (circuit has "
                f"{self.num_clbits} clbit(s))"
            )
        return index

    def _resolve_qubits(
        self, qubits: Union[QubitSpecifier, Sequence[QubitSpecifier]]
    ) -> List[int]:
        if isinstance(qubits, (int, Qubit)):
            return [self.qubit_index(qubits)]
        return [self.qubit_index(q) for q in qubits]

    def _resolve_clbits(
        self, clbits: Union[ClbitSpecifier, Sequence[ClbitSpecifier]]
    ) -> List[int]:
        if isinstance(clbits, (int, Clbit)):
            return [self.clbit_index(clbits)]
        return [self.clbit_index(c) for c in clbits]

    # ------------------------------------------------------------------
    # Generic append
    # ------------------------------------------------------------------

    def append(
        self,
        operation: Operation,
        qubits: Sequence[QubitSpecifier],
        clbits: Sequence[ClbitSpecifier] = (),
        condition: Optional[Tuple[ClbitSpecifier, int]] = None,
    ) -> "QuantumCircuit":
        """Append ``operation`` on the given bits; returns ``self``."""
        q_idx = self._resolve_qubits(list(qubits))
        c_idx = self._resolve_clbits(list(clbits))
        cond = None
        if condition is not None:
            cond = (self.clbit_index(condition[0]), int(condition[1]))
        self.data.append(Instruction(operation, q_idx, c_idx, cond))
        return self

    def _gate(
        self,
        name: str,
        qubits: Sequence[QubitSpecifier],
        params: Sequence[float] = (),
        condition: Optional[Tuple[ClbitSpecifier, int]] = None,
    ) -> "QuantumCircuit":
        return self.append(get_gate(name, params), qubits, (), condition)

    # ------------------------------------------------------------------
    # Standard-gate builder methods
    # ------------------------------------------------------------------

    def i(self, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Apply the identity gate."""
        return self._gate("id", [qubit])

    def x(self, qubit: QubitSpecifier, condition=None) -> "QuantumCircuit":
        """Apply Pauli-X."""
        return self._gate("x", [qubit], condition=condition)

    def y(self, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Apply Pauli-Y."""
        return self._gate("y", [qubit])

    def z(self, qubit: QubitSpecifier, condition=None) -> "QuantumCircuit":
        """Apply Pauli-Z."""
        return self._gate("z", [qubit], condition=condition)

    def h(self, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Apply the Hadamard gate."""
        return self._gate("h", [qubit])

    def s(self, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Apply the S (phase) gate."""
        return self._gate("s", [qubit])

    def sdg(self, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Apply the S-dagger gate."""
        return self._gate("sdg", [qubit])

    def t(self, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Apply the T gate."""
        return self._gate("t", [qubit])

    def tdg(self, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Apply the T-dagger gate."""
        return self._gate("tdg", [qubit])

    def sx(self, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Apply the sqrt(X) gate."""
        return self._gate("sx", [qubit])

    def sxdg(self, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Apply the inverse sqrt(X) gate."""
        return self._gate("sxdg", [qubit])

    def rx(self, theta: float, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Rotate about X by ``theta``."""
        return self._gate("rx", [qubit], (theta,))

    def ry(self, theta: float, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Rotate about Y by ``theta``."""
        return self._gate("ry", [qubit], (theta,))

    def rz(self, theta: float, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Rotate about Z by ``theta``."""
        return self._gate("rz", [qubit], (theta,))

    def p(self, lam: float, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Apply the phase gate ``diag(1, e^{i lam})``."""
        return self._gate("p", [qubit], (lam,))

    def u1(self, lam: float, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Apply ``u1`` (alias of the phase gate)."""
        return self._gate("u1", [qubit], (lam,))

    def u2(self, phi: float, lam: float, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Apply ``u2(phi, lam) = u3(pi/2, phi, lam)``."""
        return self._gate("u2", [qubit], (phi, lam))

    def u3(
        self, theta: float, phi: float, lam: float, qubit: QubitSpecifier
    ) -> "QuantumCircuit":
        """Apply the generic single-qubit gate ``u3``."""
        return self._gate("u3", [qubit], (theta, phi, lam))

    def cx(
        self,
        control: QubitSpecifier,
        target: QubitSpecifier,
        condition=None,
    ) -> "QuantumCircuit":
        """Apply CNOT with the given control and target."""
        return self._gate("cx", [control, target], condition=condition)

    def cy(self, control: QubitSpecifier, target: QubitSpecifier) -> "QuantumCircuit":
        """Apply controlled-Y."""
        return self._gate("cy", [control, target])

    def cz(self, control: QubitSpecifier, target: QubitSpecifier) -> "QuantumCircuit":
        """Apply controlled-Z."""
        return self._gate("cz", [control, target])

    def ch(self, control: QubitSpecifier, target: QubitSpecifier) -> "QuantumCircuit":
        """Apply controlled-Hadamard."""
        return self._gate("ch", [control, target])

    def swap(self, a: QubitSpecifier, b: QubitSpecifier) -> "QuantumCircuit":
        """Swap two qubits."""
        return self._gate("swap", [a, b])

    def iswap(self, a: QubitSpecifier, b: QubitSpecifier) -> "QuantumCircuit":
        """Apply the iSWAP gate."""
        return self._gate("iswap", [a, b])

    def cp(
        self, lam: float, control: QubitSpecifier, target: QubitSpecifier
    ) -> "QuantumCircuit":
        """Apply controlled-phase by ``lam``."""
        return self._gate("cp", [control, target], (lam,))

    def crx(
        self, theta: float, control: QubitSpecifier, target: QubitSpecifier
    ) -> "QuantumCircuit":
        """Apply controlled-RX."""
        return self._gate("crx", [control, target], (theta,))

    def cry(
        self, theta: float, control: QubitSpecifier, target: QubitSpecifier
    ) -> "QuantumCircuit":
        """Apply controlled-RY."""
        return self._gate("cry", [control, target], (theta,))

    def crz(
        self, theta: float, control: QubitSpecifier, target: QubitSpecifier
    ) -> "QuantumCircuit":
        """Apply controlled-RZ."""
        return self._gate("crz", [control, target], (theta,))

    def cu3(
        self,
        theta: float,
        phi: float,
        lam: float,
        control: QubitSpecifier,
        target: QubitSpecifier,
    ) -> "QuantumCircuit":
        """Apply controlled-``u3``."""
        return self._gate("cu3", [control, target], (theta, phi, lam))

    def rxx(self, theta: float, a: QubitSpecifier, b: QubitSpecifier) -> "QuantumCircuit":
        """Apply the XX rotation."""
        return self._gate("rxx", [a, b], (theta,))

    def rzz(self, theta: float, a: QubitSpecifier, b: QubitSpecifier) -> "QuantumCircuit":
        """Apply the ZZ rotation."""
        return self._gate("rzz", [a, b], (theta,))

    def ccx(
        self,
        control1: QubitSpecifier,
        control2: QubitSpecifier,
        target: QubitSpecifier,
    ) -> "QuantumCircuit":
        """Apply the Toffoli gate."""
        return self._gate("ccx", [control1, control2, target])

    def cswap(
        self,
        control: QubitSpecifier,
        a: QubitSpecifier,
        b: QubitSpecifier,
    ) -> "QuantumCircuit":
        """Apply the Fredkin (controlled-SWAP) gate."""
        return self._gate("cswap", [control, a, b])

    def unitary(
        self,
        matrix: np.ndarray,
        qubits: Sequence[QubitSpecifier],
        label: str = "unitary",
    ) -> "QuantumCircuit":
        """Apply an arbitrary unitary matrix to ``qubits``."""
        gate = UnitaryGate(matrix, label=label)
        qubit_list = self._resolve_qubits(list(qubits))
        if gate.num_qubits != len(qubit_list):
            raise CircuitError(
                f"matrix acts on {gate.num_qubits} qubit(s) but "
                f"{len(qubit_list)} were given"
            )
        return self.append(gate, qubit_list)

    # ------------------------------------------------------------------
    # Non-unitary operations
    # ------------------------------------------------------------------

    def measure(
        self,
        qubits: Union[QubitSpecifier, Sequence[QubitSpecifier]],
        clbits: Union[ClbitSpecifier, Sequence[ClbitSpecifier]],
    ) -> "QuantumCircuit":
        """Measure ``qubits`` into ``clbits`` pairwise."""
        q_idx = self._resolve_qubits(qubits)
        c_idx = self._resolve_clbits(clbits)
        if len(q_idx) != len(c_idx):
            raise CircuitError(
                f"measure needs equal qubit/clbit counts, got "
                f"{len(q_idx)} and {len(c_idx)}"
            )
        for q, c in zip(q_idx, c_idx):
            self.append(Measure(), [q], [c])
        return self

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit, allocating a fresh classical register."""
        reg = ClassicalRegister(self.num_qubits, name=f"meas{len(self.cregs)}")
        self.add_register(reg)
        base = self.num_clbits - self.num_qubits
        for q in range(self.num_qubits):
            self.append(Measure(), [q], [base + q])
        return self

    def reset(self, qubit: QubitSpecifier) -> "QuantumCircuit":
        """Reset a qubit to |0>."""
        return self.append(Reset(), [qubit])

    def barrier(self, *qubits: QubitSpecifier) -> "QuantumCircuit":
        """Insert a barrier on the given qubits (all qubits if omitted)."""
        q_idx = (
            self._resolve_qubits(list(qubits))
            if qubits
            else list(range(self.num_qubits))
        )
        if not q_idx:
            raise CircuitError("cannot place a barrier on an empty circuit")
        return self.append(Barrier(len(q_idx)), q_idx)

    # ------------------------------------------------------------------
    # Circuit-level operations
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Return a copy sharing registers but with an independent data list."""
        other = QuantumCircuit(name=name or self.name)
        for reg in self.qregs:
            other.add_register(reg)
        for reg in self.cregs:
            other.add_register(reg)
        other.data = list(self.data)
        return other

    def compose(
        self,
        other: "QuantumCircuit",
        qubits: Optional[Sequence[QubitSpecifier]] = None,
        clbits: Optional[Sequence[ClbitSpecifier]] = None,
    ) -> "QuantumCircuit":
        """Append ``other``'s instructions onto this circuit in place.

        Parameters
        ----------
        other:
            Circuit to append.  Must fit within this circuit's bits.
        qubits / clbits:
            Where ``other``'s bit ``i`` lands in this circuit; defaults to the
            identity mapping.

        Returns
        -------
        QuantumCircuit
            ``self``, for chaining.
        """
        if qubits is None:
            if other.num_qubits > self.num_qubits:
                raise CircuitError(
                    f"cannot compose a {other.num_qubits}-qubit circuit onto "
                    f"a {self.num_qubits}-qubit circuit"
                )
            qubit_map = list(range(other.num_qubits))
        else:
            qubit_map = self._resolve_qubits(list(qubits))
            if len(qubit_map) != other.num_qubits:
                raise CircuitError(
                    f"qubit map has {len(qubit_map)} entries for a "
                    f"{other.num_qubits}-qubit circuit"
                )
        if clbits is None:
            if other.num_clbits > self.num_clbits:
                raise CircuitError(
                    f"cannot compose a circuit with {other.num_clbits} clbits "
                    f"onto one with {self.num_clbits}"
                )
            clbit_map = list(range(other.num_clbits))
        else:
            clbit_map = self._resolve_clbits(list(clbits))
            if len(clbit_map) != other.num_clbits:
                raise CircuitError(
                    f"clbit map has {len(clbit_map)} entries for a circuit "
                    f"with {other.num_clbits} clbits"
                )
        for inst in other.data:
            self.data.append(inst.remap(qubit_map, clbit_map))
        return self

    def inverse(self) -> "QuantumCircuit":
        """Return the inverse circuit (gates reversed and inverted).

        Raises
        ------
        CircuitError
            If the circuit contains non-unitary operations.
        """
        inv = QuantumCircuit(name=f"{self.name}_dg")
        for reg in self.qregs:
            inv.add_register(reg)
        for reg in self.cregs:
            inv.add_register(reg)
        for inst in reversed(self.data):
            op = inst.operation
            if isinstance(op, Barrier):
                inv.data.append(inst)
                continue
            if not isinstance(op, Gate):
                raise CircuitError(
                    f"cannot invert non-unitary operation {op.name!r}"
                )
            inv.data.append(
                Instruction(op.inverse(), inst.qubits, (), inst.condition)
            )
        return inv

    def power(self, exponent: int) -> "QuantumCircuit":
        """Return the circuit repeated ``exponent`` times (inverted if < 0)."""
        if exponent == 0:
            empty = self.copy()
            empty.data = []
            return empty
        base = self if exponent > 0 else self.inverse()
        out = base.copy()
        for _ in range(abs(exponent) - 1):
            out.compose(base if exponent > 0 else base)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.data)

    def count_ops(self) -> Dict[str, int]:
        """Return a histogram of operation names."""
        counts: Dict[str, int] = {}
        for inst in self.data:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def size(self, include_directives: bool = False) -> int:
        """Return the number of operations (barriers excluded by default)."""
        if include_directives:
            return len(self.data)
        return sum(1 for inst in self.data if inst.name != "barrier")

    def depth(self) -> int:
        """Return the circuit depth (longest path through bit time-slots)."""
        level: Dict[Tuple[str, int], int] = {}
        max_depth = 0
        for inst in self.data:
            if inst.name == "barrier":
                bits = [("q", q) for q in inst.qubits]
                sync = max((level.get(b, 0) for b in bits), default=0)
                for b in bits:
                    level[b] = sync
                continue
            bits = [("q", q) for q in inst.qubits]
            bits += [("c", c) for c in inst.clbits]
            if inst.condition is not None:
                bits.append(("c", inst.condition[0]))
            depth_here = max((level.get(b, 0) for b in bits), default=0) + 1
            for b in bits:
                level[b] = depth_here
            max_depth = max(max_depth, depth_here)
        return max_depth

    def num_two_qubit_gates(self) -> int:
        """Return the number of multi-qubit gates (the NISQ cost driver)."""
        return sum(
            1
            for inst in self.data
            if inst.operation.is_gate and inst.operation.num_qubits >= 2
        )

    def fingerprint(self) -> str:
        """Return a canonical content hash of the circuit.

        Two circuits share a fingerprint iff they apply the same operations
        (name, parameters, unitary payload, condition) to the same flat bit
        indices over the same bit counts.  Register names, the circuit name
        and object identity do **not** participate, so a rebuilt sweep
        variant hashes identically to the original.  The runtime layer
        (:mod:`repro.runtime`) keys its transpile cache, distribution cache
        and job batching on this value.

        The digest is memoised: one ``execute()`` call hashes each circuit
        once even though planning, distribution keying and transpile keying
        all consult the fingerprint.  The memo is safe against the mutable
        builder API because every mutation path — instruction-list mutation
        (:class:`_TrackedInstructionList`), ``data`` reassignment, register
        addition — invalidates it and bumps a generation counter that
        in-flight hashes check before installing their memo (a mutation
        racing a pool worker's hash can corrupt at most that one in-flight
        lookup, exactly the pre-memo behaviour — never the memo).  A stale
        hash would silently poison the runtime caches, so in-place mutation
        of an existing :class:`Instruction` (unsupported everywhere in this
        codebase) is the one path deliberately left uncovered.
        """
        memo = self._fingerprint_cache
        if memo is not None:
            return memo
        generation = self._fingerprint_generation
        hasher = hashlib.sha256()
        hasher.update(f"v1|{self.num_qubits}|{self.num_clbits}".encode())
        for inst in self.data:
            op = inst.operation
            params = ",".join(repr(float(p)) for p in op.params)
            hasher.update(
                f"|{op.name}/{op.num_qubits}({params})"
                f"q{inst.qubits}c{inst.clbits}?{inst.condition}".encode()
            )
            matrix = getattr(op, "_matrix", None)
            if matrix is not None:
                hasher.update(np.ascontiguousarray(matrix, dtype=complex).tobytes())
        digest = hasher.hexdigest()
        if self._fingerprint_generation == generation:
            self._fingerprint_cache = digest
        return digest

    def has_measurements(self) -> bool:
        """Return ``True`` if the circuit contains any measurement."""
        return any(inst.name == "measure" for inst in self.data)

    def measured_clbits(self) -> List[int]:
        """Return the sorted classical-bit indices written by measurements."""
        return sorted({inst.clbits[0] for inst in self.data if inst.name == "measure"})

    def clbit_label(self, index: int) -> str:
        """Return a ``reg[i]`` display label for a flat clbit index."""
        base = 0
        for reg in self.cregs:
            if index < base + reg.size:
                return f"{reg.name}[{index - base}]"
            base += reg.size
        return f"c[{index}]"

    def qubit_label(self, index: int) -> str:
        """Return a ``reg[i]`` display label for a flat qubit index."""
        base = 0
        for reg in self.qregs:
            if index < base + reg.size:
                return f"{reg.name}[{index - base}]"
            base += reg.size
        return f"q[{index}]"

    def __repr__(self) -> str:
        return (
            f"<QuantumCircuit {self.name!r}: {self.num_qubits} qubits, "
            f"{self.num_clbits} clbits, {len(self.data)} ops>"
        )

    def draw(self) -> str:
        """Return an ASCII drawing of the circuit."""
        from repro.circuits.visualization import draw_circuit

        return draw_circuit(self)
