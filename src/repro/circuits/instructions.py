"""Circuit instructions: an operation bound to concrete bit indices.

An :class:`Instruction` is the unit stored in a
:class:`~repro.circuits.QuantumCircuit`'s data list.  Bits are referenced by
flat integer index into the circuit's qubit/clbit space, which keeps the
simulators and transpiler simple; registers only matter at construction and
printing time.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.circuits.gates import Operation
from repro.exceptions import CircuitError


class Instruction:
    """An operation applied to specific qubits/clbits.

    Parameters
    ----------
    operation:
        The :class:`~repro.circuits.gates.Operation` to apply.
    qubits:
        Flat qubit indices the operation acts on, in operand order.
    clbits:
        Flat classical-bit indices (measurements only).
    condition:
        Optional ``(clbit_index, value)`` pair: the operation executes only
        when the given classical bit currently holds ``value`` (0 or 1).
    """

    __slots__ = ("operation", "qubits", "clbits", "condition")

    def __init__(
        self,
        operation: Operation,
        qubits: Sequence[int],
        clbits: Sequence[int] = (),
        condition: Optional[Tuple[int, int]] = None,
    ) -> None:
        qubits = tuple(int(q) for q in qubits)
        clbits = tuple(int(c) for c in clbits)
        if len(qubits) != operation.num_qubits:
            raise CircuitError(
                f"operation {operation.name!r} expects {operation.num_qubits} "
                f"qubit(s), got {len(qubits)}"
            )
        if len(clbits) != operation.num_clbits:
            raise CircuitError(
                f"operation {operation.name!r} expects {operation.num_clbits} "
                f"clbit(s), got {len(clbits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise CircuitError(
                f"duplicate qubit operands {qubits} for {operation.name!r}"
            )
        if condition is not None:
            clbit, value = condition
            if value not in (0, 1):
                raise CircuitError(f"condition value must be 0 or 1, got {value}")
            condition = (int(clbit), int(value))
        self.operation = operation
        self.qubits = qubits
        self.clbits = clbits
        self.condition = condition

    @property
    def name(self) -> str:
        """Return the operation name."""
        return self.operation.name

    def remap(
        self,
        qubit_map: Sequence[int],
        clbit_map: Sequence[int],
    ) -> "Instruction":
        """Return a copy with bit indices translated through the given maps.

        ``qubit_map[i]`` is the new index of old qubit ``i`` (same for
        clbits).  Used by :meth:`QuantumCircuit.compose` and the transpiler's
        layout pass.
        """
        new_qubits = tuple(qubit_map[q] for q in self.qubits)
        new_clbits = tuple(clbit_map[c] for c in self.clbits)
        new_condition = None
        if self.condition is not None:
            new_condition = (clbit_map[self.condition[0]], self.condition[1])
        return Instruction(self.operation, new_qubits, new_clbits, new_condition)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.operation == other.operation
            and self.qubits == other.qubits
            and self.clbits == other.clbits
            and self.condition == other.condition
        )

    def __hash__(self) -> int:
        return hash((self.operation, self.qubits, self.clbits, self.condition))

    def __repr__(self) -> str:
        parts = [f"{self.operation.name}", f"qubits={list(self.qubits)}"]
        if self.clbits:
            parts.append(f"clbits={list(self.clbits)}")
        if self.condition is not None:
            parts.append(f"if c[{self.condition[0]}]=={self.condition[1]}")
        return f"Instruction({', '.join(parts)})"
