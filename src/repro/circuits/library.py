"""Standard circuit library.

These are the workloads used throughout the examples, tests and benchmarks:
Bell/GHZ/W state preparation (the entanglement-assertion targets), uniform
superposition layers (the superposition-assertion target), quantum
teleportation, the QFT, Grover search, Deutsch-Jozsa and iterative phase
estimation.  They correspond to the program patterns identified by
Huang & Martonosi (ISCA'19) as the places quantum programs need assertions,
which is the motivation the paper builds on.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

from repro.circuits.circuit import ClassicalRegister, QuantumCircuit
from repro.exceptions import CircuitError


def bell_pair(kind: str = "phi+") -> QuantumCircuit:
    """Return a 2-qubit circuit preparing one of the four Bell states.

    Parameters
    ----------
    kind:
        One of ``"phi+"`` (|00>+|11>), ``"phi-"`` (|00>-|11>),
        ``"psi+"`` (|01>+|10>) or ``"psi-"`` (|01>-|10>).
    """
    qc = QuantumCircuit(2, name=f"bell_{kind}")
    kind = kind.lower()
    if kind not in {"phi+", "phi-", "psi+", "psi-"}:
        raise CircuitError(f"unknown Bell state {kind!r}")
    qc.h(0)
    qc.cx(0, 1)
    if kind in {"phi-", "psi-"}:
        qc.z(0)
    if kind in {"psi+", "psi-"}:
        qc.x(1)
    return qc


def ghz_state(num_qubits: int) -> QuantumCircuit:
    """Return a circuit preparing the ``num_qubits``-qubit GHZ state."""
    if num_qubits < 2:
        raise CircuitError("a GHZ state needs at least 2 qubits")
    qc = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    return qc


def w_state(num_qubits: int) -> QuantumCircuit:
    """Return a circuit preparing the ``num_qubits``-qubit W state.

    Uses the standard cascade of controlled rotations:
    ``|W_n> = (|10...0> + |010...0> + ... + |0...01>)/sqrt(n)``.
    """
    if num_qubits < 2:
        raise CircuitError("a W state needs at least 2 qubits")
    qc = QuantumCircuit(num_qubits, name=f"w_{num_qubits}")
    # Start with |10...0> and distribute the excitation.
    qc.x(0)
    for k in range(num_qubits - 1):
        remaining = num_qubits - k
        theta = 2.0 * math.acos(math.sqrt(1.0 / remaining))
        qc.cry(theta, k, k + 1)
        qc.cx(k + 1, k)
    return qc


def uniform_superposition(num_qubits: int) -> QuantumCircuit:
    """Return a circuit applying H to every qubit (|+>^n preparation)."""
    if num_qubits < 1:
        raise CircuitError("need at least one qubit")
    qc = QuantumCircuit(num_qubits, name=f"uniform_{num_qubits}")
    for q in range(num_qubits):
        qc.h(q)
    return qc


def qft(num_qubits: int, do_swaps: bool = True) -> QuantumCircuit:
    """Return the quantum Fourier transform on ``num_qubits`` qubits."""
    if num_qubits < 1:
        raise CircuitError("need at least one qubit")
    qc = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        qc.h(target)
        for offset, control in enumerate(range(target + 1, num_qubits), start=2):
            qc.cp(2.0 * math.pi / (2 ** offset), control, target)
    if do_swaps:
        for q in range(num_qubits // 2):
            qc.swap(q, num_qubits - 1 - q)
    return qc


def inverse_qft(num_qubits: int, do_swaps: bool = True) -> QuantumCircuit:
    """Return the inverse quantum Fourier transform."""
    circuit = qft(num_qubits, do_swaps=do_swaps).inverse()
    circuit.name = f"iqft_{num_qubits}"
    return circuit


def teleportation(
    state_prep: Optional[QuantumCircuit] = None,
) -> QuantumCircuit:
    """Return the 3-qubit quantum-teleportation circuit.

    Qubit 0 carries the state to teleport (prepared by ``state_prep`` when
    given), qubits 1-2 hold the Bell pair, and qubit 2 receives the state.
    Classical bits 0-1 carry Alice's measurement outcomes; the corrections on
    Bob's qubit are classically conditioned, which exercises the simulator's
    conditional-gate path.  The two outcome bits live in separate 1-bit
    classical registers (flat clbit indices 0 and 1 either way) so the
    conditions survive OpenQASM 2.0 export, whose ``if`` compares whole
    registers.
    """
    qc = QuantumCircuit(3, ClassicalRegister(1, name="m0"),
                        ClassicalRegister(1, name="m1"), name="teleport")
    if state_prep is not None:
        if state_prep.num_qubits != 1:
            raise CircuitError("state_prep must be a 1-qubit circuit")
        qc.compose(state_prep, qubits=[0])
    # Bell pair between qubits 1 (Alice) and 2 (Bob).
    qc.h(1)
    qc.cx(1, 2)
    qc.barrier()
    # Alice's Bell measurement.
    qc.cx(0, 1)
    qc.h(0)
    qc.measure([0, 1], [0, 1])
    # Bob's classically controlled corrections.
    qc.x(2, condition=(1, 1))
    qc.z(2, condition=(0, 1))
    return qc


def grover(
    num_qubits: int,
    marked: Sequence[int],
    iterations: Optional[int] = None,
) -> QuantumCircuit:
    """Return a Grover-search circuit marking the given basis states.

    Parameters
    ----------
    num_qubits:
        Size of the search register.
    marked:
        Basis-state indices (0 .. 2^n - 1) the phase oracle flips.
    iterations:
        Number of Grover iterations; defaults to the optimal
        ``round(pi/4 sqrt(N/M))``.
    """
    if num_qubits < 2:
        raise CircuitError("Grover search needs at least 2 qubits")
    dim = 2 ** num_qubits
    marked = sorted(set(int(m) for m in marked))
    if not marked:
        raise CircuitError("at least one marked state is required")
    if marked[0] < 0 or marked[-1] >= dim:
        raise CircuitError(f"marked states must lie in [0, {dim})")
    if iterations is None:
        # floor (not round) of pi/4 sqrt(N/M): overshooting rotates past the
        # marked subspace and *reduces* the success probability.
        iterations = max(1, math.floor(math.pi / 4.0 * math.sqrt(dim / len(marked))))
    qc = QuantumCircuit(num_qubits, name=f"grover_{num_qubits}")
    for q in range(num_qubits):
        qc.h(q)
    for _ in range(iterations):
        for state in marked:
            _apply_phase_flip(qc, num_qubits, state)
        _apply_diffusion(qc, num_qubits)
    return qc


def _apply_phase_flip(qc: QuantumCircuit, num_qubits: int, state: int) -> None:
    """Flip the phase of one computational-basis state.

    X-conjugates a multi-controlled Z so the flip lands on ``|state>``.
    Qubit 0 is the most-significant bit of ``state`` (library convention).
    """
    zero_positions = [
        q for q in range(num_qubits) if not (state >> (num_qubits - 1 - q)) & 1
    ]
    for q in zero_positions:
        qc.x(q)
    _apply_mcz(qc, list(range(num_qubits)))
    for q in zero_positions:
        qc.x(q)


def _apply_diffusion(qc: QuantumCircuit, num_qubits: int) -> None:
    """Apply the Grover diffusion (inversion about the mean) operator."""
    for q in range(num_qubits):
        qc.h(q)
        qc.x(q)
    _apply_mcz(qc, list(range(num_qubits)))
    for q in range(num_qubits):
        qc.x(q)
        qc.h(q)


def _apply_mcz(qc: QuantumCircuit, qubits: Sequence[int]) -> None:
    """Apply a multi-controlled Z on ``qubits`` (last qubit is the target)."""
    if len(qubits) == 1:
        qc.z(qubits[0])
    elif len(qubits) == 2:
        qc.cz(qubits[0], qubits[1])
    elif len(qubits) == 3:
        qc.h(qubits[2])
        qc.ccx(qubits[0], qubits[1], qubits[2])
        qc.h(qubits[2])
    else:
        # Recursive construction with one borrowed work qubit would need an
        # ancilla; for the sizes used in benchmarks (<= 4 controls) use the
        # phase-decomposition into controlled-phase gates.
        _apply_mcp(qc, math.pi, list(qubits))


def _apply_mcp(qc: QuantumCircuit, lam: float, qubits: Sequence[int]) -> None:
    """Apply a multi-controlled phase gate via the standard recursion."""
    if len(qubits) == 1:
        qc.p(lam, qubits[0])
        return
    if len(qubits) == 2:
        qc.cp(lam, qubits[0], qubits[1])
        return
    head, rest = qubits[0], list(qubits[1:])
    _apply_mcp(qc, lam / 2.0, rest)
    qc.cx(head, rest[0])
    _apply_mcp(qc, -lam / 2.0, rest)
    qc.cx(head, rest[0])
    _apply_mcp(qc, lam / 2.0, [head] + rest[1:])


def deutsch_jozsa(num_qubits: int, oracle_kind: str = "balanced") -> QuantumCircuit:
    """Return a Deutsch-Jozsa circuit on ``num_qubits`` input qubits.

    Parameters
    ----------
    num_qubits:
        Input-register size; the circuit allocates one extra output qubit.
    oracle_kind:
        ``"constant0"``, ``"constant1"`` or ``"balanced"`` (parity oracle).
    """
    if num_qubits < 1:
        raise CircuitError("need at least one input qubit")
    total = num_qubits + 1
    qc = QuantumCircuit(total, name=f"dj_{num_qubits}_{oracle_kind}")
    qc.x(num_qubits)
    for q in range(total):
        qc.h(q)
    if oracle_kind == "constant1":
        qc.x(num_qubits)
    elif oracle_kind == "balanced":
        for q in range(num_qubits):
            qc.cx(q, num_qubits)
    elif oracle_kind != "constant0":
        raise CircuitError(f"unknown oracle kind {oracle_kind!r}")
    for q in range(num_qubits):
        qc.h(q)
    return qc


def phase_estimation(
    phase: float,
    num_counting_qubits: int,
) -> QuantumCircuit:
    """Return a phase-estimation circuit for ``U = p(2*pi*phase)``.

    The eigenstate |1> is prepared on the last qubit; counting qubits come
    first.  Measuring the counting register (after the inverse QFT this
    circuit ends with) yields ``round(phase * 2^m)`` with high probability.
    """
    if num_counting_qubits < 1:
        raise CircuitError("need at least one counting qubit")
    total = num_counting_qubits + 1
    qc = QuantumCircuit(total, name=f"qpe_{num_counting_qubits}")
    target = num_counting_qubits
    qc.x(target)
    for q in range(num_counting_qubits):
        qc.h(q)
    for q in range(num_counting_qubits):
        repetitions = 2 ** (num_counting_qubits - 1 - q)
        qc.cp(2.0 * math.pi * phase * repetitions, q, target)
    iqft = inverse_qft(num_counting_qubits)
    qc.compose(iqft, qubits=list(range(num_counting_qubits)))
    return qc


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: Optional[int] = None,
    clifford_only: bool = False,
) -> QuantumCircuit:
    """Return a pseudo-random circuit (used by property tests/benches).

    Parameters
    ----------
    num_qubits:
        Width of the circuit.
    depth:
        Number of layers; each layer applies one random gate per qubit pair.
    seed:
        RNG seed for reproducibility.
    clifford_only:
        Restrict to Clifford gates so the stabilizer engine can run it.
    """
    import random as _random

    if num_qubits < 1:
        raise CircuitError("need at least one qubit")
    rng = _random.Random(seed)
    one_qubit = (
        ["h", "s", "sdg", "x", "y", "z"]
        if clifford_only
        else ["h", "s", "t", "x", "y", "z", "rx", "ry", "rz"]
    )
    qc = QuantumCircuit(num_qubits, name="random")
    for _ in range(depth):
        qubits = list(range(num_qubits))
        rng.shuffle(qubits)
        idx = 0
        while idx < num_qubits:
            if num_qubits - idx >= 2 and rng.random() < 0.4:
                control, target = qubits[idx], qubits[idx + 1]
                qc.cx(control, target)
                idx += 2
            else:
                name = rng.choice(one_qubit)
                qubit = qubits[idx]
                if name in {"rx", "ry", "rz"}:
                    getattr(qc, name)(rng.uniform(0, 2.0 * math.pi), qubit)
                else:
                    getattr(qc, name)(qubit)
                idx += 1
    return qc
