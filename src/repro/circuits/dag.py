"""Directed-acyclic-graph view of a circuit.

The transpiler's optimisation passes (1-qubit chain merging, CX cancellation)
operate on this DAG, where nodes are instructions and edges follow data
dependencies along each quantum/classical wire.  Built on :mod:`networkx`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instructions import Instruction
from repro.exceptions import CircuitError


class DAGNode:
    """A DAG node wrapping one instruction.

    Attributes
    ----------
    node_id:
        Stable integer id, unique within the DAG.
    instruction:
        The wrapped :class:`Instruction`.
    """

    __slots__ = ("node_id", "instruction")

    def __init__(self, node_id: int, instruction: Instruction) -> None:
        self.node_id = node_id
        self.instruction = instruction

    def __repr__(self) -> str:
        return f"DAGNode({self.node_id}, {self.instruction!r})"


class CircuitDAG:
    """Dependency DAG of a :class:`QuantumCircuit`.

    Edges are labelled with the wire (``("q", index)`` or ``("c", index)``)
    that creates the dependency.  Conditioned instructions depend on the
    conditioning classical bit's last writer.
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.num_qubits = circuit.num_qubits
        self.num_clbits = circuit.num_clbits
        self.name = circuit.name
        self._graph = nx.DiGraph()
        self._next_id = 0
        last_on_wire: Dict[Tuple[str, int], int] = {}
        for inst in circuit.data:
            node = self._add_node(inst)
            for wire in _wires(inst):
                if wire in last_on_wire:
                    self._graph.add_edge(last_on_wire[wire], node.node_id, wire=wire)
                last_on_wire[wire] = node.node_id

    def _add_node(self, instruction: Instruction) -> DAGNode:
        node = DAGNode(self._next_id, instruction)
        self._graph.add_node(node.node_id, node=node)
        self._next_id += 1
        return node

    # ------------------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        """Return the underlying networkx graph (read-only use expected)."""
        return self._graph

    def node(self, node_id: int) -> DAGNode:
        """Return the node with the given id."""
        try:
            return self._graph.nodes[node_id]["node"]
        except KeyError:
            raise CircuitError(f"no DAG node with id {node_id}") from None

    def topological_nodes(self) -> Iterator[DAGNode]:
        """Yield nodes in a deterministic topological order."""
        for node_id in nx.lexicographical_topological_sort(self._graph):
            yield self.node(node_id)

    def successors_on_wire(
        self, node_id: int, wire: Tuple[str, int]
    ) -> Optional[DAGNode]:
        """Return the next node on ``wire`` after ``node_id``, if any."""
        for _, succ, data in self._graph.out_edges(node_id, data=True):
            if data.get("wire") == wire:
                return self.node(succ)
        return None

    def predecessors_on_wire(
        self, node_id: int, wire: Tuple[str, int]
    ) -> Optional[DAGNode]:
        """Return the previous node on ``wire`` before ``node_id``, if any."""
        for pred, _, data in self._graph.in_edges(node_id, data=True):
            if data.get("wire") == wire:
                return self.node(pred)
        return None

    def remove_node(self, node_id: int) -> None:
        """Remove a node, reconnecting its wire-neighbours."""
        node = self.node(node_id)
        for wire in _wires(node.instruction):
            pred = self.predecessors_on_wire(node_id, wire)
            succ = self.successors_on_wire(node_id, wire)
            if pred is not None and succ is not None:
                self._graph.add_edge(pred.node_id, succ.node_id, wire=wire)
        self._graph.remove_node(node_id)

    def replace_node(self, node_id: int, instructions: List[Instruction]) -> None:
        """Replace one node by a chain of instructions on the same wires."""
        node = self.node(node_id)
        wires = _wires(node.instruction)
        preds = {w: self.predecessors_on_wire(node_id, w) for w in wires}
        succs = {w: self.successors_on_wire(node_id, w) for w in wires}
        self._graph.remove_node(node_id)
        last_on_wire: Dict[Tuple[str, int], int] = {
            w: p.node_id for w, p in preds.items() if p is not None
        }
        for inst in instructions:
            new_node = self._add_node(inst)
            for wire in _wires(inst):
                if wire in last_on_wire:
                    self._graph.add_edge(
                        last_on_wire[wire], new_node.node_id, wire=wire
                    )
                last_on_wire[wire] = new_node.node_id
        for wire, succ in succs.items():
            if succ is not None and wire in last_on_wire:
                self._graph.add_edge(last_on_wire[wire], succ.node_id, wire=wire)

    def to_circuit(self, template: QuantumCircuit) -> QuantumCircuit:
        """Rebuild a circuit, copying registers from ``template``."""
        out = template.copy()
        out.data = [node.instruction for node in self.topological_nodes()]
        return out

    def count_ops(self) -> Dict[str, int]:
        """Return a histogram of operation names."""
        counts: Dict[str, int] = {}
        for node in self.topological_nodes():
            name = node.instruction.name
            counts[name] = counts.get(name, 0) + 1
        return counts

    def __len__(self) -> int:
        return self._graph.number_of_nodes()


def _wires(instruction: Instruction) -> List[Tuple[str, int]]:
    """Return the wires an instruction touches (condition bit included)."""
    wires: List[Tuple[str, int]] = [("q", q) for q in instruction.qubits]
    wires += [("c", c) for c in instruction.clbits]
    if instruction.condition is not None:
        wire = ("c", instruction.condition[0])
        if wire not in wires:
            wires.append(wire)
    return wires
