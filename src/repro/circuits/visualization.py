"""Text (ASCII) circuit drawer.

Produces a compact, column-per-layer rendering.  Used by the examples and
docs; has no effect on simulation.  Example output for a Bell pair with an
entanglement assertion::

    q[0]: -[H]--o--------o-------
                |        |
    q[1]: -----(+)--o----|-------
                    |    |
    anc0: ---------(+)--(+)--[M]-
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instructions import Instruction


def _gate_symbol(inst: Instruction) -> str:
    """Return the box label for a 1-qubit gate."""
    name = inst.name
    if name == "measure":
        return "[M]"
    if name == "reset":
        return "[R]"
    if inst.operation.params:
        short = ",".join(f"{p:.2f}".rstrip("0").rstrip(".") for p in inst.operation.params)
        return f"[{name.upper()}({short})]"
    return f"[{name.upper()}]"


def draw_circuit(circuit: QuantumCircuit) -> str:
    """Return an ASCII drawing of ``circuit``.

    Each instruction occupies one column; qubit wires are drawn with ``-``,
    vertical connectors with ``|``.  Controls render as ``o``, CNOT targets
    as ``(+)``, measurements as ``[M]`` with the clbit label appended.
    """
    num_qubits = circuit.num_qubits
    if num_qubits == 0:
        return "(empty circuit)"
    labels = [circuit.qubit_label(q) + ": " for q in range(num_qubits)]
    label_width = max(len(label) for label in labels)
    rows: List[List[str]] = [[] for _ in range(num_qubits)]
    # connector rows live between qubit rows; connector i sits below qubit i.
    connectors: List[List[str]] = [[] for _ in range(max(0, num_qubits - 1))]

    for inst in circuit.data:
        column: Dict[int, str] = {}
        name = inst.name
        if name == "barrier":
            for q in inst.qubits:
                column[q] = "::"
        elif name in {"cx", "cy", "cz", "ch", "ccx", "cp", "crx", "cry", "crz", "cu3"}:
            *controls, target = inst.qubits
            for c in controls:
                column[c] = "o"
            if name in {"cz", "cp"}:
                column[target] = "o" if name == "cz" else "[P]"
            else:
                base = name[-1] if name != "ccx" else "x"
                column[target] = "(+)" if base == "x" else f"[{base.upper()}]"
        elif name in {"swap", "cswap"}:
            qubits = list(inst.qubits)
            if name == "cswap":
                column[qubits[0]] = "o"
                qubits = qubits[1:]
            for q in qubits:
                column[q] = "x"
        elif inst.operation.num_qubits == 1:
            symbol = _gate_symbol(inst)
            if name == "measure":
                symbol = f"[M->{circuit.clbit_label(inst.clbits[0])}]"
            column[inst.qubits[0]] = symbol
        else:
            # Generic multi-qubit box.
            for i, q in enumerate(inst.qubits):
                column[q] = f"[{inst.name}:{i}]"
        if inst.condition is not None:
            target = inst.qubits[-1]
            column[target] = (
                column.get(target, "?")
                + f"?{circuit.clbit_label(inst.condition[0])}={inst.condition[1]}"
            )
        width = max(len(s) for s in column.values())
        touched = sorted(column)
        span = range(touched[0], touched[-1]) if len(touched) > 1 else range(0)
        for q in range(num_qubits):
            cell = column.get(q, "")
            rows[q].append("-" + cell.center(width, "-") + "-")
        for i in range(num_qubits - 1):
            if i in span:
                connectors[i].append(" " + "|".center(width) + " ")
            else:
                connectors[i].append(" " * (width + 2))

    lines: List[str] = []
    for q in range(num_qubits):
        lines.append(labels[q].rjust(label_width) + "".join(rows[q]))
        if q < num_qubits - 1:
            connector = " " * label_width + "".join(connectors[q])
            if connector.strip():
                lines.append(connector)
    return "\n".join(lines)
