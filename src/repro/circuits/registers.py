"""Quantum and classical registers.

Registers are named, ordered collections of bits.  A
:class:`~repro.circuits.QuantumCircuit` owns a flat list of qubits/clbits;
registers provide readable grouping on top of that flat index space, which the
assertion injector uses to keep ancilla bits clearly separated from program
bits (e.g. register names like ``assert_ent_0``).
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Union

from repro.exceptions import RegisterError

_register_counter = itertools.count()


class Bit:
    """A single bit belonging to a register.

    Parameters
    ----------
    register:
        The owning register.
    index:
        Position of this bit inside the register.
    """

    __slots__ = ("register", "index")

    def __init__(self, register: "Register", index: int) -> None:
        self.register = register
        self.index = index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bit):
            return NotImplemented
        return self.register is other.register and self.index == other.index

    def __hash__(self) -> int:
        return hash((id(self.register), self.index))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.register.name}[{self.index}])"


class Qubit(Bit):
    """A quantum bit inside a :class:`QuantumRegister`."""


class Clbit(Bit):
    """A classical bit inside a :class:`ClassicalRegister`."""


class Register:
    """Base class for bit registers.

    Parameters
    ----------
    size:
        Number of bits.
    name:
        Optional name; a unique one is generated when omitted.
    """

    bit_type = Bit
    prefix = "reg"

    def __init__(self, size: int, name: str = "") -> None:
        if size < 1:
            raise RegisterError(f"register size must be >= 1, got {size}")
        if name and not name.replace("_", "").isalnum():
            raise RegisterError(f"invalid register name {name!r}")
        self.size = int(size)
        self.name = name or f"{self.prefix}{next(_register_counter)}"
        self._bits: List[Bit] = [self.bit_type(self, i) for i in range(self.size)]

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, key: Union[int, slice]) -> Union[Bit, List[Bit]]:
        if isinstance(key, slice):
            return list(self._bits[key])
        if not -self.size <= key < self.size:
            raise RegisterError(
                f"bit index {key} out of range for register "
                f"{self.name!r} of size {self.size}"
            )
        return self._bits[key]

    def __iter__(self) -> Iterator[Bit]:
        return iter(self._bits)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.size}, {self.name!r})"


class QuantumRegister(Register):
    """A register of qubits."""

    bit_type = Qubit
    prefix = "q"


class ClassicalRegister(Register):
    """A register of classical bits."""

    bit_type = Clbit
    prefix = "c"
