"""Quantum-circuit intermediate representation.

This package provides the circuit substrate on which the runtime-assertion
library (:mod:`repro.core`) is built: gate definitions with exact unitary
matrices, quantum/classical registers, a :class:`~repro.circuits.QuantumCircuit`
builder, a standard algorithm library, OpenQASM 2.0 import/export, a text
drawer and a DAG view used by the transpiler.
"""

from repro.circuits.gates import (
    Barrier,
    Gate,
    Measure,
    Operation,
    Reset,
    UnitaryGate,
    controlled_matrix,
    euler_zyz_angles,
    get_gate,
    is_clifford_gate,
    is_unitary_matrix,
    standard_gate_names,
    u3_angles_from_unitary,
)
from repro.circuits.registers import Bit, Clbit, ClassicalRegister, QuantumRegister, Qubit
from repro.circuits.instructions import Instruction
from repro.circuits.circuit import QuantumCircuit
from repro.circuits import library

__all__ = [
    "Barrier",
    "Bit",
    "ClassicalRegister",
    "Clbit",
    "Gate",
    "Instruction",
    "Measure",
    "Operation",
    "QuantumCircuit",
    "QuantumRegister",
    "Qubit",
    "Reset",
    "UnitaryGate",
    "controlled_matrix",
    "euler_zyz_angles",
    "get_gate",
    "is_clifford_gate",
    "is_unitary_matrix",
    "library",
    "standard_gate_names",
    "u3_angles_from_unitary",
]
