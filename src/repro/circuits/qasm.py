"""OpenQASM 2.0 export and import.

The exporter emits the standard ``qelib1.inc`` gate names; the importer
accepts the subset of OpenQASM 2.0 this library emits (registers, standard
gates with constant-expression parameters, ``measure``, ``reset``,
``barrier`` and single-bit ``if`` conditions), which is enough for
round-tripping every circuit the library builds.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import UnitaryGate
from repro.circuits.registers import ClassicalRegister, QuantumRegister
from repro.exceptions import QasmError

#: Gates that can be emitted verbatim with qelib1 names.
_QASM_GATES = {
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
    "rx", "ry", "rz", "u1", "u2", "u3", "p",
    "cx", "cy", "cz", "ch", "swap", "cp", "crx", "cry", "crz", "cu3",
    "rxx", "rzz", "ccx", "cswap",
}

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize ``circuit`` to OpenQASM 2.0 text.

    Raises
    ------
    QasmError
        If the circuit contains a :class:`UnitaryGate` or another operation
        with no qelib1 representation.
    """
    lines: List[str] = [_HEADER.rstrip("\n")]
    qreg_of: Dict[int, Tuple[str, int]] = {}
    creg_of: Dict[int, Tuple[str, int]] = {}
    base = 0
    for reg in circuit.qregs:
        lines.append(f"qreg {reg.name}[{reg.size}];")
        for i in range(reg.size):
            qreg_of[base + i] = (reg.name, i)
        base += reg.size
    base = 0
    for reg in circuit.cregs:
        lines.append(f"creg {reg.name}[{reg.size}];")
        for i in range(reg.size):
            creg_of[base + i] = (reg.name, i)
        base += reg.size

    def qbit(index: int) -> str:
        name, offset = qreg_of[index]
        return f"{name}[{offset}]"

    def cbit(index: int) -> str:
        name, offset = creg_of[index]
        return f"{name}[{offset}]"

    for inst in circuit.data:
        name = inst.name
        if name == "measure":
            stmt = f"measure {qbit(inst.qubits[0])} -> {cbit(inst.clbits[0])};"
        elif name == "reset":
            stmt = f"reset {qbit(inst.qubits[0])};"
        elif name == "barrier":
            operands = ", ".join(qbit(q) for q in inst.qubits)
            stmt = f"barrier {operands};"
        elif isinstance(inst.operation, UnitaryGate):
            raise QasmError(
                f"cannot export arbitrary unitary {inst.operation.name!r} to "
                "OpenQASM 2.0; decompose it first"
            )
        elif name in _QASM_GATES:
            params = ""
            if inst.operation.params:
                params = "(" + ",".join(_format_angle(p) for p in inst.operation.params) + ")"
            operands = ", ".join(qbit(q) for q in inst.qubits)
            stmt = f"{name}{params} {operands};"
        else:
            raise QasmError(f"operation {name!r} has no OpenQASM 2.0 form")
        if inst.condition is not None:
            clbit, value = inst.condition
            reg_name, offset = creg_of[clbit]
            reg = next(r for r in circuit.cregs if r.name == reg_name)
            if reg.size != 1:
                raise QasmError(
                    "OpenQASM 2.0 conditions compare whole registers; "
                    f"conditioned clbit {clbit} lives in multi-bit register "
                    f"{reg_name!r} — put condition bits in 1-bit registers"
                )
            stmt = f"if({reg_name}=={value}) {stmt}"
        lines.append(stmt)
    return "\n".join(lines) + "\n"


def _format_angle(value: float) -> str:
    """Format an angle, using symbolic pi fractions when exact."""
    for num in range(-8, 9):
        for den in (1, 2, 3, 4, 6, 8):
            if num == 0 or math.gcd(abs(num), den) != 1:
                continue
            if math.isclose(value, num * math.pi / den, rel_tol=0, abs_tol=1e-12):
                numerator = "pi" if num == 1 else ("-pi" if num == -1 else f"{num}*pi")
                return numerator if den == 1 else f"{numerator}/{den}"
    if math.isclose(value, 0.0, abs_tol=1e-15):
        return "0"
    return repr(float(value))


_TOKEN_PI = re.compile(r"\bpi\b")


def _parse_angle(text: str) -> float:
    """Evaluate a constant OpenQASM angle expression."""
    expr = _TOKEN_PI.sub(repr(math.pi), text.strip())
    if not re.fullmatch(r"[0-9eE+\-*/. ()]+", expr):
        raise QasmError(f"unsupported angle expression {text!r}")
    try:
        return float(eval(expr, {"__builtins__": {}}, {}))  # noqa: S307
    except Exception as exc:  # pragma: no cover - defensive
        raise QasmError(f"cannot evaluate angle expression {text!r}") from exc


_QREG_RE = re.compile(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_CREG_RE = re.compile(r"creg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_MEASURE_RE = re.compile(
    r"measure\s+(\w+)\s*\[\s*(\d+)\s*\]\s*->\s*(\w+)\s*\[\s*(\d+)\s*\]"
)
_GATE_RE = re.compile(r"(\w+)\s*(?:\(([^)]*)\))?\s+(.+)")
_OPERAND_RE = re.compile(r"(\w+)\s*\[\s*(\d+)\s*\]")
_IF_RE = re.compile(r"if\s*\(\s*(\w+)\s*==\s*(\d+)\s*\)\s*(.*)")


def circuit_from_qasm(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 text into a :class:`QuantumCircuit`."""
    statements = _split_statements(text)
    circuit = QuantumCircuit(name="from_qasm")
    qreg_base: Dict[str, int] = {}
    creg_base: Dict[str, int] = {}
    creg_size: Dict[str, int] = {}

    def resolve_q(name: str, index: int) -> int:
        if name not in qreg_base:
            raise QasmError(f"unknown quantum register {name!r}")
        return qreg_base[name] + index

    def resolve_c(name: str, index: int) -> int:
        if name not in creg_base:
            raise QasmError(f"unknown classical register {name!r}")
        return creg_base[name] + index

    for stmt in statements:
        if stmt.startswith("OPENQASM") or stmt.startswith("include"):
            continue
        match = _QREG_RE.fullmatch(stmt)
        if match:
            name, size = match.group(1), int(match.group(2))
            qreg_base[name] = circuit.num_qubits
            circuit.add_register(QuantumRegister(size, name=name))
            continue
        match = _CREG_RE.fullmatch(stmt)
        if match:
            name, size = match.group(1), int(match.group(2))
            creg_base[name] = circuit.num_clbits
            creg_size[name] = size
            circuit.add_register(ClassicalRegister(size, name=name))
            continue
        condition: Optional[Tuple[int, int]] = None
        match = _IF_RE.fullmatch(stmt)
        if match:
            reg_name, value, stmt = match.group(1), int(match.group(2)), match.group(3)
            if creg_size.get(reg_name) != 1:
                raise QasmError(
                    f"only 1-bit register conditions are supported, register "
                    f"{reg_name!r} has size {creg_size.get(reg_name)}"
                )
            condition = (resolve_c(reg_name, 0), value)
        match = _MEASURE_RE.fullmatch(stmt)
        if match:
            qname, qidx, cname, cidx = match.groups()
            circuit.measure(resolve_q(qname, int(qidx)), resolve_c(cname, int(cidx)))
            continue
        match = _GATE_RE.fullmatch(stmt)
        if not match:
            raise QasmError(f"cannot parse statement {stmt!r}")
        name, params_text, operands_text = match.groups()
        operands = [
            resolve_q(m.group(1), int(m.group(2)))
            for m in _OPERAND_RE.finditer(operands_text)
        ]
        if name == "barrier":
            circuit.barrier(*operands)
            continue
        if name == "reset":
            circuit.reset(operands[0])
            continue
        params = (
            tuple(_parse_angle(p) for p in params_text.split(","))
            if params_text
            else ()
        )
        if name not in _QASM_GATES:
            raise QasmError(f"unsupported gate {name!r}")
        from repro.circuits.gates import get_gate

        circuit.append(get_gate(name, params), operands, condition=condition)
    return circuit


def _split_statements(text: str) -> List[str]:
    """Strip comments and split QASM source into ';'-terminated statements."""
    no_comments = re.sub(r"//[^\n]*", "", text)
    statements = []
    for raw in no_comments.split(";"):
        stmt = " ".join(raw.split())
        if stmt:
            statements.append(stmt)
    return statements
