"""A1: even-vs-odd CNOT-count ablation (the Fig. 4 correctness claim).

The paper stresses that the parity assertion must use an **even** number of
CNOTs, otherwise the ancilla stays entangled with the qubits under test and
"would alter the functionality of subsequent computations".  This
experiment quantifies that: for GHZ(n) we build both variants, measure the
ancilla, and compute

* the entanglement entropy between the ancilla and the tested qubits just
  before the ancilla measurement (0 for the even variant, 1 bit for odd);
* the fidelity of the tested qubits to GHZ(n) *after* the ancilla is
  measured and discarded (1.0 for even; collapsed to a classical mixture,
  fidelity ~0.5, for odd).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.states import entanglement_entropy, state_fidelity
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import ghz_state
from repro.core.entanglement import append_parity_assertion
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.simulators.statevector import StatevectorSimulator


@dataclass
class ParityAblationResult:
    """Outcome of the even/odd CNOT ablation.

    Attributes
    ----------
    rows:
        ``(n, variant, ancilla_entropy_bits, ghz_fidelity_after)`` per GHZ
        size and CNOT-count parity.
    """

    rows: List[Tuple[int, str, float, float]] = field(default_factory=list)

    def summary(self) -> str:
        """Render the ablation table."""
        lines = [
            "A1 — parity-assertion CNOT count (Fig. 4 claim)",
            f"{'n':>3} | {'CNOTs':>6} | {'anc entropy':>11} | {'F(GHZ) after':>12}",
            "-" * 44,
        ]
        for n, variant, entropy, fidelity in self.rows:
            lines.append(
                f"{n:>3} | {variant:>6} | {entropy:>11.4f} | {fidelity:>12.6f}"
            )
        lines.append("")
        lines.append("paper: odd CNOT counts leave the ancilla entangled and")
        lines.append("       corrupt the program state; even counts are safe.")
        return "\n".join(lines)


def _ghz_density(n: int) -> np.ndarray:
    """Return the ideal GHZ(n) density matrix."""
    dim = 2 ** n
    vec = np.zeros(dim, dtype=complex)
    vec[0] = vec[-1] = 1.0 / np.sqrt(2.0)
    return np.outer(vec, vec.conj())


def run_parity_ablation(
    sizes: Tuple[int, ...] = (2, 3, 4, 5),
    seed: Optional[int] = 11,
) -> ParityAblationResult:
    """Run the even/odd ablation for each GHZ size."""
    result = ParityAblationResult()
    sv = StatevectorSimulator()
    dm = DensityMatrixSimulator()
    for n in sizes:
        for variant in ("even", "odd"):
            circuit = ghz_state(n).copy(name=f"ghz{n}_{variant}")
            if variant == "even":
                sources = list(range(n)) if n % 2 == 0 else list(range(n)) + [n - 1]
            else:
                sources = (
                    list(range(n)) if n % 2 == 1 else list(range(n)) + [n - 1]
                )
            append_parity_assertion(
                circuit, sources, enforce_even=False, label=f"{variant}_{n}"
            )
            # Entropy of the ancilla bipartition just before its measurement.
            pre_measure = circuit.copy()
            pre_measure.data = [
                inst for inst in pre_measure.data if inst.name != "measure"
            ]
            state = sv.final_statevector(pre_measure)
            entropy = entanglement_entropy(state, subsystem=[n])
            # Fidelity of the program qubits to GHZ(n) after the ancilla
            # measurement, averaged over outcomes (what the program "sees").
            rho = dm.final_density_matrix(circuit)
            from repro.analysis.states import partial_trace

            program_state = partial_trace(rho, keep=list(range(n)))
            fidelity = state_fidelity(program_state, _ghz_density(n))
            result.rows.append((n, variant, entropy, fidelity))
    return result
