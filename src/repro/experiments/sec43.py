"""E5 / §4.3: superposition assertion on the (modelled) IBM Q ibmqx4.

The paper prepares |+> with a Hadamard and runs the Fig. 5 superposition
assertion on hardware.  Because a uniform-superposition qubit measures 0/1
either way, the raw readout cannot reveal errors — but the assertion ancilla
can: the paper reports a 15.6 % assertion-error rate, i.e. the assertion
detects erroneous deviation from |+> that the Z-basis readout is blind to.

We run the same circuit on the calibrated noise model, report the
assertion-error rate (expected in the same 5-20 % band; the exact number is
calibration-dependent), and additionally compute what the paper could not
measure directly: the fidelity of the tested qubit to |+> with and without
assertion filtering, confirming the filtering benefit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis.states import partial_trace, state_fidelity
from repro.circuits.circuit import QuantumCircuit
from repro.core.injector import AssertionInjector
from repro.devices.device import DeviceModel
from repro.devices.ibmqx4 import ibmqx4
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.transpiler.layout import Layout
from repro.transpiler.passes import transpile_for_device

PAPER_ERROR_RATE = 0.156

#: |+> as a density matrix for fidelity computations.
_PLUS = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)


@dataclass
class Sec43Result:
    """Reproduction of the §4.3 hardware experiment.

    Attributes
    ----------
    assertion_error_rate:
        Fraction of shots whose ancilla flagged an error.
    fidelity_unfiltered:
        F(tested qubit, |+>) averaged over all shots (paper could not
        measure this; our simulator can).
    fidelity_filtered:
        F(tested qubit, |+>) conditioned on the assertion passing.
    shots:
        Shots sampled.
    """

    assertion_error_rate: float
    fidelity_unfiltered: float
    fidelity_filtered: float
    shots: int

    def summary(self) -> str:
        """Render the paper-vs-measured report."""
        return "\n".join(
            [
                "E5 / §4.3 — superposition assertion (q1 == |+>, ancilla q0) "
                "on ibmqx4 model",
                f"assertion error rate : {self.assertion_error_rate:.1%}  "
                f"(paper {PAPER_ERROR_RATE:.1%})",
                f"F(q, |+>) unfiltered : {self.fidelity_unfiltered:.4f}",
                f"F(q, |+>) filtered   : {self.fidelity_filtered:.4f}",
                "paper: the assertion flags errors invisible to the Z-basis "
                "readout.",
            ]
        )


def build_sec43_circuit() -> Tuple[QuantumCircuit, AssertionInjector]:
    """Build the instrumented §4.3 circuit (virtual indices).

    Virtual qubit 0 carries |+>; the injector allocates virtual qubit 1 as
    the Fig. 5 ancilla.  Only the ancilla is measured (clbit 0) so the
    program keeps running — the paper's central point.
    """
    program = QuantumCircuit(1, name="sec43_program")
    program.h(0)
    injector = AssertionInjector(program)
    injector.assert_superposition(0, sign="+", label="sec43")
    return injector.circuit, injector


def run_sec43(
    device: Optional[DeviceModel] = None,
    shots: int = 8192,
    seed: Optional[int] = 2020,
    noise_scale: float = 1.0,
) -> Sec43Result:
    """Execute the §4.3 experiment on the noisy device model."""
    device = device or ibmqx4()
    circuit, _injector = build_sec43_circuit()
    # Tested qubit -> physical q1; ancilla -> physical q0 (native CX(1,0)).
    layout = Layout([1, 0], device.num_qubits)
    executed = transpile_for_device(circuit, device, layout=layout)
    simulator = DensityMatrixSimulator(noise_model=device.noise_model(noise_scale))
    result = simulator.run(executed, shots=shots, seed=seed)
    error_rate = sum(
        p for key, p in (result.probabilities or {}).items() if key[0] == "1"
    )
    # Fidelity of the tested qubit (physical q1) to |+>, before/after
    # conditioning on the assertion outcome.
    rho_all = simulator.final_density_matrix(executed)
    reduced_all = partial_trace(rho_all, keep=[1])
    rho_pass, _mass = simulator.conditional_density_matrix(executed, {0: 0})
    reduced_pass = partial_trace(rho_pass, keep=[1])
    return Sec43Result(
        assertion_error_rate=error_rate,
        fidelity_unfiltered=state_fidelity(reduced_all, _PLUS),
        fidelity_filtered=state_fidelity(reduced_pass, _PLUS),
        shots=shots,
    )
