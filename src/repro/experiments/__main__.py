"""Command-line experiment runner.

Regenerates every paper artifact and ablation from the terminal::

    python -m repro.experiments                  # everything
    python -m repro.experiments table1           # one experiment
    python -m repro.experiments --list           # show the index
    python -m repro.experiments sweep --workers 4 --runtime-stats

Each experiment prints the same paper-vs-measured summary the benchmarks
assert on.  Execution flows through :mod:`repro.runtime`: batch-shaped
experiments (the noise sweep, the scaling study) fan their jobs out over
the runtime's thread pool (``--workers``), every device run shares the
runtime's transpile cache (``--runtime-stats`` prints its hit rate, or
``--no-transpile-cache`` empties and disables reuse for A/B timing), and
``--list-backends`` shows the provider registry's spec strings.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro.experiments import (
    run_amplification,
    run_baseline_comparison,
    run_fig6,
    run_fig7,
    run_mitigation_comparison,
    run_noise_sweep,
    run_parity_ablation,
    run_phase_ablation,
    run_scaling,
    run_sec43,
    run_table1,
    run_table2,
)

#: Experiment id -> (description, runner taking the worker count).  Runners
#: whose workload is batch-shaped forward ``workers`` to the runtime pool;
#: single-job experiments ignore it.
Runner = Callable[[Optional[int]], object]
EXPERIMENTS: Dict[str, tuple] = {
    "fig6": ("E1: classical assertion, QUIRK-style", lambda workers: run_fig6()),
    "fig7": ("E2: superposition assertion, QUIRK-style", lambda workers: run_fig7()),
    "table1": (
        "E3: classical assertion on ibmqx4 model",
        lambda workers: run_table1(),
    ),
    "table2": (
        "E4: entanglement assertion on ibmqx4 model",
        lambda workers: run_table2(),
    ),
    "sec43": (
        "E5: superposition assertion on ibmqx4 model",
        lambda workers: run_sec43(),
    ),
    "parity": (
        "A1: even/odd CNOT-count ablation",
        lambda workers: run_parity_ablation(),
    ),
    "scaling": (
        "A2: overhead & scaling (stabilizer)",
        # Only an explicit --workers overrides run_scaling's serial default
        # (its per-row timings assume one engine run at a time).
        lambda workers: run_scaling(
            **({} if workers is None else {"max_workers": workers})
        ),
    ),
    "baseline": (
        "A3: dynamic vs statistical assertions",
        lambda workers: run_baseline_comparison(),
    ),
    "sweep": (
        "A4: noise sweep of the filtering benefit",
        lambda workers: run_noise_sweep(max_workers=workers),
    ),
    "phase": (
        "A5b: phase-error detection extension",
        lambda workers: run_phase_ablation(),
    ),
    "mitigation": (
        "A6: assertion filtering vs readout mitigation",
        lambda workers: run_mitigation_comparison(),
    ),
    "amplification": (
        "A7: stacked assertions & auto-correction saturation",
        lambda workers: run_amplification(),
    ),
}


def main(argv=None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables/figures and the ablations.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="list the runtime provider's backend specs and exit",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="runtime thread-pool width for batch-shaped experiments "
        "(default: CPU count; counts are seed-deterministic either way)",
    )
    parser.add_argument(
        "--no-transpile-cache",
        action="store_true",
        help="disable the runtime transpile cache (forces re-lowering)",
    )
    parser.add_argument(
        "--runtime-stats",
        action="store_true",
        help="print the runtime transpile-cache statistics when done",
    )
    args = parser.parse_args(argv)

    from repro.runtime import cache as runtime_cache

    if args.list:
        for name, (description, _runner) in EXPERIMENTS.items():
            print(f"{name:>10}  {description}")
        return 0
    if args.list_backends:
        from repro.runtime import list_backends

        for spec in list_backends():
            print(spec)
        return 0
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be positive, got {args.workers}")
    if args.no_transpile_cache:
        runtime_cache.DEFAULT_CACHE.clear()
        runtime_cache.DEFAULT_CACHE.maxsize = 0

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; choose from {list(EXPERIMENTS)}"
        )
    for name in selected:
        _description, runner = EXPERIMENTS[name]
        print(runner(args.workers).summary())
        print()
    if args.runtime_stats:
        stats = runtime_cache.transpile_cache_stats()
        print(
            "runtime transpile cache: "
            f"{stats['entries']} entries, {stats['hits']} hits, "
            f"{stats['misses']} misses (hit rate {stats['hit_rate']:.0%})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
