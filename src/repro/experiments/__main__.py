"""Command-line experiment runner.

Regenerates every paper artifact and ablation from the terminal::

    python -m repro.experiments            # everything
    python -m repro.experiments table1     # one experiment
    python -m repro.experiments --list     # show the index

Each experiment prints the same paper-vs-measured summary the benchmarks
assert on.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import (
    run_amplification,
    run_baseline_comparison,
    run_fig6,
    run_fig7,
    run_mitigation_comparison,
    run_noise_sweep,
    run_parity_ablation,
    run_phase_ablation,
    run_scaling,
    run_sec43,
    run_table1,
    run_table2,
)

#: Experiment id -> (description, runner returning an object with .summary()).
EXPERIMENTS: Dict[str, tuple] = {
    "fig6": ("E1: classical assertion, QUIRK-style", lambda: run_fig6()),
    "fig7": ("E2: superposition assertion, QUIRK-style", lambda: run_fig7()),
    "table1": ("E3: classical assertion on ibmqx4 model", lambda: run_table1()),
    "table2": ("E4: entanglement assertion on ibmqx4 model", lambda: run_table2()),
    "sec43": ("E5: superposition assertion on ibmqx4 model", lambda: run_sec43()),
    "parity": ("A1: even/odd CNOT-count ablation", lambda: run_parity_ablation()),
    "scaling": ("A2: overhead & scaling (stabilizer)", lambda: run_scaling()),
    "baseline": (
        "A3: dynamic vs statistical assertions",
        lambda: run_baseline_comparison(),
    ),
    "sweep": ("A4: noise sweep of the filtering benefit", lambda: run_noise_sweep()),
    "phase": ("A5b: phase-error detection extension", lambda: run_phase_ablation()),
    "mitigation": (
        "A6: assertion filtering vs readout mitigation",
        lambda: run_mitigation_comparison(),
    ),
    "amplification": (
        "A7: stacked assertions & auto-correction saturation",
        lambda: run_amplification(),
    ),
}


def main(argv=None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables/figures and the ablations.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, (description, _runner) in EXPERIMENTS.items():
            print(f"{name:>10}  {description}")
        return 0

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; choose from {list(EXPERIMENTS)}"
        )
    for name in selected:
        _description, runner = EXPERIMENTS[name]
        print(runner().summary())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
