"""Command-line experiment runner.

Regenerates every paper artifact and ablation from the terminal::

    python -m repro.experiments                  # everything
    python -m repro.experiments table1           # one experiment
    python -m repro.experiments --list           # show the index
    python -m repro.experiments sweep --workers 4 --runtime-stats

Each experiment prints the same paper-vs-measured summary the benchmarks
assert on.  Execution flows through :mod:`repro.runtime`: batch-shaped
experiments (the noise sweep, the scaling study) fan their jobs out over
the runtime's shared executors (``--workers``, ``--executor
serial|thread|process``), every device run shares the runtime's transpile
cache (``--runtime-stats`` prints cache and pool statistics, or
``--no-transpile-cache`` empties and disables reuse for A/B timing), the
service layer can be exposed over HTTP with ``--serve HOST:PORT`` (plus
``--serve-client NAME:TOKEN[:SCOPES]`` to pre-register tenants), the
noise sweep re-samples repeat runs through the cross-call distribution
cache, ``--schedule adaptive|fixed`` picks the runtime scheduling mode
(adaptive chunk sizing + backend-aware executors; counts are identical
either way for a fixed seed), ``--cache-dir PATH`` (or
``$REPRO_CACHE_DIR``) persists the caches *and cost profiles* on disk so a
*second invocation* skips transpiles and exact-distribution simulations
entirely and schedules from measured costs, ``--list-backends`` shows
the provider registry's spec strings, and ``--service-demo`` drives a
small multi-client storm through the async service layer
(:mod:`repro.service`) and prints its stats snapshot.

Observability hooks: ``--runtime-stats-json PATH`` writes the process-wide
metrics registry snapshot (:mod:`repro.obs.metrics` — the same numbers a
``/v1/metrics`` scrape exposes) as machine-readable JSON, and ``--trace
svc-N --server URL [--token TOKEN]`` fetches a job's trace span tree from
a running ``--serve`` front-end and renders it as an indented stage tree
with per-span wall-clock durations.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro.experiments import (
    run_amplification,
    run_baseline_comparison,
    run_fig6,
    run_fig7,
    run_mitigation_comparison,
    run_noise_sweep,
    run_parity_ablation,
    run_phase_ablation,
    run_scaling,
    run_sec43,
    run_table1,
    run_table2,
)

#: Experiment id -> (description, runner taking (workers, executor)).
#: Runners whose workload is batch-shaped forward both to the runtime's
#: shared pools; single-job experiments ignore them.
Runner = Callable[[Optional[int], Optional[str]], object]
EXPERIMENTS: Dict[str, tuple] = {
    "fig6": (
        "E1: classical assertion, QUIRK-style",
        lambda workers, executor: run_fig6(),
    ),
    "fig7": (
        "E2: superposition assertion, QUIRK-style",
        lambda workers, executor: run_fig7(),
    ),
    "table1": (
        "E3: classical assertion on ibmqx4 model",
        lambda workers, executor: run_table1(),
    ),
    "table2": (
        "E4: entanglement assertion on ibmqx4 model",
        lambda workers, executor: run_table2(),
    ),
    "sec43": (
        "E5: superposition assertion on ibmqx4 model",
        lambda workers, executor: run_sec43(),
    ),
    "parity": (
        "A1: even/odd CNOT-count ablation",
        lambda workers, executor: run_parity_ablation(),
    ),
    "scaling": (
        "A2: overhead & scaling (stabilizer)",
        # Only an explicit --workers overrides run_scaling's serial default
        # (its per-row timings assume one engine run at a time); --executor
        # process is the one that speeds the GIL-bound tableau engine up.
        lambda workers, executor: run_scaling(
            executor=executor,
            **({} if workers is None else {"max_workers": workers}),
        ),
    ),
    "baseline": (
        "A3: dynamic vs statistical assertions",
        lambda workers, executor: run_baseline_comparison(),
    ),
    "sweep": (
        "A4: noise sweep of the filtering benefit",
        lambda workers, executor: run_noise_sweep(
            max_workers=workers, executor=executor, distribution_cache=True
        ),
    ),
    "phase": (
        "A5b: phase-error detection extension",
        lambda workers, executor: run_phase_ablation(),
    ),
    "mitigation": (
        "A6: assertion filtering vs readout mitigation",
        lambda workers, executor: run_mitigation_comparison(),
    ),
    "amplification": (
        "A7: stacked assertions & auto-correction saturation",
        lambda workers, executor: run_amplification(),
    ),
}


def _service_demo(workers, executor, cache_dir=None) -> int:
    """Drive a small multi-client storm through :mod:`repro.service`.

    Three tenants with different weights, quotas and shot appetites
    submit a burst of seeded assertion circuits concurrently;
    completions stream back via ``as_completed()`` and the service's
    stats snapshot (jobs/sec, queue p50/p99, per-client counters and —
    when a cache dir makes the service durable — the per-tenant cost
    ledger) is printed at the end.
    """
    import asyncio

    from repro.circuits import library
    from repro.service import ClientQuota, RuntimeService

    circuit = library.bell_pair()
    circuit.measure_all()
    tenants = {
        "alice": dict(shots=512, weight=3,
                      quota=ClientQuota(max_in_flight_jobs=8,
                                        over_quota="queue")),
        "bob": dict(shots=256, weight=1,
                    quota=ClientQuota(max_in_flight_jobs=4,
                                      over_quota="queue")),
        "carol": dict(shots=128, weight=1,
                      quota=ClientQuota(max_in_flight_jobs=2,
                                        over_quota="queue")),
    }
    per_client = 8

    async def one_client(service, name, token, shots):
        handles = [
            await service.submit(circuit, "noisy:ibmqx4", shots=shots,
                                 seed=i, token=token)
            for i in range(per_client)
        ]
        async for handle in service.as_completed(handles, timeout=300):
            print(f"  {handle.job_id:>8}  {name:<6} {handle.status()}")
        return handles

    async def storm():
        service = RuntimeService(executor=executor, max_workers=workers,
                                 cache_dir=cache_dir)
        try:
            tokens = {
                name: service.register_client(
                    name, weight=spec["weight"], quota=spec["quota"]
                )
                for name, spec in tenants.items()
            }
            print(f"service demo: {len(tenants)} clients x {per_client} "
                  "submissions (noisy:ibmqx4, 128-512 shots)")
            await asyncio.gather(*(
                one_client(service, name, token, tenants[name]["shots"])
                for name, token in tokens.items()
            ))
            await service.drain()
            stats = service.stats()
            if stats["accounting"] is not None:
                # Settlements charge the ledger off-loop; give the last
                # few a beat to land before snapshotting it.
                for _ in range(50):
                    if len(stats["accounting"]) >= len(tenants):
                        break
                    await asyncio.sleep(0.02)
                    stats = service.stats()
            return stats
        finally:
            await service.close()

    stats = asyncio.run(storm())
    latency = stats["queue_latency"]
    print(
        "service stats: "
        f"{stats['completed_jobs']} jobs completed, "
        f"{stats['jobs_per_second']:.1f} jobs/s, "
        f"{stats['dispatched_batches']} batches dispatched"
    )
    if latency["p50_s"] is not None:
        print(
            "queue latency: "
            f"p50 {latency['p50_s'] * 1e3:.1f} ms, "
            f"p99 {latency['p99_s'] * 1e3:.1f} ms, "
            f"max {latency['max_s'] * 1e3:.1f} ms"
        )
    for name, client in sorted(stats["clients"].items()):
        print(
            f"  {name:<6} weight={client['weight']} "
            f"submitted={client['submitted_jobs']} "
            f"completed={client['completed_jobs']} "
            f"waits={client['queued_waits']} "
            f"rejected={client['rejected_quota'] + client['rejected_rate']}"
        )
    if stats["accounting"] is not None:
        journal = stats["journal"]
        print(
            f"journal: {journal['records']} records "
            f"(durable={journal['durable']}); per-tenant cost ledger:"
        )
        for name, spend in sorted(stats["accounting"].items()):
            cost = (f"{spend['cost_s']:.3f} s est"
                    if spend["cost_s"] else "unpriced")
            print(
                f"  {name:<6} shots={spend['shots']} "
                f"jobs={spend['jobs']} cost={cost}"
            )
    return 0


def _format_span(span: dict, indent: int = 0) -> list:
    """Render one span (and its subtree) as indented human-readable lines."""
    duration = span.get("duration_s")
    timing = (
        f"{duration * 1e3:.3f} ms" if duration is not None else "in flight"
    )
    attrs = span.get("attrs") or {}
    detail = " ".join(
        f"{key}={value}" for key, value in attrs.items() if value is not None
    )
    lines = [
        "  " * indent
        + f"{span.get('name', '?'):<10} {timing:>12}"
        + (f"  {detail}" if detail else "")
    ]
    for event in span.get("events") or []:
        fields = " ".join(
            f"{k}={v}" for k, v in event.items() if k not in ("name", "t_s")
        )
        lines.append(
            "  " * (indent + 1) + f"! {event.get('name')}"
            + (f" {fields}" if fields else "")
        )
    for child in span.get("children") or []:
        lines.extend(_format_span(child, indent + 1))
    return lines


def _trace_job(job_id: str, server: str, token) -> int:
    """Fetch and pretty-print one job's trace tree from a --serve front-end."""
    from repro.service.client import ServiceClient

    with ServiceClient(server, token=token) as client:
        try:
            trace = client.trace(job_id)
        except Exception as exc:
            print(f"trace {job_id} failed: {exc}", file=sys.stderr)
            return 1
    print(f"trace for {job_id} on {server}:")
    for line in _format_span(trace):
        print(line)
    return 0


def _write_runtime_stats_json(path: str) -> None:
    """Dump the metrics registry snapshot as JSON to ``path`` (``-`` = stdout).

    The snapshot is the registry's own — counters, gauges and histogram
    summaries keyed by their full Prometheus names — so scripts consuming
    this file and dashboards scraping ``/v1/metrics`` read one source.
    """
    import json

    from repro.obs.metrics import DEFAULT_REGISTRY

    payload = json.dumps(DEFAULT_REGISTRY.snapshot(), indent=2, sort_keys=True)
    if path == "-":
        print(payload)
        return
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload + "\n")
    print(f"runtime stats written to {path}")


def _parse_serve_client(spec: str) -> tuple:
    """Parse ``NAME:TOKEN[:SCOPES]`` (scopes ``+``-separated) for --serve-client."""
    parts = spec.split(":")
    if len(parts) not in (2, 3) or not parts[0] or not parts[1]:
        raise ValueError(
            f"--serve-client expects NAME:TOKEN[:SCOPES], got {spec!r}"
        )
    name, token = parts[0], parts[1]
    scopes = tuple(parts[2].split("+")) if len(parts) == 3 else None
    return name, token, scopes


def _serve(address, clients, workers, executor, cache_dir) -> int:
    """Run the HTTP front-end (:mod:`repro.service.http`) until interrupted.

    Binds ``HOST:PORT`` (port 0 picks a free one), pre-registers any
    ``--serve-client`` tenants, recovers the journal when a cache dir
    makes the service durable — pre-restart ``svc-N`` ids answer over
    the wire — and prints the bound URL on a flushed line so a parent
    process can scrape the ephemeral port.

    Anonymous access is tied to the tenant list: with any
    ``--serve-client`` registered the service runs ``allow_anonymous=
    False`` (the all-scope anonymous identity must not leak onto a
    multi-tenant network surface); a bare ``--serve`` keeps the
    single-tenant embedding default so curl works without tokens.
    """
    import asyncio

    from repro.service import RuntimeService
    from repro.service.http import serve

    host, _, port_text = address.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"--serve expects HOST:PORT, got {address!r}", file=sys.stderr)
        return 2

    async def run() -> int:
        service = RuntimeService(executor=executor, max_workers=workers,
                                 cache_dir=cache_dir,
                                 allow_anonymous=not clients)
        try:
            for name, token, scopes in clients:
                service.register_client(name, token=token, scopes=scopes)
            server = await serve(service, host=host, port=int(port_text))
            print(f"serving repro.service on {server.url}", flush=True)
            try:
                await server.serve_forever()
            finally:
                await server.close()
        finally:
            await service.close()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; service closed", file=sys.stderr)
        return 0


def main(argv=None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables/figures and the ablations.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="list the runtime provider's backend specs and exit",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="runtime pool width for batch-shaped experiments "
        "(default: CPU count; counts are seed-deterministic either way)",
    )
    parser.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default=None,
        help="runtime executor kind for batch-shaped experiments "
        "(default: $REPRO_EXECUTOR or thread; process helps the GIL-bound "
        "per-shot engines; counts are identical under every kind)",
    )
    parser.add_argument(
        "--schedule",
        choices=["adaptive", "fixed"],
        default=None,
        help="runtime scheduling mode (default: $REPRO_SCHEDULE or adaptive; "
        "adaptive picks backend-aware executors and cost-model-driven chunk "
        "sizes where counts cannot change — for a fixed seed both modes "
        "produce bit-identical counts)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persist the transpile/distribution caches under PATH so "
        "repeat invocations skip transpiles and exact-distribution "
        "simulations (counts are bit-identical either way; default: "
        "$REPRO_CACHE_DIR, else memory-only)",
    )
    parser.add_argument(
        "--no-transpile-cache",
        action="store_true",
        help="disable the runtime transpile cache (forces re-lowering)",
    )
    parser.add_argument(
        "--runtime-stats",
        action="store_true",
        help="print the runtime cache and executor-pool statistics when done",
    )
    parser.add_argument(
        "--runtime-stats-json",
        default=None,
        metavar="PATH",
        help="when done, write the process-wide metrics registry snapshot "
        "(the /v1/metrics numbers: pools, caches, cost model, scheduler, "
        "service) as JSON to PATH ('-' prints to stdout)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="JOB_ID",
        help="fetch a job's trace span tree (e.g. svc-3) from a running "
        "--serve front-end and print it as an indented stage tree; "
        "requires --server, honours --token",
    )
    parser.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="base URL of a running --serve front-end (for --trace)",
    )
    parser.add_argument(
        "--token",
        default=None,
        metavar="TOKEN",
        help="bearer token for --trace (the job's owner or an admin)",
    )
    parser.add_argument(
        "--service-demo",
        action="store_true",
        help="run a small multi-client storm through the async service "
        "layer (repro.service) and print its stats snapshot, then exit "
        "(with --cache-dir or $REPRO_CACHE_DIR the service journals to "
        "disk and the per-tenant cost ledger is printed too)",
    )
    parser.add_argument(
        "--serve",
        default=None,
        metavar="HOST:PORT",
        help="serve the service layer over HTTP (repro.service.http) until "
        "interrupted, instead of running experiments; PORT 0 binds an "
        "ephemeral port and the bound URL is printed; honours --executor, "
        "--workers and --cache-dir (a cache dir makes the service durable "
        "and recovers the journal before accepting requests)",
    )
    parser.add_argument(
        "--serve-client",
        action="append",
        default=[],
        metavar="NAME:TOKEN[:SCOPES]",
        help="pre-register a tenant for --serve; SCOPES is a +-separated "
        "subset of submit+read+admin (default: submit+read); repeatable",
    )
    args = parser.parse_args(argv)

    if args.serve_client and not args.serve:
        parser.error("--serve-client requires --serve")
    if args.trace and not args.server:
        parser.error("--trace requires --server URL")
    if args.server and not args.trace:
        parser.error("--server only makes sense with --trace")
    if args.trace:
        return _trace_job(args.trace, args.server, args.token)
    if args.serve:
        try:
            clients = [_parse_serve_client(s) for s in args.serve_client]
        except ValueError as exc:
            parser.error(str(exc))
        return _serve(args.serve, clients, args.workers, args.executor,
                      args.cache_dir)

    if args.service_demo:
        return _service_demo(args.workers, args.executor, args.cache_dir)

    from repro.runtime import cache as runtime_cache

    if args.list:
        for name, (description, _runner) in EXPERIMENTS.items():
            print(f"{name:>10}  {description}")
        return 0
    if args.list_backends:
        from repro.runtime import list_backends

        for spec in list_backends():
            print(spec)
        return 0
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be positive, got {args.workers}")
    if args.schedule:
        # The scheduling mode is process-wide policy, not a per-experiment
        # argument: setting the env default reaches every execute() call the
        # runners make, exactly like exporting REPRO_SCHEDULE would.
        import os

        from repro.runtime.scheduler import SCHEDULE_ENV_VAR

        os.environ[SCHEDULE_ENV_VAR] = args.schedule
    if args.cache_dir:
        from repro.runtime import set_default_cache_dir

        set_default_cache_dir(args.cache_dir)
    if args.no_transpile_cache:
        # maxsize = 0 empties the memory tier (the setter trims) and makes
        # every lookup miss — without clear(), which would also delete the
        # persistent disk entries other invocations rely on.
        runtime_cache.DEFAULT_CACHE.maxsize = 0

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; choose from {list(EXPERIMENTS)}"
        )
    for name in selected:
        _description, runner = EXPERIMENTS[name]
        print(runner(args.workers, args.executor).summary())
        print()
    if args.runtime_stats:
        from repro.runtime import distribution_cache_stats, pool_stats

        def _cache_line(label: str, stats: dict) -> str:
            line = (
                f"runtime {label} cache: "
                f"{stats['entries']} entries, {stats['hits']} hits, "
                f"{stats['misses']} misses (hit rate {stats['hit_rate']:.0%})"
            )
            disk = stats["disk"]
            if disk is not None:
                line += (
                    f"\n  disk tier [{disk['directory']}]: "
                    f"{disk['entries']} entries, {disk['hits']} hits, "
                    f"{disk['stores']} stores"
                )
            return line

        print(_cache_line("transpile", runtime_cache.transpile_cache_stats()))
        print(_cache_line("distribution", distribution_cache_stats()))
        pools = pool_stats()
        print(
            "runtime executor pools: "
            f"{pools['active']} active {pools['pools']}, "
            f"{pools['created']} created, {pools['reused']} reused"
        )
        from repro.runtime import cost_model_stats

        profiles = cost_model_stats()["profiles"]
        print(f"runtime cost model: {len(profiles)} profiled key(s)")
        for label, entry in profiles.items():
            per_shot = entry["per_shot"]
            per_prepare = entry["per_prepare"]
            print(
                f"  {label}: "
                + (
                    f"{per_shot * 1e3:.3f} ms/shot"
                    if per_shot is not None
                    else "no shot samples"
                )
                + f" ({entry['shot_samples']} chunk(s))"
                + (
                    f", prepare {per_prepare * 1e3:.3f} ms"
                    if per_prepare is not None
                    else ""
                )
            )
    if args.runtime_stats_json:
        _write_runtime_stats_json(args.runtime_stats_json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
