"""E1 / Fig. 6: QUIRK verification of the classical assertion.

The paper's Fig. 6 feeds a |+> qubit into the ``q == |0>`` assertion and
post-selects on the ancilla reading 0 (no assertion error): the qubit under
test comes out exactly |0> — the assertion *projects* (auto-corrects) the
erroneous superposition, and the error branch occurs with probability
|b|^2 = 1/2.

We reproduce this with the statevector engine plus the post-selection
operator, for the paper's |+> input and a sweep of other inputs, recording
the post-selected state fidelity to |0> and the assertion-error probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.states import partial_trace, state_fidelity
from repro.circuits.circuit import QuantumCircuit
from repro.core.classical import append_classical_assertion
from repro.simulators.postselection import postselected_statevector_after
from repro.simulators.statevector import Statevector, StatevectorSimulator


@dataclass
class Fig6Result:
    """Outcome of the Fig. 6 reproduction.

    Attributes
    ----------
    rows:
        One entry per input state: ``(label, error_probability,
        fidelity_of_postselected_qubit_to_|0>)``.
    paper_claims:
        The qualitative claims from the paper to compare against.
    """

    rows: List[Tuple[str, float, float]] = field(default_factory=list)
    paper_claims: Dict[str, str] = field(default_factory=dict)

    def row(self, label: str) -> Tuple[str, float, float]:
        """Return the row with the given input label."""
        for entry in self.rows:
            if entry[0] == label:
                return entry
        raise KeyError(label)

    def summary(self) -> str:
        """Render a paper-vs-measured table."""
        lines = [
            "E1 / Fig. 6 — classical assertion (assert q == |0>), QUIRK-style",
            f"{'input':>8} | {'P(assert err)':>13} | {'F(q after, |0>)':>15}",
            "-" * 44,
        ]
        for label, p_err, fidelity in self.rows:
            lines.append(f"{label:>8} | {p_err:>13.4f} | {fidelity:>15.6f}")
        lines.append("")
        lines.append("paper: |+> input is projected to |0> on passing shots;")
        lines.append("       P(error) = |b|^2 (= 0.5 for |+>).")
        return "\n".join(lines)


def _assertion_circuit_for_input(theta: float, phi: float) -> QuantumCircuit:
    """Prepare ``u3(theta, phi, 0)|0>`` and assert it equals |0>."""
    circuit = QuantumCircuit(1, name="fig6")
    if theta or phi:
        circuit.u3(theta, phi, 0.0, 0)
    append_classical_assertion(circuit, 0, 0, label="fig6")
    return circuit


#: Input label -> (theta, phi) for u3 preparation.
FIG6_INPUTS: Dict[str, Tuple[float, float]] = {
    "|0>": (0.0, 0.0),
    "|1>": (math.pi, 0.0),
    "|+>": (math.pi / 2.0, 0.0),
    "|->": (math.pi / 2.0, math.pi),
    "0.8|0>": (2.0 * math.acos(0.8), 0.0),
}


def run_fig6() -> Fig6Result:
    """Reproduce Fig. 6 exactly (no sampling noise)."""
    simulator = StatevectorSimulator()
    result = Fig6Result(
        paper_claims={
            "|+>": "projected to |0> after passing assertion; P(err) = 0.5",
            "|0>": "always passes, state untouched",
            "|1>": "always fails (P(err) = 1)",
        }
    )
    zero = Statevector.from_label("0")
    for label, (theta, phi) in FIG6_INPUTS.items():
        circuit = _assertion_circuit_for_input(theta, phi)
        probabilities = simulator.exact_probabilities(circuit)
        p_error = probabilities.get("1", 0.0)
        if p_error < 1.0 - 1e-12:
            # Post-select on "no assertion error" (clbit 0 == 0), QUIRK-style.
            state, _mass = postselected_statevector_after(
                circuit, {0: 0}, simulator=simulator
            )
            qubit_state = partial_trace(state, keep=[0])
            fidelity = state_fidelity(qubit_state, zero)
        else:
            fidelity = float("nan")
        result.rows.append((label, p_error, fidelity))
    return result
