"""A3: dynamic assertions vs the statistical-assertion baseline.

Huang & Martonosi's statistical assertions (ISCA'19) measure the tested
qubits directly, which (a) halts the program at the assertion point and
(b) needs a *separate batch of executions per assertion point*.  The
paper's dynamic circuits check all assertion points inside one continuing
execution.

This experiment injects a parameterised bug into a Bell/GHZ preparation
and compares the two approaches on three axes:

* detection — does each approach flag the bug?
* executions — how many circuit executions were consumed?
* continuation — can the very same run still produce the program's result?
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.baseline import (
    statistical_entanglement_assertion,
    statistical_superposition_assertion,
)
from repro.core.filtering import evaluate_assertions
from repro.core.injector import AssertionInjector
from repro.devices.backend import StatevectorBackend


@dataclass
class BaselineComparisonResult:
    """Outcome of the dynamic-vs-statistical comparison.

    Attributes
    ----------
    rows:
        ``(scenario, approach, detected, executions, program_continues)``.
    """

    rows: List[Tuple[str, str, bool, int, bool]] = field(default_factory=list)

    def summary(self) -> str:
        """Render the comparison table."""
        lines = [
            "A3 — dynamic assertions vs statistical assertions (ISCA'19)",
            f"{'scenario':>22} | {'approach':>11} | {'detect':>6} | "
            f"{'execs':>6} | {'continues':>9}",
            "-" * 68,
        ]
        for scenario, approach, detected, executions, continues in self.rows:
            lines.append(
                f"{scenario:>22} | {approach:>11} | {str(detected):>6} | "
                f"{executions:>6} | {str(continues):>9}"
            )
        lines.append("")
        lines.append("dynamic assertions detect in-line and keep the program")
        lines.append("running; statistical assertions halt it per check.")
        return "\n".join(lines)

    def detection(self, scenario: str, approach: str) -> bool:
        """Return whether ``approach`` detected the bug in ``scenario``."""
        for row in self.rows:
            if row[0] == scenario and row[1] == approach:
                return row[2]
        raise KeyError((scenario, approach))


def _buggy_bell(skip_cx: bool) -> QuantumCircuit:
    """A Bell preparation with an optional forgotten CNOT (a classic bug)."""
    circuit = QuantumCircuit(2, name="bell_bug" if skip_cx else "bell_ok")
    circuit.h(0)
    if not skip_cx:
        circuit.cx(0, 1)
    return circuit


def _buggy_superposition(wrong_gate: bool) -> QuantumCircuit:
    """An H layer where one qubit got an X instead of H (another classic)."""
    circuit = QuantumCircuit(1, name="sup_bug" if wrong_gate else "sup_ok")
    if wrong_gate:
        circuit.x(0)
    else:
        circuit.h(0)
    return circuit


def run_baseline_comparison(
    shots: int = 2048,
    alpha: float = 0.01,
    seed: Optional[int] = 17,
) -> BaselineComparisonResult:
    """Run both approaches on bugged and correct programs."""
    backend = StatevectorBackend()
    result = BaselineComparisonResult()

    scenarios = [
        ("bell missing CX", _buggy_bell(skip_cx=True), "entanglement", True),
        ("bell correct", _buggy_bell(skip_cx=False), "entanglement", False),
        ("superposition X-for-H", _buggy_superposition(True), "superposition", True),
        ("superposition correct", _buggy_superposition(False), "superposition", False),
    ]
    for name, program, kind, _has_bug in scenarios:
        # --- dynamic assertion: one execution batch, program continues ---
        injector = AssertionInjector(program)
        if kind == "entanglement":
            injector.assert_entangled([0, 1])
        else:
            injector.assert_superposition(0)
        injector.measure_program()  # the program's own result, same run
        run = backend.run(injector.circuit, shots=shots, seed=seed)
        report = evaluate_assertions(run.counts, injector.records)
        # Detection criterion: a statistically impossible error rate for a
        # correct program (ideal simulation -> any failures mean detection;
        # use a small threshold for robustness).
        detected = report.discard_fraction() > 0.02
        result.rows.append((name, "dynamic", detected, shots, True))

        # --- statistical assertion: dedicated halting batch -----------
        if kind == "entanglement":
            outcome = statistical_entanglement_assertion(
                backend, program, (0, 1), shots=shots, alpha=alpha, seed=seed
            )
            detected_stat = not outcome.passed
        else:
            outcome = statistical_superposition_assertion(
                backend, program, 0, shots=shots, alpha=alpha, seed=seed
            )
            detected_stat = not outcome.passed
        result.rows.append(
            (name, "statistical", detected_stat, outcome.executions, False)
        )
    return result
