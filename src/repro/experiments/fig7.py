"""E2 / Fig. 7: QUIRK verification of the superposition assertion.

The paper's Fig. 7 feeds a *classical* input into the equal-superposition
assertion: the ancilla reads 0/1 with 50 % each (a 50 % assertion-error
rate), and either way the tested qubit exits in an equal-magnitude
superposition ``k|0> + k|1>``, |k| = 1/sqrt(2).

We verify exactly: error probability for a family of inputs matches the
derived ``(2 - 4ab)/4`` formula, and the conditional post-measurement state
of the tested qubit always has 50/50 Z-basis weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.core.superposition import (
    append_superposition_assertion,
    superposition_error_probability,
)
from repro.simulators.postselection import postselected_statevector_after
from repro.simulators.statevector import StatevectorSimulator


@dataclass
class Fig7Result:
    """Outcome of the Fig. 7 reproduction.

    Attributes
    ----------
    rows:
        ``(input label, measured P(err), predicted P(err),
        |amp0|^2 of qubit after a passing assertion)`` per input.
    """

    rows: List[Tuple[str, float, float, float]] = field(default_factory=list)

    def row(self, label: str) -> Tuple[str, float, float, float]:
        """Return the row with the given input label."""
        for entry in self.rows:
            if entry[0] == label:
                return entry
        raise KeyError(label)

    def summary(self) -> str:
        """Render a paper-vs-measured table."""
        lines = [
            "E2 / Fig. 7 — superposition assertion (assert q == |+>), QUIRK-style",
            f"{'input':>10} | {'P(err) meas':>11} | {'P(err) paper':>12} | {'P(q=0|pass)':>11}",
            "-" * 56,
        ]
        for label, measured, predicted, weight in self.rows:
            lines.append(
                f"{label:>10} | {measured:>11.4f} | {predicted:>12.4f} | {weight:>11.4f}"
            )
        lines.append("")
        lines.append("paper: classical input -> 50% assertion errors, and the")
        lines.append("       qubit is forced into an equal superposition.")
        return "\n".join(lines)


#: Input label -> real amplitude pair (a, b).
FIG7_INPUTS: Dict[str, Tuple[float, float]] = {
    "|0>": (1.0, 0.0),
    "|1>": (0.0, 1.0),
    "|+>": (1 / math.sqrt(2.0), 1 / math.sqrt(2.0)),
    "|->": (1 / math.sqrt(2.0), -1 / math.sqrt(2.0)),
    "0.6|0>+0.8|1>": (0.6, 0.8),
    "0.96|0>+0.28|1>": (0.96, 0.28),
}


def _prepare(a: float, b: float) -> QuantumCircuit:
    """Prepare the real-amplitude state ``a|0> + b|1>``."""
    circuit = QuantumCircuit(1, name="fig7")
    theta = 2.0 * math.atan2(b, a)
    if abs(theta) > 1e-15:
        circuit.ry(theta, 0)
    return circuit


def run_fig7() -> Fig7Result:
    """Reproduce Fig. 7 exactly (no sampling noise)."""
    simulator = StatevectorSimulator()
    result = Fig7Result()
    for label, (a, b) in FIG7_INPUTS.items():
        circuit = _prepare(a, b)
        append_superposition_assertion(circuit, 0, sign="+", label="fig7")
        probabilities = simulator.exact_probabilities(circuit)
        measured_error = probabilities.get("1", 0.0)
        predicted_error = superposition_error_probability(a, b)
        if measured_error < 1.0 - 1e-12:
            state, _mass = postselected_statevector_after(
                circuit, {0: 0}, simulator=simulator
            )
            tensor = state.data.reshape(2, 2)  # axes: (qubit, ancilla)
            qubit_amplitudes = tensor[:, 0] / np.linalg.norm(tensor[:, 0])
            weight0 = float(abs(qubit_amplitudes[0]) ** 2)
        else:
            weight0 = float("nan")
        result.rows.append((label, measured_error, predicted_error, weight0))
    return result
