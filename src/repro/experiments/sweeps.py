"""A4: noise sweep — how the assertion-filtering benefit tracks error rate.

Reruns the Table 1 and Table 2 experiments with the device calibration
scaled from 0.25x to 4x nominal.  Two shapes to observe: the raw error rate
grows roughly linearly with the scale, and post-selection on the assertion
ancilla keeps delivering a double-digit relative reduction across the whole
range (at high noise the discard fraction grows — the price of filtering).

The sweep is batch-shaped — one instrumented circuit per experiment, many
noise scales — so it submits every (circuit, scale) job in a single
:func:`repro.runtime.execute` call and fans out over the runtime's thread
pool; the per-scale backends share the runtime's transpile cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.devices.ibmqx4 import ibmqx4
from repro.experiments.table1 import analyze_table1, build_table1_circuit, table1_backend
from repro.experiments.table2 import analyze_table2, build_table2_circuit, table2_backend
from repro.runtime.execute import execute


@dataclass
class NoiseSweepResult:
    """Outcome of the noise sweep.

    Attributes
    ----------
    rows:
        ``(experiment, scale, raw_error, filtered_error, reduction)``.
    """

    rows: List[Tuple[str, float, float, float, float]] = field(default_factory=list)

    def summary(self) -> str:
        """Render the sweep table."""
        lines = [
            "A4 — noise sweep of the assertion-filtering benefit (ibmqx4 model)",
            f"{'exp':>7} | {'scale':>5} | {'raw err':>8} | {'filtered':>8} | "
            f"{'reduction':>9}",
            "-" * 50,
        ]
        for name, scale, raw, filtered, reduction in self.rows:
            lines.append(
                f"{name:>7} | {scale:>5.2f} | {raw:>8.2%} | {filtered:>8.2%} | "
                f"{reduction:>9.1%}"
            )
        return "\n".join(lines)

    def series(self, experiment: str) -> List[Tuple[float, float, float]]:
        """Return ``(scale, raw, filtered)`` points for one experiment."""
        return [
            (scale, raw, filtered)
            for name, scale, raw, filtered, _ in self.rows
            if name == experiment
        ]


def run_noise_sweep(
    scales: Tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    shots: int = 8192,
    seed: Optional[int] = 2020,
    max_workers: Optional[int] = None,
    executor: Optional[str] = None,
    distribution_cache=False,
) -> NoiseSweepResult:
    """Sweep the calibration scale for both hardware experiments.

    All ``2 x len(scales)`` jobs are submitted as one batch; counts are
    identical to running :func:`~repro.experiments.table1.run_table1` /
    :func:`~repro.experiments.table2.run_table2` sequentially with the same
    seed — under any ``executor`` kind, and whether or not the cross-call
    ``distribution_cache`` is enabled (re-running the sweep with the cache
    on re-samples every point instead of re-simulating it).
    """
    device = ibmqx4()
    t1_circuit, _ = build_table1_circuit()
    t2_circuit, _ = build_table2_circuit()
    specs = []  # (experiment name, scale, circuit, backend, analyzer)
    for scale in scales:
        specs.append(
            ("table1", scale, t1_circuit, table1_backend(device, scale), analyze_table1)
        )
        specs.append(
            ("table2", scale, t2_circuit, table2_backend(device, scale), analyze_table2)
        )
    jobs = execute(
        [spec[2] for spec in specs],
        [spec[3] for spec in specs],
        shots=shots,
        seed=seed,
        max_workers=max_workers,
        executor=executor,
        distribution_cache=distribution_cache,
    )
    result = NoiseSweepResult()
    for (name, scale, _circuit, _backend, analyze), run in zip(specs, jobs.result()):
        analyzed = analyze(run.counts, shots)
        metric = analyzed.reduction if name == "table1" else analyzed.improvement
        result.rows.append(
            (name, scale, analyzed.raw_error, analyzed.filtered_error, metric)
        )
    return result
