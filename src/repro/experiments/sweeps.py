"""A4: noise sweep — how the assertion-filtering benefit tracks error rate.

Reruns the Table 1 and Table 2 experiments with the device calibration
scaled from 0.25x to 4x nominal.  Two shapes to observe: the raw error rate
grows roughly linearly with the scale, and post-selection on the assertion
ancilla keeps delivering a double-digit relative reduction across the whole
range (at high noise the discard fraction grows — the price of filtering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.devices.ibmqx4 import ibmqx4
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


@dataclass
class NoiseSweepResult:
    """Outcome of the noise sweep.

    Attributes
    ----------
    rows:
        ``(experiment, scale, raw_error, filtered_error, reduction)``.
    """

    rows: List[Tuple[str, float, float, float, float]] = field(default_factory=list)

    def summary(self) -> str:
        """Render the sweep table."""
        lines = [
            "A4 — noise sweep of the assertion-filtering benefit (ibmqx4 model)",
            f"{'exp':>7} | {'scale':>5} | {'raw err':>8} | {'filtered':>8} | "
            f"{'reduction':>9}",
            "-" * 50,
        ]
        for name, scale, raw, filtered, reduction in self.rows:
            lines.append(
                f"{name:>7} | {scale:>5.2f} | {raw:>8.2%} | {filtered:>8.2%} | "
                f"{reduction:>9.1%}"
            )
        return "\n".join(lines)

    def series(self, experiment: str) -> List[Tuple[float, float, float]]:
        """Return ``(scale, raw, filtered)`` points for one experiment."""
        return [
            (scale, raw, filtered)
            for name, scale, raw, filtered, _ in self.rows
            if name == experiment
        ]


def run_noise_sweep(
    scales: Tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    shots: int = 8192,
    seed: Optional[int] = 2020,
) -> NoiseSweepResult:
    """Sweep the calibration scale for both hardware experiments."""
    device = ibmqx4()
    result = NoiseSweepResult()
    for scale in scales:
        t1 = run_table1(device=device, shots=shots, seed=seed, noise_scale=scale)
        result.rows.append(
            ("table1", scale, t1.raw_error, t1.filtered_error, t1.reduction)
        )
        t2 = run_table2(device=device, shots=shots, seed=seed, noise_scale=scale)
        result.rows.append(
            ("table2", scale, t2.raw_error, t2.filtered_error, t2.improvement)
        )
    return result
