"""A6: assertion filtering vs readout-error mitigation.

Both techniques improve NISQ histograms by classical post-processing, but
they target different error classes:

* **readout mitigation** (confusion-matrix inversion) fixes measurement
  misassignment in expectation, keeping all shots, but cannot touch gate
  errors that corrupted the state *before* measurement;
* **assertion filtering** (the paper's §4) discards shots whose ancilla
  flagged an error — catching state-corruption the ancilla witnessed, at
  the price of the discarded fraction and the assertion circuit's own
  noise.

This experiment runs the Table 2 Bell workload on the ibmqx4 model and
compares the Bell error rate raw / mitigated / filtered / both-combined.
The expected shape: mitigation and filtering each help; they compose; and
filtering keeps helping when readout noise is turned off entirely (pure
gate noise) where mitigation does nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.mitigation import (
    calibration_circuits,
    confusion_matrix_from_calibration,
    mitigate_counts,
)
from repro.core.filtering import result_error_rate
from repro.devices.device import DeviceModel
from repro.devices.ibmqx4 import ibmqx4
from repro.experiments.table2 import build_table2_circuit
from repro.results.counts import Counts
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.transpiler.layout import Layout
from repro.transpiler.passes import transpile_for_device

BELL_KEYS = ("00", "11")


@dataclass
class MitigationComparisonResult:
    """Outcome of the filtering-vs-mitigation comparison.

    Attributes
    ----------
    rows:
        ``(scenario, technique, bell_error_rate)`` where scenario is
        ``"full noise"`` or ``"gate noise only"``.
    """

    rows: List[Tuple[str, str, float]] = field(default_factory=list)

    def error(self, scenario: str, technique: str) -> float:
        """Return the Bell error rate for one configuration."""
        for s, t, e in self.rows:
            if s == scenario and t == technique:
                return e
        raise KeyError((scenario, technique))

    def summary(self) -> str:
        """Render the comparison table."""
        lines = [
            "A6 — assertion filtering vs readout mitigation (Table 2 workload)",
            f"{'scenario':>16} | {'technique':>12} | {'bell error':>10}",
            "-" * 46,
        ]
        for scenario, technique, error in self.rows:
            lines.append(f"{scenario:>16} | {technique:>12} | {error:>10.2%}")
        lines.append("")
        lines.append("mitigation fixes readout only; assertion filtering also")
        lines.append("removes state errors its ancilla witnessed; they compose.")
        return "\n".join(lines)


def _bell_error_from_distribution(distribution: Dict[str, float]) -> float:
    correct = sum(distribution.get(k, 0.0) for k in BELL_KEYS)
    total = sum(distribution.values())
    return 1.0 - correct / total if total else 0.0


class _ModelBackend:
    """Density-matrix backend bound to one compiled noise model."""

    def __init__(self, noise_model):
        self._sim = DensityMatrixSimulator(noise_model=noise_model)

    def run(self, circuit, shots=1024, seed=None):
        return self._sim.run(circuit, shots=shots, seed=seed)


def _run_scenario(
    scenario: str,
    device: DeviceModel,
    noise_model,
    shots: int,
    seed: Optional[int],
    result: MitigationComparisonResult,
) -> None:
    circuit, _injector = build_table2_circuit()
    layout = Layout([1, 2, 0], device.num_qubits)
    executed = transpile_for_device(circuit, device, layout=layout)
    backend = _ModelBackend(noise_model)
    run = backend.run(executed, shots=shots, seed=seed)
    counts = Counts(dict(run.counts))  # keys: (ancilla, q1, q2)

    # Raw: marginalise away the ancilla bit.
    raw = counts.marginal([1, 2])
    result.rows.append((scenario, "raw", result_error_rate(raw, BELL_KEYS)))

    # Readout mitigation on the two Bell bits (physical q1, q2).
    calibration = {
        label: backend.run(
            transpile_for_device(cal, device, layout=Layout([1, 2], device.num_qubits)),
            shots=shots,
            seed=seed,
        ).counts
        for label, cal in calibration_circuits([0, 1], num_qubits=2).items()
    }
    confusion = confusion_matrix_from_calibration(calibration)
    mitigated = mitigate_counts(raw, confusion)
    result.rows.append(
        (scenario, "mitigated", _bell_error_from_distribution(mitigated))
    )

    # Assertion filtering: keep ancilla == 0 shots.
    filtered = counts.postselect({0: 0}).marginal([1, 2])
    result.rows.append(
        (scenario, "filtered", result_error_rate(filtered, BELL_KEYS))
    )

    # Both: filter, then mitigate the survivors.
    both = mitigate_counts(filtered, confusion)
    result.rows.append((scenario, "both", _bell_error_from_distribution(both)))


def run_mitigation_comparison(
    device: Optional[DeviceModel] = None,
    shots: int = 8192,
    seed: Optional[int] = 2020,
) -> MitigationComparisonResult:
    """Run the four techniques under full noise and gate-only noise."""
    device = device or ibmqx4()
    result = MitigationComparisonResult()
    _run_scenario(
        "full noise", device, device.noise_model(1.0), shots, seed, result
    )
    # Gate-only: strip readout errors so mitigation has nothing to fix.
    gate_only = device.noise_model(1.0)
    gate_only._readout_errors.clear()
    _run_scenario("gate noise only", device, gate_only, shots, seed, result)
    return result
