"""Experiment harness: one module per paper table/figure plus ablations.

Each experiment exposes a ``run(...)`` function returning a structured
result object with a ``to_rows()`` / ``summary()`` rendering that prints the
same rows the paper reports, next to the paper's published numbers.  The
benchmarks under ``benchmarks/`` call these and assert the qualitative
shape (who wins, by roughly what factor).

Index (DESIGN.md §4):

=======  ==========================================  =======================
Exp. id  Paper artifact                              Module
=======  ==========================================  =======================
E1       Fig. 6  (QUIRK classical assertion)         :mod:`repro.experiments.fig6`
E2       Fig. 7  (QUIRK superposition assertion)     :mod:`repro.experiments.fig7`
E3       Table 1 (IBM Q classical assertion)         :mod:`repro.experiments.table1`
E4       Table 2 (IBM Q entanglement assertion)      :mod:`repro.experiments.table2`
E5       §4.3    (IBM Q superposition assertion)     :mod:`repro.experiments.sec43`
A1       even/odd CNOT-count ablation (Fig. 4)       :mod:`repro.experiments.ablation_parity`
A2       assertion overhead scaling                  :mod:`repro.experiments.scaling`
A3       dynamic vs statistical baseline             :mod:`repro.experiments.baseline_comparison`
A4       noise sweep of the filtering benefit        :mod:`repro.experiments.sweeps`
=======  ==========================================  =======================
"""

from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.sec43 import Sec43Result, run_sec43
from repro.experiments.ablation_parity import ParityAblationResult, run_parity_ablation
from repro.experiments.ablation_phase import PhaseAblationResult, run_phase_ablation
from repro.experiments.scaling import ScalingResult, run_scaling
from repro.experiments.baseline_comparison import (
    BaselineComparisonResult,
    run_baseline_comparison,
)
from repro.experiments.sweeps import NoiseSweepResult, run_noise_sweep
from repro.experiments.mitigation_comparison import (
    MitigationComparisonResult,
    run_mitigation_comparison,
)
from repro.experiments.amplification import AmplificationResult, run_amplification

__all__ = [
    "AmplificationResult",
    "BaselineComparisonResult",
    "Fig6Result",
    "Fig7Result",
    "MitigationComparisonResult",
    "NoiseSweepResult",
    "ParityAblationResult",
    "PhaseAblationResult",
    "ScalingResult",
    "Sec43Result",
    "Table1Result",
    "Table2Result",
    "run_amplification",
    "run_baseline_comparison",
    "run_fig6",
    "run_fig7",
    "run_mitigation_comparison",
    "run_noise_sweep",
    "run_parity_ablation",
    "run_phase_ablation",
    "run_scaling",
    "run_sec43",
    "run_table1",
    "run_table2",
]
