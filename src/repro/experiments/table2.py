"""E4 / Table 2: entanglement assertion on the (modelled) IBM Q ibmqx4.

The paper entangles q1 and q2 into a Bell pair (H + CNOT) and asserts their
entanglement using q0 as the parity ancilla — the bow-tie's (1,0) and (2,0)
edges make both parity CNOTs native, which is why q0 is the ancilla.  Over
8192 shots the eight ``q0 q1 q2`` outcomes are tabulated; discarding the
assertion-error shots (q0 = 1) cuts the Bell error rate from 18.4 % to
12.6 %, a 31.5 % improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.filtering import error_rate_reduction
from repro.core.injector import AssertionInjector
from repro.devices.backend import NoisyDeviceBackend
from repro.devices.device import DeviceModel
from repro.devices.ibmqx4 import ibmqx4
from repro.results.counts import Counts
from repro.runtime.execute import execute
from repro.transpiler.layout import Layout

#: The paper's Table 2, keyed by the ``q0 q1 q2`` bitstring (q0 = ancilla).
PAPER_TABLE2: Dict[str, float] = {
    "000": 0.391,
    "001": 0.063,
    "010": 0.044,
    "011": 0.346,
    "100": 0.040,
    "101": 0.056,
    "110": 0.021,
    "111": 0.039,
}
PAPER_RAW_ERROR = 0.184
PAPER_FILTERED_ERROR = 0.126
PAPER_IMPROVEMENT = 0.315


@dataclass
class Table2Result:
    """Reproduction of Table 2.

    Attributes
    ----------
    distribution:
        Measured probability per ``q0 q1 q2`` outcome (q0 = ancilla).
    raw_error:
        P(q1 q2 not in {00, 11}) before filtering.
    filtered_error:
        Same error among shots with q0 = 0 (assertion passed).
    improvement:
        Relative error-rate reduction (paper: 31.5 %).
    shots:
        Shots sampled.
    counts:
        The raw sampled histogram (``q0 q1 q2`` keys).
    """

    distribution: Dict[str, float]
    raw_error: float
    filtered_error: float
    improvement: float
    shots: int
    counts: Counts

    def to_rows(self) -> List[Tuple[str, float, float]]:
        """Return ``(q0q1q2, measured, paper)`` rows in table order."""
        return [
            (key, self.distribution.get(key, 0.0), PAPER_TABLE2[key])
            for key in sorted(PAPER_TABLE2)
        ]

    def summary(self) -> str:
        """Render the paper-vs-measured table."""
        lines = [
            "E4 / Table 2 — entanglement assertion (Bell on q1,q2; ancilla q0) "
            "on ibmqx4 model",
            f"{'q0q1q2':>7} | {'measured':>9} | {'paper':>7}",
            "-" * 31,
        ]
        for key, measured, paper in self.to_rows():
            lines.append(f"{key:>7} | {measured:>8.1%} | {paper:>6.1%}")
        lines.append("-" * 31)
        lines.append(
            f"raw error     : {self.raw_error:>6.1%}  (paper {PAPER_RAW_ERROR:.1%})"
        )
        lines.append(
            f"filtered error: {self.filtered_error:>6.1%}  "
            f"(paper {PAPER_FILTERED_ERROR:.1%})"
        )
        lines.append(
            f"improvement   : {self.improvement:>6.1%}  (paper {PAPER_IMPROVEMENT:.1%})"
        )
        return "\n".join(lines)


def build_table2_circuit() -> Tuple[QuantumCircuit, AssertionInjector]:
    """Build the instrumented Table 2 circuit (virtual indices).

    Virtual qubits 0-1 hold the Bell pair; the injector allocates virtual
    qubit 2 as the parity ancilla.  Classical bit 0 is the assertion bit,
    bits 1-2 the Bell readout.
    """
    program = QuantumCircuit(2, name="table2_program")
    program.h(0)
    program.cx(0, 1)
    injector = AssertionInjector(program)
    injector.assert_entangled([0, 1], label="table2")
    injector.measure_program()
    return injector.circuit, injector


def table2_backend(
    device: Optional[DeviceModel] = None,
    noise_scale: float = 1.0,
) -> NoisyDeviceBackend:
    """Return the backend the Table 2 circuit executes on.

    Paper placement pinned: Bell pair on physical q1, q2; ancilla on q0.
    Exposed separately so batch drivers (the noise sweep) can submit
    Table 2 jobs through :func:`repro.runtime.execute`.
    """
    device = device or ibmqx4()
    layout = Layout([1, 2, 0], device.num_qubits)
    return NoisyDeviceBackend(device, noise_scale=noise_scale, layout=layout)


def analyze_table2(raw_counts: Counts, shots: int) -> Table2Result:
    """Derive the Table 2 statistics from raw execution counts.

    Counts keys are (clbit0 = ancilla q0, clbit1 = q1, clbit2 = q2), which
    is already the paper's ``q0 q1 q2`` order.
    """
    counts = Counts(dict(raw_counts))
    total = counts.shots
    keys = sorted(PAPER_TABLE2)
    distribution = {key: counts.get(key, 0) / total for key in keys}
    bell_keys = {"00", "11"}
    raw_error = sum(
        p for key, p in distribution.items() if key[1:] not in bell_keys
    )
    passing = {key: p for key, p in distribution.items() if key[0] == "0"}
    passing_mass = sum(passing.values())
    filtered_error = (
        sum(p for key, p in passing.items() if key[1:] not in bell_keys)
        / passing_mass
        if passing_mass
        else 0.0
    )
    return Table2Result(
        distribution=distribution,
        raw_error=raw_error,
        filtered_error=filtered_error,
        improvement=error_rate_reduction(raw_error, filtered_error),
        shots=shots,
        counts=counts,
    )


def run_table2(
    device: Optional[DeviceModel] = None,
    shots: int = 8192,
    seed: Optional[int] = 2020,
    noise_scale: float = 1.0,
) -> Table2Result:
    """Execute the Table 2 experiment on the noisy device model.

    Execution goes through :func:`repro.runtime.execute`, sharing the
    runtime's transpile cache with the sweeps and benchmarks.
    """
    circuit, _injector = build_table2_circuit()
    backend = table2_backend(device, noise_scale)
    result = execute(circuit, backend, shots=shots, seed=seed).result()
    return analyze_table2(result.counts, shots)
