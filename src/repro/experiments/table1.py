"""E3 / Table 1: classical assertion on the (modelled) IBM Q ibmqx4.

The paper prepares q1 = |0>, asserts ``q1 == |0>`` using q2 as the ancilla
(the connectivity forces that choice), runs 8192 shots and tabulates the
four ``q1 q2`` outcomes.  Discarding assertion-error shots cuts the q1
error rate from 3.5 % to 2.5 % — a 28.5 % reduction.

We rebuild the same circuit, pin the paper's physical layout (tested qubit
-> q1, ancilla -> q2), transpile to the device (the CX(q1 -> q2) needs
direction fixing, exactly as on the real machine) and execute on the
calibrated density-matrix backend.  Absolute percentages depend on the
calibration snapshot; the assertion-filtering *benefit* is the reproduced
shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.filtering import error_rate_reduction
from repro.core.injector import AssertionInjector
from repro.devices.backend import NoisyDeviceBackend
from repro.devices.device import DeviceModel
from repro.devices.ibmqx4 import ibmqx4
from repro.results.counts import Counts
from repro.runtime.execute import execute
from repro.transpiler.layout import Layout

#: The paper's Table 1, keyed by the ``q1 q2`` bitstring.
PAPER_TABLE1: Dict[str, float] = {
    "00": 0.938,
    "01": 0.027,
    "10": 0.024,
    "11": 0.011,
}
PAPER_RAW_ERROR = 0.035
PAPER_FILTERED_ERROR = 0.025
PAPER_REDUCTION = 0.285


@dataclass
class Table1Result:
    """Reproduction of Table 1.

    Attributes
    ----------
    distribution:
        Measured probability per ``q1 q2`` outcome.
    raw_error:
        P(q1 = 1) before filtering.
    filtered_error:
        P(q1 = 1 | q2 = 0) after discarding assertion errors.
    reduction:
        Relative error-rate reduction, the paper's headline 28.5 %.
    shots:
        Shots sampled.
    counts:
        The raw sampled histogram (``q1 q2`` keys).
    """

    distribution: Dict[str, float]
    raw_error: float
    filtered_error: float
    reduction: float
    shots: int
    counts: Counts

    def to_rows(self) -> List[Tuple[str, float, float]]:
        """Return ``(q1q2, measured, paper)`` rows in table order."""
        return [
            (key, self.distribution.get(key, 0.0), PAPER_TABLE1[key])
            for key in sorted(PAPER_TABLE1)
        ]

    def summary(self) -> str:
        """Render the paper-vs-measured table."""
        lines = [
            "E3 / Table 1 — classical assertion (q1 == |0>, ancilla q2) on ibmqx4 model",
            f"{'q1q2':>5} | {'measured':>9} | {'paper':>7}",
            "-" * 29,
        ]
        for key, measured, paper in self.to_rows():
            lines.append(f"{key:>5} | {measured:>8.1%} | {paper:>6.1%}")
        lines.append("-" * 29)
        lines.append(
            f"raw error     : {self.raw_error:>6.1%}  (paper {PAPER_RAW_ERROR:.1%})"
        )
        lines.append(
            f"filtered error: {self.filtered_error:>6.1%}  (paper {PAPER_FILTERED_ERROR:.1%})"
        )
        lines.append(
            f"reduction     : {self.reduction:>6.1%}  (paper {PAPER_REDUCTION:.1%})"
        )
        return "\n".join(lines)


def build_table1_circuit() -> Tuple[QuantumCircuit, AssertionInjector]:
    """Build the instrumented Table 1 circuit (virtual indices).

    Virtual qubit 0 is the qubit under test (prepared |0> by doing
    nothing); the injector allocates virtual qubit 1 as the ancilla.
    Classical bit 0 carries the assertion (q2), classical bit 1 the q1
    readout.
    """
    program = QuantumCircuit(1, name="table1_program")
    injector = AssertionInjector(program)
    injector.assert_classical(0, 0, label="table1")
    injector.measure_program()
    return injector.circuit, injector


def table1_backend(
    device: Optional[DeviceModel] = None,
    noise_scale: float = 1.0,
) -> NoisyDeviceBackend:
    """Return the backend the Table 1 circuit executes on.

    The paper's placement is pinned: tested qubit -> physical q1, ancilla ->
    q2.  Exposed separately so batch drivers (the noise sweep) can submit
    Table 1 jobs through :func:`repro.runtime.execute`.
    """
    device = device or ibmqx4()
    layout = Layout([1, 2], device.num_qubits)
    return NoisyDeviceBackend(device, noise_scale=noise_scale, layout=layout)


def analyze_table1(raw_counts: Counts, shots: int) -> Table1Result:
    """Derive the Table 1 statistics from raw execution counts.

    ``raw_counts`` keys are (clbit0 = ancilla/q2, clbit1 = q1); they are
    re-keyed to the paper's ``q1 q2`` order here.
    """
    requantified: Dict[str, int] = {}
    for key, value in raw_counts.items():
        requantified[key[1] + key[0]] = requantified.get(key[1] + key[0], 0) + value
    counts = Counts(requantified)
    total = counts.shots
    distribution = {key: counts.get(key, 0) / total for key in ("00", "01", "10", "11")}
    raw_error = distribution["10"] + distribution["11"]
    kept = distribution["00"] + distribution["10"]
    filtered_error = distribution["10"] / kept if kept else 0.0
    return Table1Result(
        distribution=distribution,
        raw_error=raw_error,
        filtered_error=filtered_error,
        reduction=error_rate_reduction(raw_error, filtered_error),
        shots=shots,
        counts=counts,
    )


def run_table1(
    device: Optional[DeviceModel] = None,
    shots: int = 8192,
    seed: Optional[int] = 2020,
    noise_scale: float = 1.0,
) -> Table1Result:
    """Execute the Table 1 experiment on the noisy device model.

    Execution goes through :func:`repro.runtime.execute`, so repeated runs
    (sweeps, benchmarks) reuse the cached transpilation of the pinned
    layout.

    Parameters
    ----------
    device:
        Device model (defaults to :func:`~repro.devices.ibmqx4.ibmqx4`).
    shots:
        Shots to sample (paper used 8192).
    seed:
        Sampling seed applied to the multinomial draw.
    noise_scale:
        Error-rate multiplier (1.0 = nominal calibration).
    """
    circuit, _injector = build_table1_circuit()
    backend = table1_backend(device, noise_scale)
    result = execute(circuit, backend, shots=shots, seed=seed).result()
    return analyze_table1(result.counts, shots)
