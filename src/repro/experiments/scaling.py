"""A2: assertion overhead and scaling on the stabilizer engine.

All three assertion circuits are Clifford, so the CHP tableau engine runs
the full instrumented pipeline at sizes the statevector engine cannot touch.
For GHZ(n), n up to hundreds, we record the instrumentation overhead (extra
qubits / gates / depth) of each entanglement-assertion mode and verify the
assertion still passes deterministically at scale.

All (size, mode) configurations are submitted as one batch through
:func:`repro.runtime.execute`; per-row timings come from each job's
measured engine wall-clock.  The batch runs serially by default: the
tableau engine is GIL-bound pure Python, so concurrent jobs would starve
each other and inflate every row's measured time.  Pass ``max_workers``
explicitly to trade timing fidelity for throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.circuits.library import ghz_state
from repro.core.filtering import evaluate_assertions
from repro.core.injector import AssertionInjector
from repro.runtime.execute import execute
from repro.runtime.provider import get_backend


@dataclass
class ScalingResult:
    """Outcome of the scaling study.

    Attributes
    ----------
    rows:
        ``(n, mode, extra_qubits, extra_cx, pass_rate, seconds)`` per GHZ
        size and assertion mode.
    shots:
        Shots per configuration.
    """

    rows: List[Tuple[int, str, int, int, float, float]] = field(default_factory=list)
    shots: int = 0

    def summary(self) -> str:
        """Render the scaling table."""
        lines = [
            "A2 — assertion overhead & scaling (stabilizer engine, ideal)",
            f"{'n':>4} | {'mode':>8} | {'anc':>4} | {'+cx':>4} | "
            f"{'pass rate':>9} | {'sec':>7}",
            "-" * 50,
        ]
        for n, mode, ancillas, cx, pass_rate, seconds in self.rows:
            lines.append(
                f"{n:>4} | {mode:>8} | {ancillas:>4} | {cx:>4} | "
                f"{pass_rate:>9.4f} | {seconds:>7.3f}"
            )
        return "\n".join(lines)


def run_scaling(
    sizes: Tuple[int, ...] = (2, 4, 8, 16, 32, 64),
    shots: int = 256,
    seed: Optional[int] = 5,
    max_workers: Optional[int] = 1,
    executor: Optional[str] = None,
) -> ScalingResult:
    """Instrument GHZ(n) with each entanglement-assertion mode and run it.

    ``max_workers`` defaults to 1 so per-row wall-clock timings measure one
    engine run at a time (see the module docstring); counts are
    seed-deterministic at any worker count.  The tableau engine is
    GIL-bound pure Python, so when throughput matters more than per-row
    timing fidelity, ``executor="process"`` with a wider ``max_workers``
    is the fan-out that actually helps.
    """
    result = ScalingResult(shots=shots)
    configs = []  # (n, mode, injector)
    for n in sizes:
        for mode in ("pairwise", "single"):
            injector = AssertionInjector(ghz_state(n))
            injector.assert_entangled(list(range(n)), mode=mode)
            injector.measure_program()
            configs.append((n, mode, injector))
    # dedupe=False: the study measures per-configuration engine time, so
    # coinciding configurations (GHZ(2) pairwise == single) must still run.
    jobs = execute(
        [injector.circuit for _n, _mode, injector in configs],
        get_backend("stabilizer"),
        shots=shots,
        seed=seed,
        max_workers=max_workers,
        executor=executor,
        dedupe=False,
    )
    for (n, mode, injector), job in zip(configs, jobs):
        run = job.result()
        report = evaluate_assertions(run.counts, injector.records)
        overhead = injector.overhead()
        result.rows.append(
            (
                n,
                mode,
                overhead["extra_qubits"],
                overhead["extra_cx"],
                report.pass_rate,
                job.time_taken,
            )
        )
    return result
