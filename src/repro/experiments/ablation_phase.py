"""A5b: phase-error detection ablation (extension study).

The paper's parity assertion checks Z-type stabilizers only; under *phase*
noise (Z flips), a GHZ state drifts to ``|0..0> - |1..1>`` without tripping
it.  This experiment injects phase-flip noise of varying strength into a
GHZ preparation and compares three detectors:

* the paper's pairwise Z-parity assertions,
* the extension's single X-parity assertion,
* the combined full GHZ stabilizer check.

The shape to observe: the Z-only detection probability stays ~0 while the
X-parity's tracks the injected error rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.circuits.library import ghz_state
from repro.core.entanglement import append_entanglement_assertion
from repro.core.extensions import append_phase_parity_assertion
from repro.noise.channels import phase_flip
from repro.noise.model import NoiseModel
from repro.simulators.density_matrix import DensityMatrixSimulator


@dataclass
class PhaseAblationResult:
    """Outcome of the phase-noise detection ablation.

    Attributes
    ----------
    rows:
        ``(noise_probability, detector, detection_probability)``.
    ghz_size:
        Number of GHZ qubits used.
    """

    rows: List[Tuple[float, str, float]] = field(default_factory=list)
    ghz_size: int = 3

    def detection(self, noise: float, detector: str) -> float:
        """Return the detection probability for one configuration."""
        for p, name, rate in self.rows:
            if abs(p - noise) < 1e-12 and name == detector:
                return rate
        raise KeyError((noise, detector))

    def summary(self) -> str:
        """Render the ablation table."""
        lines = [
            f"A5b — phase-error detection, GHZ({self.ghz_size}) under Z-flip noise",
            f"{'p(Z flip)':>9} | {'detector':>9} | {'P(detect)':>9}",
            "-" * 35,
        ]
        for p, name, rate in self.rows:
            lines.append(f"{p:>9.3f} | {name:>9} | {rate:>9.4f}")
        lines.append("")
        lines.append("paper's Z-parity checks are blind to phase errors; the")
        lines.append("X-parity extension (and full check) see them.")
        return "\n".join(lines)


def _detection_probability(circuit, noise_model, num_assert_bits) -> float:
    """Return P(at least one assertion clbit != 0) under the noise model."""
    sim = DensityMatrixSimulator(noise_model=noise_model)
    probabilities = sim.run(circuit, shots=1).probabilities
    return sum(p for key, p in probabilities.items() if "1" in key)


def run_phase_ablation(
    noise_levels: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2),
    ghz_size: int = 3,
    seed: Optional[int] = None,
) -> PhaseAblationResult:
    """Run the three detectors under each phase-noise level.

    Noise is attached to the GHZ preparation's CX gates (1-qubit Z-flip on
    each operand), modelling dephasing during entangling operations.
    """
    result = PhaseAblationResult(ghz_size=ghz_size)
    for p in noise_levels:
        model = NoiseModel(f"zflip({p})")
        if p > 0:
            model.add_all_qubit_gate_error(["cx"], phase_flip(p))
        # Build fresh instrumented circuits per detector; noise applies to
        # *all* CXs including the assertions' own parity CNOTs — the
        # realistic setting (Z noise on a CX commutes onto the data qubits,
        # so the parity ancillas themselves stay reliable).
        z_only = ghz_state(ghz_size)
        append_entanglement_assertion(z_only, list(range(ghz_size)), mode="pairwise")
        x_only = ghz_state(ghz_size)
        append_phase_parity_assertion(x_only, list(range(ghz_size)))
        combined = ghz_state(ghz_size)
        append_entanglement_assertion(combined, list(range(ghz_size)), mode="pairwise")
        append_phase_parity_assertion(combined, list(range(ghz_size)))
        result.rows.append(
            (p, "z-pairs", _detection_probability(z_only, model, ghz_size - 1))
        )
        result.rows.append((p, "x-parity", _detection_probability(x_only, model, 1)))
        result.rows.append((p, "full", _detection_probability(combined, model, ghz_size)))
    return result
