"""A7: does stacking assertions inside one run amplify detection?

The superposition assertion detects a classical-state bug with probability
1/2 per check (§3.3 / Fig. 7), so one might hope k stacked checks detect
with ``1 - 2^{-k}``.  This experiment shows the answer is subtler — and
that the subtlety is exactly the paper's **auto-correction** property:

* **one-shot bug** (the qubit was left |0> once, before the checks): the
  first check either fires (probability 1/2) or *projects the qubit into
  exactly |+>*; every later check then passes deterministically.  The
  detection probability saturates at 0.5 no matter how many checks are
  stacked — within one run, repetition buys nothing, because the assertion
  repairs the state it certifies.

* **recurring bug** (a faulty stage re-prepares the classical state before
  each check, modelling a persistent bug in a loop body): every check sees
  a fresh classical state and fires independently, so detection follows
  the ideal ``1 - 2^{-k}`` amplification curve.

Amplification across *independent runs* always works (each run is a fresh
coin); the statistical baseline, by contrast, pays a dedicated halting
batch per check in either setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.injector import AssertionInjector
from repro.simulators.statevector import StatevectorSimulator


@dataclass
class AmplificationResult:
    """Outcome of the repeated-assertion study.

    Attributes
    ----------
    rows:
        ``(k, scenario, detection_probability, ideal 1 - 2^-k)`` where
        scenario is ``"one-shot"`` or ``"recurring"``.
    """

    rows: List[Tuple[int, str, float, float]] = field(default_factory=list)

    def detection(self, k: int, scenario: str) -> float:
        """Return the measured detection probability for (k, scenario)."""
        for kk, name, measured, _ideal in self.rows:
            if kk == k and name == scenario:
                return measured
        raise KeyError((k, scenario))

    def summary(self) -> str:
        """Render both amplification curves."""
        lines = [
            "A7 — stacked superposition assertions vs a classical-state bug",
            f"{'k':>3} | {'scenario':>9} | {'P(detect)':>9} | {'1 - 2^-k':>9}",
            "-" * 42,
        ]
        for k, scenario, measured, ideal in self.rows:
            lines.append(
                f"{k:>3} | {scenario:>9} | {measured:>9.4f} | {ideal:>9.4f}"
            )
        lines.append("")
        lines.append("one-shot bug: saturates at 0.5 — the paper's auto-")
        lines.append("correction repairs survivors into exactly |+>, so later")
        lines.append("checks are blind.  recurring bug: ideal amplification.")
        return "\n".join(lines)


def _detection_probability(circuit: QuantumCircuit, k: int) -> float:
    probabilities = StatevectorSimulator().exact_probabilities(circuit)
    return 1.0 - probabilities.get("0" * k, 0.0)


def run_amplification(max_k: int = 6) -> AmplificationResult:
    """Measure both detection curves for k = 1..max_k (exact, no sampling)."""
    result = AmplificationResult()
    for k in range(1, max_k + 1):
        ideal = 1.0 - 2.0 ** (-k)

        # One-shot bug: qubit left |0> once; k checks follow back-to-back.
        one_shot = AssertionInjector(QuantumCircuit(1, name="bug_once"))
        for _ in range(k):
            one_shot.assert_superposition(0)
        result.rows.append(
            (k, "one-shot", _detection_probability(one_shot.circuit, k), ideal)
        )

        # Recurring bug: a faulty stage resets the qubit to |0> before each
        # check (reset models the buggy re-preparation in a loop body).
        recurring = AssertionInjector(QuantumCircuit(1, name="bug_recurring"))
        stage = QuantumCircuit(1)
        stage.reset(0)  # the bug: should have been reset + H
        for i in range(k):
            if i > 0:
                recurring.apply(stage)
            recurring.assert_superposition(0)
        result.rows.append(
            (k, "recurring", _detection_probability(recurring.circuit, k), ideal)
        )
    return result
