"""Circuit lowering for device execution.

The pipeline mirrors what the paper relied on Qiskit for: decompose to the
device basis ({u1, u2, u3, cx} on ibmqx4), choose a layout that respects the
coupling map (the constraint that forced q2 as the Table 1 ancilla), insert
SWAPs for distant interactions, fix CX direction on directed edges, and
clean up with peephole optimisation.

Lowering is deterministic for a given (circuit, device, layout), so the
runtime layer memoises it: :class:`repro.runtime.cache.TranspileCache` keys
:func:`transpile_for_device` output by ``QuantumCircuit.fingerprint()`` and
the device backends call through it — sweeps re-running the same circuit
pay the lowering cost once.
"""

from repro.transpiler.decompose import decompose_to_basis
from repro.transpiler.layout import Layout, select_layout, apply_layout
from repro.transpiler.routing import route_circuit
from repro.transpiler.direction import fix_cx_directions
from repro.transpiler.optimize import merge_single_qubit_runs, cancel_adjacent_cx
from repro.transpiler.passes import PassManager, TranspilerPass, transpile_for_device

__all__ = [
    "Layout",
    "PassManager",
    "TranspilerPass",
    "apply_layout",
    "cancel_adjacent_cx",
    "decompose_to_basis",
    "fix_cx_directions",
    "merge_single_qubit_runs",
    "route_circuit",
    "select_layout",
    "transpile_for_device",
]
