"""Peephole optimisation passes.

Two cleanups that matter on NISQ devices (every removed gate is removed
noise): merging runs of adjacent single-qubit gates into one ``u`` gate, and
cancelling back-to-back identical CXs (the entanglement-assertion circuit's
two parity CNOTs cancel exactly when nothing sits between them — the
transpiler must *not* be allowed to do that across the ancilla measurement,
which the wire-DAG structure guarantees).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, get_gate, u3_angles_from_unitary
from repro.circuits.instructions import Instruction
from repro.exceptions import TranspilerError


def merge_single_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Merge maximal runs of unconditioned 1-qubit gates per wire.

    Each run is multiplied into one matrix and re-emitted as the cheapest of
    u1/u2/u3 (identity runs are dropped entirely).
    """
    out = circuit.copy()
    out.data = []
    pending: dict = {}  # qubit -> accumulated 2x2 matrix

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        instruction = _u_instruction_from_matrix(matrix, qubit)
        if instruction is not None:
            out.data.append(instruction)

    def flush_all() -> None:
        for qubit in sorted(pending):
            matrix = pending[qubit]
            instruction = _u_instruction_from_matrix(matrix, qubit)
            if instruction is not None:
                out.data.append(instruction)
        pending.clear()

    for inst in circuit.data:
        is_mergeable = (
            isinstance(inst.operation, Gate)
            and inst.operation.num_qubits == 1
            and inst.condition is None
        )
        if is_mergeable:
            qubit = inst.qubits[0]
            accumulated = pending.get(qubit, np.eye(2, dtype=complex))
            pending[qubit] = inst.operation.matrix @ accumulated
            continue
        if inst.name == "barrier":
            for qubit in inst.qubits:
                flush(qubit)
            out.data.append(inst)
            continue
        for qubit in inst.qubits:
            flush(qubit)
        if inst.condition is not None:
            # Conditioned gates depend on classical state: flush everything
            # that could race with the conditioning bit's writers.
            flush_all()
        out.data.append(inst)
    flush_all()
    return out


def _u_instruction_from_matrix(matrix: np.ndarray, qubit: int) -> Optional[Instruction]:
    """Convert a 2x2 unitary into a u1/u2/u3 instruction (None if identity)."""
    theta, phi, lam, _ = u3_angles_from_unitary(matrix)
    two_pi = 2.0 * math.pi
    theta_mod = theta % two_pi
    phase_mod = (phi + lam) % two_pi
    is_identity = (
        math.isclose(theta_mod, 0.0, abs_tol=1e-10)
        or math.isclose(theta_mod, two_pi, abs_tol=1e-10)
    ) and (
        math.isclose(phase_mod, 0.0, abs_tol=1e-10)
        or math.isclose(phase_mod, two_pi, abs_tol=1e-10)
    )
    if is_identity:
        return None
    if math.isclose(theta_mod, 0.0, abs_tol=1e-10) or math.isclose(
        theta_mod, two_pi, abs_tol=1e-10
    ):
        return Instruction(get_gate("u1", (phase_mod,)), (qubit,))
    if math.isclose(theta_mod, math.pi / 2.0, abs_tol=1e-10):
        return Instruction(get_gate("u2", (phi % two_pi, lam % two_pi)), (qubit,))
    return Instruction(get_gate("u3", (theta, phi, lam)), (qubit,))


def cancel_adjacent_cx(circuit: QuantumCircuit) -> QuantumCircuit:
    """Cancel immediately-adjacent identical CX pairs.

    Two CXs cancel only if they share control and target and no other
    operation touches either wire in between (barriers block cancellation,
    which is how assertion circuits protect their parity CNOTs when the
    ancilla measurement must stay between them).
    """
    data = list(circuit.data)
    changed = True
    while changed:
        changed = False
        result: List[Instruction] = []
        index = 0
        while index < len(data):
            inst = data[index]
            if inst.name == "cx" and inst.condition is None:
                partner = _find_cancelling_partner(data, index)
                if partner is not None:
                    del data[partner]
                    del data[index]
                    changed = True
                    continue
            result.append(inst)
            index += 1
        if changed:
            data = [inst for inst in data]
        else:
            data = result
    out = circuit.copy()
    out.data = data
    return out


def _find_cancelling_partner(data: List[Instruction], index: int) -> Optional[int]:
    """Find a later identical CX with clean wires in between."""
    inst = data[index]
    wires = set(inst.qubits)
    for j in range(index + 1, len(data)):
        other = data[j]
        other_wires = set(other.qubits)
        if other.name == "cx" and other.condition is None and other.qubits == inst.qubits:
            return j
        if other_wires & wires:
            return None
        if other.name == "barrier" and other_wires & wires:
            return None
    return None
