"""Pass manager and the standard device pipeline.

:func:`transpile_for_device` runs the full lowering used by
:class:`~repro.devices.backend.NoisyDeviceBackend`:

1. decompose to the device basis,
2. select a layout (interaction-greedy, error-aware),
3. apply it and route with SWAPs,
4. re-decompose (routing introduces SWAPs) and fix CX directions,
5. peephole-optimise (merge 1q runs, cancel CX pairs).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.devices.device import DeviceModel
from repro.exceptions import TranspilerError
from repro.transpiler.decompose import decompose_to_basis
from repro.transpiler.direction import fix_cx_directions
from repro.transpiler.layout import Layout, apply_layout, select_layout
from repro.transpiler.optimize import cancel_adjacent_cx, merge_single_qubit_runs
from repro.transpiler.routing import route_circuit


class TranspilerPass:
    """A named circuit-to-circuit transformation."""

    def __init__(
        self, name: str, transform: Callable[[QuantumCircuit], QuantumCircuit]
    ) -> None:
        self.name = name
        self._transform = transform

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Apply the pass."""
        return self._transform(circuit)

    def __repr__(self) -> str:
        return f"TranspilerPass({self.name!r})"


class PassManager:
    """Runs a sequence of passes, recording per-pass statistics.

    Attributes
    ----------
    history:
        After :meth:`run`, a list of ``(pass name, ops-after, depth-after)``
        triples — handy for the transpiler benchmarks.
    """

    def __init__(self, passes: Sequence[TranspilerPass]) -> None:
        self.passes: List[TranspilerPass] = list(passes)
        self.history: List[Tuple[str, int, int]] = []

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Apply all passes in order."""
        self.history = []
        current = circuit
        for pass_ in self.passes:
            current = pass_.run(current)
            self.history.append((pass_.name, current.size(), current.depth()))
        return current

    def __repr__(self) -> str:
        return f"PassManager({[p.name for p in self.passes]})"


def device_pass_manager(
    device: DeviceModel,
    layout: Optional[Layout] = None,
    optimize: bool = True,
) -> PassManager:
    """Build the standard pipeline for ``device``.

    Parameters
    ----------
    layout:
        Fix the virtual->physical placement instead of selecting one (the
        Table 1/2 reproductions pin the paper's published qubit choices).
    optimize:
        Disable to inspect the raw lowering.
    """
    chosen: dict = {"layout": layout}

    def select_and_apply(circuit: QuantumCircuit) -> QuantumCircuit:
        selected = chosen["layout"] or select_layout(circuit, device)
        chosen["layout"] = selected
        return apply_layout(circuit, selected)

    def route(circuit: QuantumCircuit) -> QuantumCircuit:
        routed, final_layout = route_circuit(
            circuit, device.coupling_map, chosen["layout"]
        )
        chosen["layout"] = final_layout
        return routed

    passes = [
        TranspilerPass("decompose", lambda c: decompose_to_basis(c, device.basis_gates)),
        TranspilerPass("layout", select_and_apply),
        TranspilerPass("route", route),
        TranspilerPass(
            "redecompose", lambda c: decompose_to_basis(c, device.basis_gates)
        ),
        TranspilerPass("direction", lambda c: fix_cx_directions(c, device.coupling_map)),
    ]
    if optimize:
        passes.append(TranspilerPass("cancel_cx", cancel_adjacent_cx))
        passes.append(TranspilerPass("merge_1q", merge_single_qubit_runs))
    return PassManager(passes)


def transpile_for_device(
    circuit: QuantumCircuit,
    device: DeviceModel,
    layout: Optional[Layout] = None,
    optimize: bool = True,
) -> QuantumCircuit:
    """Lower ``circuit`` to ``device``'s basis, connectivity and directions."""
    if circuit.num_qubits > device.num_qubits:
        raise TranspilerError(
            f"circuit needs {circuit.num_qubits} qubits but {device.name} "
            f"has {device.num_qubits}"
        )
    manager = device_pass_manager(device, layout=layout, optimize=optimize)
    return manager.run(circuit)
