"""SWAP routing: make every two-qubit gate act on a connected pair.

A simple, deterministic router: when a CX's operands are not adjacent on the
coupling map, SWAP one operand along the shortest path until they meet.
Inserted SWAPs permute which physical wire carries which logical state, so
the router keeps a running frame permutation and rewrites **every**
subsequent instruction (gates, measurements, conditions) through it — a
measurement of "qubit 3" in the input always measures the state that qubit 3
carried originally.

Quadratic in the worst case but exact and predictable — the assertion
circuits it routes are small (the paper's hardware circuits fit ibmqx4
directly once the ancilla is placed well).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import get_gate
from repro.circuits.instructions import Instruction
from repro.devices.topology import CouplingMap
from repro.exceptions import TranspilerError
from repro.transpiler.layout import Layout


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    layout: Layout,
) -> Tuple[QuantumCircuit, Layout]:
    """Insert SWAPs so all 2-qubit gates act on coupled pairs.

    Parameters
    ----------
    circuit:
        A circuit already expressed on **physical** qubit indices (i.e.
        after :func:`~repro.transpiler.layout.apply_layout`).
    coupling:
        Device connectivity.
    layout:
        The layout used to produce ``circuit``; returned updated so callers
        can trace where each virtual qubit ended up.

    Returns
    -------
    (routed_circuit, final_layout)
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise TranspilerError(
            f"circuit has {circuit.num_qubits} qubits, device has "
            f"{coupling.num_qubits}"
        )
    out = circuit.copy()
    out.data = []
    current = layout
    # where[frame_index] = physical wire currently carrying that frame's
    # state; frame indices are the qubit numbers as written in `circuit`.
    where: List[int] = list(range(coupling.num_qubits))

    def do_swap(wire_a: int, wire_b: int) -> None:
        nonlocal current
        out.data.append(Instruction(get_gate("swap"), (wire_a, wire_b)))
        current = current.swapped(wire_a, wire_b)
        for frame, wire in enumerate(where):
            if wire == wire_a:
                where[frame] = wire_b
            elif wire == wire_b:
                where[frame] = wire_a

    for inst in circuit.data:
        qubits = tuple(where[q] for q in inst.qubits)
        if inst.operation.is_gate and len(qubits) == 2:
            a, b = qubits
            if not coupling.connected(a, b):
                path = coupling.shortest_path(a, b)
                for hop in path[1:-1]:
                    do_swap(a, hop)
                    a = hop
            out.data.append(
                Instruction(inst.operation, (a, b), inst.clbits, inst.condition)
            )
            continue
        if inst.operation.is_gate and len(qubits) > 2:
            raise TranspilerError(
                f"route after decomposition: {inst.name!r} has "
                f"{len(qubits)} operands"
            )
        out.data.append(
            Instruction(inst.operation, qubits, inst.clbits, inst.condition)
        )
    return out, current


def count_added_swaps(original: QuantumCircuit, routed: QuantumCircuit) -> int:
    """Return how many SWAPs routing added (reporting helper)."""

    def swaps(circ: QuantumCircuit) -> int:
        return sum(1 for inst in circ.data if inst.name == "swap")

    return swaps(routed) - swaps(original)
