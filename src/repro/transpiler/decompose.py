"""Decompose circuits into a native basis gate set.

Every standard gate is rewritten into {u1, u2, u3, cx} (the ibmqx4 basis) or
any basis containing those gates' names.  Single-qubit gates funnel through
the ZYZ/u3 decomposition; two-qubit gates use textbook CX constructions;
Toffoli uses the standard 6-CX network.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Set

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, UnitaryGate, get_gate, u3_angles_from_unitary
from repro.circuits.instructions import Instruction
from repro.exceptions import TranspilerError

#: Gates the decomposer can always express.
_CORE_BASIS = {"u1", "u2", "u3", "cx"}


def decompose_to_basis(
    circuit: QuantumCircuit, basis_gates: Sequence[str]
) -> QuantumCircuit:
    """Return an equivalent circuit using only ``basis_gates``.

    ``measure``, ``reset`` and ``barrier`` pass through unchanged.

    Raises
    ------
    TranspilerError
        If the basis does not contain {u1, u2, u3, cx} (or the circuit uses
        a multi-qubit gate with no known CX construction).
    """
    basis: Set[str] = {g.lower() for g in basis_gates}
    if not _CORE_BASIS <= basis:
        missing = _CORE_BASIS - basis
        raise TranspilerError(
            f"decomposer requires the core basis {_CORE_BASIS}; missing {missing}"
        )
    out = circuit.copy()
    out.data = []
    for inst in circuit.data:
        if inst.name in {"measure", "reset", "barrier"}:
            out.data.append(inst)
            continue
        if inst.name in basis and not isinstance(inst.operation, UnitaryGate):
            out.data.append(inst)
            continue
        for new_inst in _decompose_instruction(inst, basis):
            out.data.append(new_inst)
    return out


def _decompose_instruction(inst: Instruction, basis: Set[str]) -> List[Instruction]:
    op = inst.operation
    if not isinstance(op, Gate):
        raise TranspilerError(f"cannot decompose non-gate {op.name!r}")
    if op.num_qubits == 1:
        return _one_qubit(inst)
    if op.num_qubits == 2:
        return _two_qubit(inst, basis)
    if op.num_qubits == 3:
        return _three_qubit(inst, basis)
    raise TranspilerError(
        f"no decomposition for {op.num_qubits}-qubit gate {op.name!r}"
    )


def _u(name_params, qubit: int, condition=None) -> Instruction:
    name, params = name_params
    return Instruction(get_gate(name, params), (qubit,), (), condition)


def _cx(control: int, target: int, condition=None) -> Instruction:
    return Instruction(get_gate("cx"), (control, target), (), condition)


def _one_qubit(inst: Instruction) -> List[Instruction]:
    """Rewrite a 1-qubit gate as a single u1/u2/u3."""
    op = inst.operation
    qubit = inst.qubits[0]
    theta, phi, lam, _ = u3_angles_from_unitary(op.matrix)
    return [
        _u(_canonical_u(theta, phi, lam), qubit, inst.condition)
    ]


def _canonical_u(theta: float, phi: float, lam: float):
    """Pick the cheapest of u1/u2/u3 for the given Euler angles."""
    two_pi = 2.0 * math.pi
    theta_mod = theta % two_pi
    if math.isclose(theta_mod, 0.0, abs_tol=1e-10) or math.isclose(
        theta_mod, two_pi, abs_tol=1e-10
    ):
        return ("u1", ((phi + lam) % two_pi,))
    if math.isclose(theta_mod, math.pi / 2.0, abs_tol=1e-10):
        return ("u2", (phi % two_pi, lam % two_pi))
    return ("u3", (theta, phi, lam))


def _two_qubit(inst: Instruction, basis: Set[str]) -> List[Instruction]:
    op = inst.operation
    a, b = inst.qubits
    cond = inst.condition
    name = op.name
    if name == "cx":
        return [inst]
    if name == "cz":
        return [
            _u(("u2", (0.0, math.pi)), b, cond),  # H
            _cx(a, b, cond),
            _u(("u2", (0.0, math.pi)), b, cond),  # H
        ]
    if name == "cy":
        return [
            _u(("u1", (-math.pi / 2.0,)), b, cond),  # Sdg
            _cx(a, b, cond),
            _u(("u1", (math.pi / 2.0,)), b, cond),  # S
        ]
    if name == "ch":
        # CH = (I (x) Ry(pi/4)) CX (I (x) Ry(-pi/4)) up to phase on |1x>:
        # use the exact construction S,H,T / CX / Tdg,H,Sdg on the target.
        return [
            _u(("u1", (math.pi / 2.0,)), b, cond),                  # S
            _u(("u2", (0.0, math.pi)), b, cond),                    # H
            _u(("u1", (math.pi / 4.0,)), b, cond),                  # T
            _cx(a, b, cond),
            _u(("u1", (-math.pi / 4.0,)), b, cond),                 # Tdg
            _u(("u2", (0.0, math.pi)), b, cond),                    # H
            _u(("u1", (-math.pi / 2.0,)), b, cond),                 # Sdg
        ]
    if name == "swap":
        return [_cx(a, b, cond), _cx(b, a, cond), _cx(a, b, cond)]
    if name == "iswap":
        # iSWAP = (S (x) S) . (H (x) I) . CX(a,b) . CX(b,a) . (I (x) H)
        return [
            _u(("u1", (math.pi / 2.0,)), a, cond),  # S
            _u(("u1", (math.pi / 2.0,)), b, cond),  # S
            _u(("u2", (0.0, math.pi)), a, cond),    # H
            _cx(a, b, cond),
            _cx(b, a, cond),
            _u(("u2", (0.0, math.pi)), b, cond),    # H
        ]
    if name == "cp":
        (lam,) = op.params
        return [
            _u(("u1", (lam / 2.0,)), a, cond),
            _cx(a, b, cond),
            _u(("u1", (-lam / 2.0,)), b, cond),
            _cx(a, b, cond),
            _u(("u1", (lam / 2.0,)), b, cond),
        ]
    if name == "crz":
        (theta,) = op.params
        return [
            _u(("u1", (theta / 2.0,)), b, cond),
            _cx(a, b, cond),
            _u(("u1", (-theta / 2.0,)), b, cond),
            _cx(a, b, cond),
        ]
    if name == "crx":
        (theta,) = op.params
        # CRX = H_b . CRZ(theta) . H_b
        return [
            _u(("u2", (0.0, math.pi)), b, cond),
            *_two_qubit(
                Instruction(get_gate("crz", (theta,)), (a, b), (), cond), basis
            ),
            _u(("u2", (0.0, math.pi)), b, cond),
        ]
    if name == "cry":
        (theta,) = op.params
        return [
            _u(("u3", (theta / 2.0, 0.0, 0.0)), b, cond),   # Ry(theta/2)
            _cx(a, b, cond),
            _u(("u3", (-theta / 2.0, 0.0, 0.0)), b, cond),  # Ry(-theta/2)
            _cx(a, b, cond),
        ]
    if name == "cu3":
        theta, phi, lam = op.params
        return [
            _u(("u1", ((lam + phi) / 2.0,)), a, cond),
            _u(("u1", ((lam - phi) / 2.0,)), b, cond),
            _cx(a, b, cond),
            _u(("u3", (-theta / 2.0, 0.0, -(phi + lam) / 2.0)), b, cond),
            _cx(a, b, cond),
            _u(("u3", (theta / 2.0, phi, 0.0)), b, cond),
        ]
    if name == "rzz":
        (theta,) = op.params
        return [
            _cx(a, b, cond),
            _u(("u1", (theta,)), b, cond),
            _cx(a, b, cond),
        ]
    if name == "rxx":
        (theta,) = op.params
        # RXX = (H (x) H) RZZ(theta) (H (x) H)
        h_a = _u(("u2", (0.0, math.pi)), a, cond)
        h_b = _u(("u2", (0.0, math.pi)), b, cond)
        return [
            h_a,
            h_b,
            _cx(a, b, cond),
            _u(("u1", (theta,)), b, cond),
            _cx(a, b, cond),
            _u(("u2", (0.0, math.pi)), a, cond),
            _u(("u2", (0.0, math.pi)), b, cond),
        ]
    if isinstance(op, UnitaryGate):
        raise TranspilerError(
            "generic 2-qubit unitary synthesis is not implemented; express "
            f"{op.name!r} with standard gates"
        )
    raise TranspilerError(f"no decomposition rule for 2-qubit gate {name!r}")


def _three_qubit(inst: Instruction, basis: Set[str]) -> List[Instruction]:
    op = inst.operation
    cond = inst.condition
    if op.name == "ccx":
        c1, c2, t = inst.qubits
        h = ("u2", (0.0, math.pi))
        t_gate = ("u1", (math.pi / 4.0,))
        tdg = ("u1", (-math.pi / 4.0,))
        return [
            _u(h, t, cond),
            _cx(c2, t, cond),
            _u(tdg, t, cond),
            _cx(c1, t, cond),
            _u(t_gate, t, cond),
            _cx(c2, t, cond),
            _u(tdg, t, cond),
            _cx(c1, t, cond),
            _u(t_gate, c2, cond),
            _u(t_gate, t, cond),
            _u(h, t, cond),
            _cx(c1, c2, cond),
            _u(t_gate, c1, cond),
            _u(tdg, c2, cond),
            _cx(c1, c2, cond),
        ]
    if op.name == "cswap":
        c, a, b = inst.qubits
        # CSWAP = CX(b,a) . CCX(c,a,b) . CX(b,a)
        ccx = Instruction(get_gate("ccx"), (c, a, b), (), cond)
        return [_cx(b, a, cond), *_three_qubit(ccx, basis), _cx(b, a, cond)]
    raise TranspilerError(f"no decomposition rule for 3-qubit gate {op.name!r}")
