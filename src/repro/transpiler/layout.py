"""Layout selection: mapping virtual circuit qubits to physical qubits.

The greedy selector places heavily-interacting virtual pairs on adjacent
physical qubits, preferring low-error CX edges.  On ibmqx4 this reproduces
the paper's manual choice of q2 as the assertion ancilla for Table 1 — q2 is
the best-connected qubit of the bow-tie.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.devices.device import DeviceModel
from repro.exceptions import TranspilerError


class Layout:
    """A bijection between virtual qubits and physical qubits.

    Parameters
    ----------
    virtual_to_physical:
        ``virtual_to_physical[v]`` is the physical qubit hosting virtual
        qubit ``v``.  Unused physical qubits simply don't appear.
    num_physical:
        Size of the physical device.
    """

    def __init__(self, virtual_to_physical: Sequence[int], num_physical: int) -> None:
        mapping = [int(p) for p in virtual_to_physical]
        if len(set(mapping)) != len(mapping):
            raise TranspilerError(f"layout maps two virtual qubits together: {mapping}")
        if mapping and (min(mapping) < 0 or max(mapping) >= num_physical):
            raise TranspilerError(
                f"layout {mapping} exceeds device size {num_physical}"
            )
        self.virtual_to_physical: Tuple[int, ...] = tuple(mapping)
        self.num_physical = num_physical

    @property
    def num_virtual(self) -> int:
        """Return the number of mapped virtual qubits."""
        return len(self.virtual_to_physical)

    def physical(self, virtual: int) -> int:
        """Return the physical qubit hosting ``virtual``."""
        try:
            return self.virtual_to_physical[virtual]
        except IndexError:
            raise TranspilerError(f"virtual qubit {virtual} is not mapped") from None

    def physical_to_virtual(self) -> Dict[int, int]:
        """Return the inverse mapping."""
        return {p: v for v, p in enumerate(self.virtual_to_physical)}

    def swapped(self, physical_a: int, physical_b: int) -> "Layout":
        """Return the layout after SWAPping two physical qubits."""
        inverse = self.physical_to_virtual()
        mapping = list(self.virtual_to_physical)
        if physical_a in inverse:
            mapping[inverse[physical_a]] = physical_b
        if physical_b in inverse:
            mapping[inverse[physical_b]] = physical_a
        return Layout(mapping, self.num_physical)

    @classmethod
    def trivial(cls, num_virtual: int, num_physical: int) -> "Layout":
        """Return the identity layout."""
        return cls(list(range(num_virtual)), num_physical)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return (
            self.virtual_to_physical == other.virtual_to_physical
            and self.num_physical == other.num_physical
        )

    def __repr__(self) -> str:
        return f"Layout({list(self.virtual_to_physical)}, num_physical={self.num_physical})"


def interaction_counts(circuit: QuantumCircuit) -> Dict[Tuple[int, int], int]:
    """Count two-qubit interactions per unordered virtual pair."""
    counts: Dict[Tuple[int, int], int] = {}
    for inst in circuit.data:
        if inst.operation.is_gate and len(inst.qubits) == 2:
            pair = tuple(sorted(inst.qubits))
            counts[pair] = counts.get(pair, 0) + 1
    return counts


def select_layout(circuit: QuantumCircuit, device: DeviceModel) -> Layout:
    """Greedily choose a layout for ``circuit`` on ``device``.

    Strategy: order virtual pairs by interaction count; place each pair on
    the lowest-error free adjacent physical edge, preferring neighbours of
    already-placed qubits; then scatter any untouched virtual qubits.
    """
    num_virtual = circuit.num_qubits
    num_physical = device.num_qubits
    if num_virtual > num_physical:
        raise TranspilerError(
            f"circuit needs {num_virtual} qubits, device {device.name} has "
            f"{num_physical}"
        )
    coupling = device.coupling_map
    pairs = sorted(
        interaction_counts(circuit).items(), key=lambda kv: (-kv[1], kv[0])
    )
    placement: Dict[int, int] = {}
    used_physical: set = set()

    def edge_cost(a: int, b: int) -> float:
        cal = device.gate_calibration("cx", (a, b)) or device.gate_calibration(
            "cx", (b, a)
        )
        return cal.error_rate if cal is not None else 0.5

    for (v_a, v_b), _count in pairs:
        placed_a, placed_b = v_a in placement, v_b in placement
        if placed_a and placed_b:
            continue
        if placed_a or placed_b:
            anchor_virtual = v_a if placed_a else v_b
            floating = v_b if placed_a else v_a
            anchor = placement[anchor_virtual]
            options = [
                p for p in coupling.neighbors(anchor) if p not in used_physical
            ]
            if options:
                best = min(options, key=lambda p: edge_cost(anchor, p))
                placement[floating] = best
                used_physical.add(best)
            continue
        free_edges = [
            (a, b)
            for a, b in coupling.undirected_edges
            if a not in used_physical and b not in used_physical
        ]
        if free_edges:
            a, b = min(free_edges, key=lambda e: edge_cost(*e))
            placement[v_a], placement[v_b] = a, b
            used_physical.update((a, b))
    for v in range(num_virtual):
        if v not in placement:
            candidates = [p for p in range(num_physical) if p not in used_physical]
            # Prefer well-connected spares so later routing stays short.
            best = max(candidates, key=lambda p: len(coupling.neighbors(p)))
            placement[v] = best
            used_physical.add(best)
    return Layout([placement[v] for v in range(num_virtual)], num_physical)


def apply_layout(circuit: QuantumCircuit, layout: Layout) -> QuantumCircuit:
    """Rewrite the circuit onto physical qubit indices.

    The output circuit has ``layout.num_physical`` qubits; classical bits are
    unchanged.
    """
    from repro.circuits.registers import QuantumRegister

    out = QuantumCircuit(name=circuit.name)
    out.add_register(QuantumRegister(layout.num_physical, name="phys"))
    for reg in circuit.cregs:
        out.add_register(reg)
    qubit_map = list(layout.virtual_to_physical)
    clbit_map = list(range(circuit.num_clbits))
    for inst in circuit.data:
        out.data.append(inst.remap(qubit_map, clbit_map))
    return out
