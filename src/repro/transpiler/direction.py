"""CX direction fixing for directed coupling maps.

ibmqx4's cross-resonance CNOTs have a fixed control/target orientation.  A
CX against the native direction is rewritten using the H-conjugation
identity ``CX(a,b) = (H (x) H) CX(b,a) (H (x) H)``, with the Hadamards
emitted as ``u2(0, pi)`` so the result stays in the device basis.
"""

from __future__ import annotations

import math
from typing import List

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import get_gate
from repro.circuits.instructions import Instruction
from repro.devices.topology import CouplingMap
from repro.exceptions import TranspilerError


def fix_cx_directions(
    circuit: QuantumCircuit, coupling: CouplingMap
) -> QuantumCircuit:
    """Return a circuit whose every CX matches a native directed edge.

    Raises
    ------
    TranspilerError
        If a CX acts on a pair with no edge in either direction (route
        first), or a non-CX two-qubit gate remains (decompose first).
    """
    out = circuit.copy()
    out.data = []
    for inst in circuit.data:
        if not (inst.operation.is_gate and len(inst.qubits) == 2):
            out.data.append(inst)
            continue
        if inst.name == "swap":
            a, b = inst.qubits
            if not coupling.connected(a, b):
                raise TranspilerError(
                    f"swap on disconnected pair ({a}, {b}); route first"
                )
            # Expand SWAP into three direction-correct CXs.
            for control, target in ((a, b), (b, a), (a, b)):
                out.data.extend(_directed_cx(control, target, coupling, inst.condition))
            continue
        if inst.name != "cx":
            raise TranspilerError(
                f"direction fixing expects only CX 2-qubit gates, found "
                f"{inst.name!r}; decompose first"
            )
        control, target = inst.qubits
        out.data.extend(_directed_cx(control, target, coupling, inst.condition))
    return out


def _directed_cx(
    control: int, target: int, coupling: CouplingMap, condition
) -> List[Instruction]:
    if coupling.supports(control, target):
        return [Instruction(get_gate("cx"), (control, target), (), condition)]
    if coupling.supports(target, control):
        hadamard = get_gate("u2", (0.0, math.pi))
        return [
            Instruction(hadamard, (control,), (), condition),
            Instruction(get_gate("u2", (0.0, math.pi)), (target,), (), condition),
            Instruction(get_gate("cx"), (target, control), (), condition),
            Instruction(get_gate("u2", (0.0, math.pi)), (control,), (), condition),
            Instruction(get_gate("u2", (0.0, math.pi)), (target,), (), condition),
        ]
    raise TranspilerError(
        f"no coupling between qubits {control} and {target}; route first"
    )
