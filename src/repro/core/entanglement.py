"""Entanglement assertions (paper §3.2, Figs. 3-4).

The primitive is a **parity computation** into one ancilla: CNOTs from the
qubits under test XOR their values into the ancilla, which is then measured.
For a GHZ-type state ``a|0..0> + b|1..1>`` the parity over any *even-sized*
multiset of the tested qubits is 0 on both branches, so the ancilla
disentangles and deterministically reads the expected value; any odd-parity
component in the tested state shows up as an assertion error, and the
passing shots are projected back onto the even-parity (entangled) subspace.

The even-count requirement is the Fig. 4 subtlety: with an odd number of
CNOTs the ancilla stays entangled with the tested qubits, silently
corrupting the rest of the program.  :func:`append_parity_assertion`
enforces it; the ablation benchmark (DESIGN.md A1) demonstrates what goes
wrong without it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.types import AssertionKind, AssertionRecord
from repro.exceptions import AssertionCircuitError


def append_parity_assertion(
    circuit: QuantumCircuit,
    sources: Sequence[int],
    expected_parity: int = 0,
    label: str = "",
    enforce_even: bool = True,
) -> AssertionRecord:
    """Append a single-ancilla parity assertion over ``sources``.

    Parameters
    ----------
    circuit:
        The program being instrumented; gains one ancilla and one clbit.
    sources:
        Qubits contributing a CNOT into the ancilla, **in order, repeats
        allowed** (a repeated qubit contributes twice and cancels — this is
        how Fig. 4 reaches an even gate count on three qubits).
    expected_parity:
        0 asserts the even-parity family (``a|0..0> + b|1..1>``); 1 asserts
        the odd-parity family (``a|01> + b|10>``).  Implemented per the
        paper by initialising the ancilla to |1> with an X gate, so a
        measured 1 always means "assertion error".
    enforce_even:
        Reject an odd number of CNOTs (the correctness requirement).  The
        A1 ablation sets this to ``False`` deliberately.

    Returns
    -------
    AssertionRecord
    """
    source_list = [int(q) for q in sources]
    if len(source_list) < 2:
        raise AssertionCircuitError("parity assertion needs at least two CNOTs")
    if enforce_even and len(source_list) % 2 != 0:
        raise AssertionCircuitError(
            f"parity assertion needs an even number of CNOTs, got "
            f"{len(source_list)} (see paper Fig. 4; repeat a qubit to pad, "
            "or pass enforce_even=False to study the failure mode)"
        )
    for qubit in source_list:
        circuit.qubit_index(qubit)
    if expected_parity not in (0, 1):
        raise AssertionCircuitError(
            f"expected parity must be 0 or 1, got {expected_parity}"
        )

    tag = f"assert_ent{sum(1 for r in circuit.qregs if r.name.startswith('assert_ent'))}"
    ancilla_reg = circuit.add_qubits(1, name=tag)
    clbit_reg = circuit.add_clbits(1, name=f"{tag}_m")
    ancilla = circuit.qubit_index(ancilla_reg[0])
    clbit = circuit.clbit_index(clbit_reg[0])

    if expected_parity == 1:
        circuit.x(ancilla)
    for qubit in source_list:
        circuit.cx(qubit, ancilla)
    circuit.measure(ancilla, clbit)

    return AssertionRecord(
        kind=AssertionKind.ENTANGLEMENT,
        qubits=tuple(dict.fromkeys(source_list)),
        ancillas=(ancilla,),
        clbits=(clbit,),
        expected=(0,),
        label=label or f"parity=={expected_parity}",
    )


def append_entanglement_assertion(
    circuit: QuantumCircuit,
    qubits: Sequence[int],
    expected_parity: int = 0,
    mode: str = "pairwise",
    label: str = "",
) -> List[AssertionRecord]:
    """Assert that ``qubits`` are entangled in a GHZ-type state.

    Parameters
    ----------
    circuit:
        The program being instrumented.
    qubits:
        Two or more distinct qubits under test.
    expected_parity:
        0 for ``a|0..0> + b|1..1>``; for two qubits, 1 for
        ``a|01> + b|10>`` (odd-parity GHZ families only make sense pairwise,
        so ``expected_parity=1`` requires exactly two qubits).
    mode:
        ``"pairwise"`` (default) checks every adjacent pair with its own
        ancilla — ``len(qubits) - 1`` parity assertions, which together pin
        the full GHZ stabilizer group's Z-sector.  ``"single"`` uses one
        ancilla in the Fig. 4 style: one CNOT per qubit, padded with a
        repeat of the last qubit when the count is odd (weaker — a single
        even-subset parity — but 1-ancilla cheap).

    Returns
    -------
    list of AssertionRecord
        One record per allocated ancilla.
    """
    qubit_list = [int(q) for q in qubits]
    if len(qubit_list) < 2:
        raise AssertionCircuitError("entanglement assertion needs >= 2 qubits")
    if len(set(qubit_list)) != len(qubit_list):
        raise AssertionCircuitError(f"duplicate qubits under test: {qubit_list}")
    if expected_parity not in (0, 1):
        raise AssertionCircuitError(
            f"expected parity must be 0 or 1, got {expected_parity}"
        )
    if expected_parity == 1 and len(qubit_list) != 2:
        raise AssertionCircuitError(
            "odd-parity entanglement assertion is defined for exactly 2 qubits"
        )
    if mode == "pairwise":
        records = []
        for left, right in zip(qubit_list, qubit_list[1:]):
            records.append(
                append_parity_assertion(
                    circuit,
                    [left, right],
                    expected_parity=expected_parity,
                    label=label or f"entangled({left},{right})",
                )
            )
        return records
    if mode == "single":
        sources = list(qubit_list)
        if len(sources) % 2 != 0:
            sources.append(sources[-1])  # Fig. 4: pad to an even CNOT count.
        record = append_parity_assertion(
            circuit,
            sources,
            expected_parity=expected_parity,
            label=label or f"entangled{tuple(qubit_list)}",
        )
        return [record]
    raise AssertionCircuitError(f"unknown entanglement-assertion mode {mode!r}")
