"""The :class:`AssertionInjector`: instrument a program with assertions.

The injector owns a copy of the user's circuit and a growing list of
:class:`~repro.core.types.AssertionRecord` objects.  Because the assertion
gadgets allocate their own ancilla registers, program qubit/clbit indices
are never disturbed — assertions can be layered mid-program, and the final
computation's measurements added afterwards, exactly the "keep the program
running" usage the paper argues for.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.circuits.circuit import QuantumCircuit
from repro.core.classical import append_classical_assertion
from repro.core.entanglement import (
    append_entanglement_assertion,
    append_parity_assertion,
)
from repro.core.superposition import (
    append_state_assertion,
    append_superposition_assertion,
)
from repro.core.types import AssertionRecord
from repro.exceptions import AssertionCircuitError


class AssertionInjector:
    """Accumulates dynamic assertions on a copy of a program.

    Parameters
    ----------
    program:
        The circuit to instrument; it is copied, never mutated.

    Examples
    --------
    >>> from repro.circuits import library
    >>> injector = AssertionInjector(library.bell_pair())
    >>> _ = injector.assert_entangled([0, 1])
    >>> injector.circuit.num_qubits   # program qubits + 1 ancilla
    3
    """

    def __init__(self, program: QuantumCircuit) -> None:
        self.program = program
        self.circuit = program.copy(name=f"{program.name}+assertions")
        self.records: List[AssertionRecord] = []
        self._program_qubits = program.num_qubits
        self._program_clbits = program.num_clbits

    # ------------------------------------------------------------------
    # Assertion entry points
    # ------------------------------------------------------------------

    def assert_classical(
        self,
        qubits: Union[int, Sequence[int]],
        values: Union[int, Sequence[int]] = 0,
        label: str = "",
    ) -> AssertionRecord:
        """Assert qubit(s) hold classical value(s) (paper §3.1)."""
        record = append_classical_assertion(self.circuit, qubits, values, label)
        self.records.append(record)
        return record

    def assert_entangled(
        self,
        qubits: Sequence[int],
        expected_parity: int = 0,
        mode: str = "pairwise",
        label: str = "",
    ) -> List[AssertionRecord]:
        """Assert qubits form a GHZ-type entangled state (paper §3.2)."""
        records = append_entanglement_assertion(
            self.circuit, qubits, expected_parity, mode, label
        )
        self.records.extend(records)
        return records

    def assert_parity(
        self,
        sources: Sequence[int],
        expected_parity: int = 0,
        label: str = "",
        enforce_even: bool = True,
    ) -> AssertionRecord:
        """Assert the parity of an even multiset of qubits (Figs. 3-4)."""
        record = append_parity_assertion(
            self.circuit, sources, expected_parity, label, enforce_even
        )
        self.records.append(record)
        return record

    def assert_superposition(
        self, qubit: int, sign: str = "+", label: str = ""
    ) -> AssertionRecord:
        """Assert a qubit is in the |+> (or |->) state (paper §3.3)."""
        record = append_superposition_assertion(self.circuit, qubit, sign, label)
        self.records.append(record)
        return record

    def assert_uniform(self, qubits: Sequence[int]) -> List[AssertionRecord]:
        """Assert every listed qubit is in |+> (post-Hadamard layer check)."""
        return [self.assert_superposition(int(q)) for q in qubits]

    def assert_state(
        self, qubit: int, theta: float, phi: float = 0.0, label: str = ""
    ) -> AssertionRecord:
        """Assert a qubit equals an arbitrary known pure state (extension)."""
        record = append_state_assertion(self.circuit, qubit, theta, phi, label)
        self.records.append(record)
        return record

    def assert_phase_parity(
        self, qubits: Sequence[int], expected_parity: int = 0, label: str = ""
    ) -> AssertionRecord:
        """Assert the X-basis (phase) parity of qubits (extension)."""
        from repro.core.extensions import append_phase_parity_assertion

        record = append_phase_parity_assertion(
            self.circuit, qubits, expected_parity, label
        )
        self.records.append(record)
        return record

    def assert_ghz(
        self, qubits: Sequence[int], label: str = ""
    ) -> List[AssertionRecord]:
        """Assert the complete GHZ stabilizer group (extension)."""
        from repro.core.extensions import append_ghz_assertion

        records = append_ghz_assertion(self.circuit, qubits, label)
        self.records.extend(records)
        return records

    def assert_equal(
        self, qubit_a: int, qubit_b: int, label: str = ""
    ) -> AssertionRecord:
        """Assert two qubits hold the same state via a swap test (extension)."""
        from repro.core.extensions import append_equality_assertion

        record = append_equality_assertion(self.circuit, qubit_a, qubit_b, label)
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Program continuation
    # ------------------------------------------------------------------

    def apply(self, continuation: QuantumCircuit) -> "AssertionInjector":
        """Append more program (acting on the *original* program bits).

        This is how a program interleaves computation and assertions:
        build a prefix, assert, then ``apply`` the next stage.
        """
        if continuation.num_qubits > self._program_qubits:
            raise AssertionCircuitError(
                f"continuation uses {continuation.num_qubits} qubits but the "
                f"program has {self._program_qubits}"
            )
        if continuation.num_clbits > self._program_clbits:
            raise AssertionCircuitError(
                f"continuation uses {continuation.num_clbits} clbits but the "
                f"program has {self._program_clbits}"
            )
        self.circuit.compose(
            continuation,
            qubits=list(range(continuation.num_qubits)),
            clbits=list(range(continuation.num_clbits)) or None,
        )
        return self

    def measure_program(self, qubits: Optional[Sequence[int]] = None) -> List[int]:
        """Measure program qubits into fresh clbits; returns clbit indices.

        Call after all assertions so the final readout register sits at the
        end — the assertion bits and result bits stay cleanly separated.
        """
        targets = (
            list(range(self._program_qubits))
            if qubits is None
            else [int(q) for q in qubits]
        )
        for qubit in targets:
            if not 0 <= qubit < self._program_qubits:
                raise AssertionCircuitError(
                    f"qubit {qubit} is not a program qubit "
                    f"(program has {self._program_qubits})"
                )
        reg = self.circuit.add_clbits(len(targets), name=f"result{len(self.circuit.cregs)}")
        clbits = [self.circuit.clbit_index(bit) for bit in reg]
        for qubit, clbit in zip(targets, clbits):
            self.circuit.measure(qubit, clbit)
        return clbits

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def assertion_clbits(self) -> List[int]:
        """Return all classical bits owned by assertions."""
        out: List[int] = []
        for record in self.records:
            out.extend(record.clbits)
        return sorted(out)

    @property
    def num_ancillas(self) -> int:
        """Return the total ancilla-qubit overhead."""
        return sum(record.num_ancillas for record in self.records)

    def overhead(self) -> dict:
        """Return the instrumentation cost vs the bare program."""
        bare = self.program
        inst = self.circuit
        return {
            "extra_qubits": inst.num_qubits - bare.num_qubits,
            "extra_clbits": inst.num_clbits - bare.num_clbits,
            "extra_gates": inst.size() - bare.size(),
            "extra_cx": inst.num_two_qubit_gates() - bare.num_two_qubit_gates(),
            "depth_ratio": (inst.depth() / bare.depth()) if bare.depth() else float("inf"),
            "num_assertions": len(self.records),
        }

    def __repr__(self) -> str:
        return (
            f"AssertionInjector(program={self.program.name!r}, "
            f"assertions={len(self.records)}, ancillas={self.num_ancillas})"
        )
