"""Post-selection filtering on assertion outcomes (paper §4).

On NISQ hardware the assertion ancillas double as error detectors: shots
whose ancillas read the unexpected value are discarded, cutting the error
rate of the surviving results (Tables 1-2 report 28.5 % and 31.5 %
reductions).  These helpers split a counts histogram by assertion outcome
and compute the before/after error rates the paper tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.types import AssertionRecord
from repro.exceptions import AssertionCircuitError
from repro.results.counts import Counts


@dataclass
class AssertionReport:
    """Outcome of evaluating assertions over a counts histogram.

    Attributes
    ----------
    total_shots:
        Shots in the input histogram.
    passing:
        Histogram restricted to shots where *every* assertion held, with the
        assertion clbits removed (ready for downstream analysis).
    failing:
        Complement of ``passing`` (assertion bits also removed).
    pass_rate:
        Fraction of shots that survived.
    per_assertion_error_rate:
        ``record.label -> fraction of shots where that assertion failed``.
    """

    total_shots: int
    passing: Counts
    failing: Counts
    pass_rate: float
    per_assertion_error_rate: Dict[str, float] = field(default_factory=dict)

    def discard_fraction(self) -> float:
        """Return the fraction of shots post-selection throws away."""
        return 1.0 - self.pass_rate


def _assertion_bit_positions(records: Sequence[AssertionRecord]) -> List[int]:
    positions: List[int] = []
    for record in records:
        positions.extend(record.clbits)
    if len(set(positions)) != len(positions):
        raise AssertionCircuitError("assertion records share classical bits")
    return positions


def evaluate_assertions(
    counts: Counts, records: Sequence[AssertionRecord]
) -> AssertionReport:
    """Split ``counts`` into assertion-passing and assertion-failing shots.

    Parameters
    ----------
    counts:
        Histogram over the instrumented circuit's full classical register.
    records:
        The assertions to evaluate (typically ``injector.records``).
    """
    if not records:
        raise AssertionCircuitError("no assertion records supplied")
    positions = _assertion_bit_positions(records)
    width = counts.num_bits
    for position in positions:
        if position >= width:
            raise AssertionCircuitError(
                f"assertion clbit {position} outside histogram width {width}; "
                "was the instrumented circuit the one executed?"
            )
    passing: Dict[str, int] = {}
    failing: Dict[str, int] = {}
    # Disambiguate duplicate labels so every record keeps its own rate.
    labels: List[str] = []
    for index, record in enumerate(records):
        label = record.label
        if label in labels:
            label = f"{label}#{index}"
        labels.append(label)
    failures_per_label: Dict[str, int] = {label: 0 for label in labels}
    total = counts.shots
    drop = set(positions)
    keep = [b for b in range(width) if b not in drop]
    for key, value in counts.items():
        shot_passes = True
        for label, record in zip(labels, records):
            if not record.passes(key):
                failures_per_label[label] += value
                shot_passes = False
        reduced = "".join(key[b] for b in keep)
        bucket = passing if shot_passes else failing
        if reduced or not keep:
            bucket[reduced] = bucket.get(reduced, 0) + value
    pass_counts = Counts(passing)
    fail_counts = Counts(failing)
    pass_rate = pass_counts.shots / total if total else 0.0
    rates = {
        label: (failures / total if total else 0.0)
        for label, failures in failures_per_label.items()
    }
    return AssertionReport(
        total_shots=total,
        passing=pass_counts,
        failing=fail_counts,
        pass_rate=pass_rate,
        per_assertion_error_rate=rates,
    )


def postselect_passing(
    counts: Counts, records: Sequence[AssertionRecord]
) -> Counts:
    """Return only assertion-passing shots, assertion bits removed."""
    return evaluate_assertions(counts, records).passing


def assertion_error_rate(
    counts: Counts, records: Sequence[AssertionRecord]
) -> float:
    """Return the fraction of shots failing at least one assertion."""
    return evaluate_assertions(counts, records).discard_fraction()


def error_rate_reduction(
    raw_error_rate: float, filtered_error_rate: float
) -> float:
    """Return the relative reduction the paper reports (e.g. 0.285 = 28.5 %).

    Defined as ``(raw - filtered) / raw``; 0 when the raw rate is 0.
    """
    if raw_error_rate < 0 or filtered_error_rate < 0:
        raise AssertionCircuitError("error rates must be non-negative")
    if raw_error_rate == 0:
        return 0.0
    return (raw_error_rate - filtered_error_rate) / raw_error_rate


def result_error_rate(
    counts: Counts,
    correct_keys: Sequence[str],
) -> float:
    """Return the fraction of shots outside the ``correct_keys`` set.

    This is the paper's "error rate" metric for a histogram whose correct
    outcomes are known (e.g. {'00', '11'} for a Bell pair).
    """
    total = counts.shots
    if total == 0:
        raise AssertionCircuitError("cannot compute an error rate of 0 shots")
    correct = sum(counts.get(key, 0) for key in set(correct_keys))
    return 1.0 - correct / total
