"""Classical-value assertions (paper §3.1, Fig. 2).

One ancilla per asserted qubit: the ancilla is initialised to the asserted
value (|0> directly, |1> via an X gate), a CNOT from the qubit under test
XORs the qubit's value into it, and the ancilla is measured.  Measuring |1>
flags an assertion error.

Key property proven in the paper (and verified numerically in
``tests/core/test_classical.py``): if the qubit under test is erroneously in
a superposition ``a|0> + b|1>``, the ancilla measurement *projects* it —
passing shots leave the qubit exactly in the asserted classical state (the
circuit "auto-corrects"), and the error probability is ``|b|^2`` (asserting
|0>), so repeated runs estimate the corrupted amplitudes.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.circuits.circuit import QuantumCircuit
from repro.core.types import AssertionKind, AssertionRecord
from repro.exceptions import AssertionCircuitError


def append_classical_assertion(
    circuit: QuantumCircuit,
    qubits: Union[int, Sequence[int]],
    values: Union[int, Sequence[int]] = 0,
    label: str = "",
) -> AssertionRecord:
    """Append a classical-value assertion to ``circuit`` (in place).

    Parameters
    ----------
    circuit:
        The program being instrumented; gains one ancilla qubit and one
        classical bit per asserted qubit.
    qubits:
        Qubit(s) under test.
    values:
        Asserted classical value(s); a scalar broadcasts over all qubits.
    label:
        Optional report label.

    Returns
    -------
    AssertionRecord
        Bookkeeping for filtering/estimation.  ``expected`` is all-zeros:
        measuring 1 on any ancilla clbit means the assertion failed.

    Notes
    -----
    The multi-qubit form asserts each qubit independently (one ancilla
    each); it does **not** assert joint correlation — use the entanglement
    assertion for that.
    """
    qubit_list = [qubits] if isinstance(qubits, int) else [int(q) for q in qubits]
    if not qubit_list:
        raise AssertionCircuitError("must assert at least one qubit")
    if len(set(qubit_list)) != len(qubit_list):
        raise AssertionCircuitError(f"duplicate qubits under test: {qubit_list}")
    if isinstance(values, int):
        value_list = [values] * len(qubit_list)
    else:
        value_list = [int(v) for v in values]
    if len(value_list) != len(qubit_list):
        raise AssertionCircuitError(
            f"{len(value_list)} values for {len(qubit_list)} qubits"
        )
    for value in value_list:
        if value not in (0, 1):
            raise AssertionCircuitError(f"asserted value must be 0 or 1, got {value}")
    for qubit in qubit_list:
        circuit.qubit_index(qubit)  # validates range

    count = len(qubit_list)
    tag = f"assert_cl{sum(1 for r in circuit.qregs if r.name.startswith('assert_cl'))}"
    ancilla_reg = circuit.add_qubits(count, name=tag)
    clbit_reg = circuit.add_clbits(count, name=f"{tag}_m")
    ancilla_indices = tuple(circuit.qubit_index(bit) for bit in ancilla_reg)
    clbit_indices = tuple(circuit.clbit_index(bit) for bit in clbit_reg)

    for qubit, value, ancilla, clbit in zip(
        qubit_list, value_list, ancilla_indices, clbit_indices
    ):
        if value == 1:
            # Ancilla initialised to |1>: after the CNOT it reads 1 XOR psi,
            # so measuring 1 still means "assertion error" (paper §3.1).
            circuit.x(ancilla)
        circuit.cx(qubit, ancilla)
        circuit.measure(ancilla, clbit)

    return AssertionRecord(
        kind=AssertionKind.CLASSICAL,
        qubits=tuple(qubit_list),
        ancillas=ancilla_indices,
        clbits=clbit_indices,
        expected=(0,) * count,
        label=label or f"classical=={''.join(str(v) for v in value_list)}",
    )
