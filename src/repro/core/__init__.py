"""Dynamic runtime assertions — the paper's primary contribution.

Three ancilla-based assertion circuits (Zhou & Byrd, §3):

* :func:`append_classical_assertion` — assert a qubit holds a classical
  value (Fig. 2),
* :func:`append_entanglement_assertion` / :func:`append_parity_assertion` —
  assert qubits are GHZ-type entangled via parity (Figs. 3-4),
* :func:`append_superposition_assertion` — assert a qubit is in the equal
  superposition |+> or |-> (Fig. 5),

plus the generalisation :func:`append_state_assertion` (assert an arbitrary
known 1-qubit state by basis conjugation), the :class:`AssertionInjector`
that instruments whole programs, post-selection filtering over assertion
ancillas (§4's NISQ error filtering), amplitude estimation from assertion
statistics, and the statistical-assertion baseline (Huang & Martonosi,
ISCA'19) the paper compares against.
"""

from repro.core.types import AssertionKind, AssertionRecord
from repro.core.classical import append_classical_assertion
from repro.core.entanglement import (
    append_entanglement_assertion,
    append_parity_assertion,
)
from repro.core.superposition import (
    append_state_assertion,
    append_superposition_assertion,
)
from repro.core.injector import AssertionInjector
from repro.core.filtering import (
    AssertionReport,
    assertion_error_rate,
    evaluate_assertions,
    postselect_passing,
)
from repro.core.estimation import (
    estimate_amplitudes_from_classical_assertion,
    estimate_amplitudes_from_superposition_assertion,
    estimate_odd_parity_weight,
)
from repro.core.extensions import (
    append_equality_assertion,
    append_ghz_assertion,
    append_phase_parity_assertion,
)
from repro.core.baseline import (
    StatisticalAssertionOutcome,
    statistical_classical_assertion,
    statistical_entanglement_assertion,
    statistical_superposition_assertion,
)

__all__ = [
    "AssertionInjector",
    "AssertionKind",
    "AssertionRecord",
    "AssertionReport",
    "StatisticalAssertionOutcome",
    "append_classical_assertion",
    "append_entanglement_assertion",
    "append_equality_assertion",
    "append_ghz_assertion",
    "append_phase_parity_assertion",
    "append_parity_assertion",
    "append_state_assertion",
    "append_superposition_assertion",
    "assertion_error_rate",
    "estimate_amplitudes_from_classical_assertion",
    "estimate_amplitudes_from_superposition_assertion",
    "estimate_odd_parity_weight",
    "evaluate_assertions",
    "postselect_passing",
    "statistical_classical_assertion",
    "statistical_entanglement_assertion",
    "statistical_superposition_assertion",
]
