"""Amplitude estimation from assertion-outcome statistics.

Both §3.1 and §3.3 of the paper point out that the ancilla's measured
error frequency over repeated runs carries quantitative information about
the tested state:

* Classical assertion of |0> on ``a|0> + b|1>``: P(error) = |b|^2, so the
  error frequency directly estimates the corrupted-amplitude weight.
* Superposition assertion on real ``a|0> + b|1>``: P(error) = (2 - 4ab)/4,
  so the error frequency estimates the product ``ab`` and hence (with the
  normalisation constraint) |a| and |b| up to exchange.
* Parity/entanglement assertion on ``a|00> + b|11> + c|10> + d|01>``:
  P(error) = |c|^2 + |d|^2, the odd-parity weight.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.analysis.statistics import wilson_interval
from repro.core.filtering import evaluate_assertions
from repro.core.types import AssertionKind, AssertionRecord
from repro.exceptions import AssertionCircuitError
from repro.results.counts import Counts


def _single_record_error_rate(
    counts: Counts, record: AssertionRecord
) -> Tuple[float, int]:
    total = counts.shots
    if total == 0:
        raise AssertionCircuitError("cannot estimate from an empty histogram")
    failures = sum(
        value for key, value in counts.items() if not record.passes(key)
    )
    return failures / total, total


def estimate_amplitudes_from_classical_assertion(
    counts: Counts,
    record: AssertionRecord,
    confidence: float = 0.95,
) -> dict:
    """Estimate |a|^2 and |b|^2 of the tested qubit from a |0> assertion.

    Returns a dict with ``p0`` (|a|^2 estimate), ``p1`` (|b|^2 estimate) and
    a Wilson confidence interval on ``p1``.
    """
    if record.kind not in (AssertionKind.CLASSICAL, AssertionKind.STATE):
        raise AssertionCircuitError(
            f"record kind {record.kind} is not a classical/state assertion"
        )
    if len(record.clbits) != 1:
        raise AssertionCircuitError(
            "amplitude estimation expects a single-qubit classical assertion"
        )
    error_rate, total = _single_record_error_rate(counts, record)
    failures = round(error_rate * total)
    low, high = wilson_interval(failures, total, confidence)
    return {
        "p0": 1.0 - error_rate,
        "p1": error_rate,
        "p1_interval": (low, high),
        "shots": total,
    }


def estimate_amplitudes_from_superposition_assertion(
    counts: Counts,
    record: AssertionRecord,
) -> dict:
    """Estimate real amplitudes (a, b) from Fig. 5 error statistics.

    Inverts ``P(error) = (2 - 4ab)/4`` to ``ab = (1 - 2 P(error))/2`` and
    solves with ``a^2 + b^2 = 1``.  The solution is unique up to exchanging
    a and b (returned with ``a >= b``) and only valid for real, same-sign
    amplitude pairs — exactly the regime the paper's derivation covers.

    Returns a dict with ``ab``, ``a``, ``b`` and the raw ``error_rate``.
    """
    if record.kind is not AssertionKind.SUPERPOSITION:
        raise AssertionCircuitError(
            f"record kind {record.kind} is not a superposition assertion"
        )
    error_rate, total = _single_record_error_rate(counts, record)
    ab = (1.0 - 2.0 * error_rate) / 2.0
    ab = max(-0.5, min(0.5, ab))
    # a^2 + b^2 = 1 and a*b = ab  =>  (a+b)^2 = 1 + 2ab, (a-b)^2 = 1 - 2ab.
    sum_ab = math.sqrt(max(0.0, 1.0 + 2.0 * ab))
    diff_ab = math.sqrt(max(0.0, 1.0 - 2.0 * ab))
    a = (sum_ab + diff_ab) / 2.0
    b = (sum_ab - diff_ab) / 2.0
    return {
        "ab": ab,
        "a": a,
        "b": b,
        "error_rate": error_rate,
        "shots": total,
    }


def estimate_odd_parity_weight(
    counts: Counts,
    record: AssertionRecord,
    confidence: float = 0.95,
) -> dict:
    """Estimate |c|^2 + |d|^2 (odd-parity weight) from a parity assertion.

    For the state ``a|00> + b|11> + c|10> + d|01>`` the paper shows the
    assertion errors occur with probability |c|^2 + |d|^2.
    """
    if record.kind is not AssertionKind.ENTANGLEMENT:
        raise AssertionCircuitError(
            f"record kind {record.kind} is not an entanglement assertion"
        )
    error_rate, total = _single_record_error_rate(counts, record)
    failures = round(error_rate * total)
    low, high = wilson_interval(failures, total, confidence)
    return {
        "odd_parity_weight": error_rate,
        "interval": (low, high),
        "shots": total,
    }
