"""Statistical-assertion baseline (Huang & Martonosi, ISCA'19).

The prior-art approach the paper improves on: *truncate* the program at the
assertion point, measure the qubits under test directly across many shots,
and run a statistical hypothesis test on the resulting histogram.  Its two
structural costs — each assertion point needs its own batch of executions,
and the program cannot continue past the measurement — are exactly what the
dynamic assertion circuits remove.  The comparison benchmark (DESIGN.md A3)
quantifies both costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.analysis.statistics import (
    chi_square_contingency,
    chi_square_goodness_of_fit,
)
from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import AssertionCircuitError
from repro.results.counts import Counts


@dataclass(frozen=True)
class StatisticalAssertionOutcome:
    """Result of one statistical assertion.

    Attributes
    ----------
    passed:
        Whether the hypothesis test accepted the asserted property.
    p_value:
        Test p-value (small = evidence *against* the asserted property for
        goodness-of-fit; small = evidence *for* correlation in the
        entanglement test — see each function's docstring).
    statistic:
        The chi-square statistic.
    counts:
        The measured histogram the decision was based on.
    executions:
        Shots consumed (each statistical assertion costs a dedicated batch).
    halted_program:
        Always ``True``: the measurement truncates the program — recorded
        explicitly so overhead comparisons can count restarts.
    """

    passed: bool
    p_value: float
    statistic: float
    counts: Counts
    executions: int
    halted_program: bool = True


def _truncated_measurement_circuit(
    program: QuantumCircuit, qubits: Sequence[int], basis: str = "z"
) -> QuantumCircuit:
    """Copy the program and measure ``qubits`` (in ``basis``) at its end."""
    circuit = program.copy(name=f"{program.name}_stat_assert")
    reg = circuit.add_clbits(len(qubits), name=f"stat{len(circuit.cregs)}")
    for offset, qubit in enumerate(qubits):
        if basis == "x":
            circuit.h(qubit)
        elif basis == "y":
            circuit.sdg(qubit)
            circuit.h(qubit)
        elif basis != "z":
            raise AssertionCircuitError(f"unknown measurement basis {basis!r}")
        circuit.measure(qubit, reg[offset])
    return circuit


def _stat_bits(counts: Counts, num_qubits: int) -> Counts:
    """Marginalise a histogram to its trailing statistical-assertion bits."""
    width = counts.num_bits
    return counts.marginal(list(range(width - num_qubits, width)))


def statistical_classical_assertion(
    backend,
    program: QuantumCircuit,
    qubit: int,
    value: int,
    shots: int = 1024,
    alpha: float = 0.05,
    seed: Optional[int] = None,
) -> StatisticalAssertionOutcome:
    """Test that ``qubit`` holds the classical ``value`` at program end.

    Measures the qubit directly over ``shots`` executions and runs a
    goodness-of-fit test against the point distribution.  ``passed`` is
    ``True`` when the test cannot reject the asserted value at level
    ``alpha``.
    """
    if value not in (0, 1):
        raise AssertionCircuitError(f"asserted value must be 0 or 1, got {value}")
    circuit = _truncated_measurement_circuit(program, [qubit])
    result = backend.run(circuit, shots=shots, seed=seed)
    counts = _stat_bits(result.counts, 1)
    expected = {"0": 1.0, "1": 0.0} if value == 0 else {"0": 0.0, "1": 1.0}
    statistic, p_value = chi_square_goodness_of_fit(counts, expected)
    return StatisticalAssertionOutcome(
        passed=p_value > alpha,
        p_value=p_value,
        statistic=statistic,
        counts=counts,
        executions=shots,
    )


def statistical_superposition_assertion(
    backend,
    program: QuantumCircuit,
    qubit: int,
    shots: int = 1024,
    alpha: float = 0.05,
    seed: Optional[int] = None,
) -> StatisticalAssertionOutcome:
    """Test that ``qubit`` is in the uniform superposition.

    Z-basis measurement of |+> gives the uniform distribution, so the test
    is goodness-of-fit against 50/50.  Note the structural weakness the
    paper exploits: |-> (and any equal-magnitude superposition with the
    wrong *phase*) also passes, because Z-basis statistics cannot see the
    phase.  The dynamic Fig. 5 circuit distinguishes |+> from |->
    deterministically.  (Huang & Martonosi address this with multi-basis
    tomography at further execution cost; see
    :mod:`repro.analysis.tomography`.)
    """
    circuit = _truncated_measurement_circuit(program, [qubit])
    result = backend.run(circuit, shots=shots, seed=seed)
    counts = _stat_bits(result.counts, 1)
    statistic, p_value = chi_square_goodness_of_fit(
        counts, {"0": 0.5, "1": 0.5}
    )
    return StatisticalAssertionOutcome(
        passed=p_value > alpha,
        p_value=p_value,
        statistic=statistic,
        counts=counts,
        executions=shots,
    )


def statistical_entanglement_assertion(
    backend,
    program: QuantumCircuit,
    qubits: Tuple[int, int],
    shots: int = 1024,
    alpha: float = 0.05,
    seed: Optional[int] = None,
) -> StatisticalAssertionOutcome:
    """Test that two qubits are correlated (entanglement evidence).

    Chi-square contingency test on the 2x2 outcome table; ``passed`` is
    ``True`` when independence **is rejected** at level ``alpha`` (the
    qubits show the correlation an entangled state implies).  As Huang &
    Martonosi note, classical correlation also passes — correlation is a
    necessary, not sufficient, signature.
    """
    pair = (int(qubits[0]), int(qubits[1]))
    circuit = _truncated_measurement_circuit(program, list(pair))
    result = backend.run(circuit, shots=shots, seed=seed)
    counts = _stat_bits(result.counts, 2)
    statistic, p_value = chi_square_contingency(counts, 0, 1)
    return StatisticalAssertionOutcome(
        passed=p_value < alpha,
        p_value=p_value,
        statistic=statistic,
        counts=counts,
        executions=shots,
    )
