"""Equal-superposition assertions (paper §3.3, Fig. 5) and the rotated-basis
generalisation.

The Fig. 5 gadget is CX(q -> anc), H on both, CX(q -> anc), measure the
ancilla.  Its algebra (re-derived numerically in the tests):

* q = |+>  ->  ancilla deterministically 0, q untouched;
* q = |->  ->  ancilla deterministically 1, q untouched;
* otherwise (real amplitudes a, b) -> P(ancilla=0) = (2 + 4ab)/4 and
  P(ancilla=1) = (2 - 4ab)/4, and **either way** the tested qubit is forced
  into an equal-magnitude superposition ``k|0> + k|1>``, |k| = 1/sqrt(2).
  A classical input (a or b = 0) therefore gives exactly 50 % assertion
  errors — the Fig. 7 experiment.

:func:`append_state_assertion` generalises the classical assertion to an
arbitrary known 1-qubit target state |phi> = U|0> by conjugating the CNOT
with U on the qubit under test (U = H recovers a |+> assertion, identity
recovers the classical assertion).  The paper sketches this direction via
its |+>/|-> pair; we implement the full rotation as the natural extension.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.types import AssertionKind, AssertionRecord
from repro.exceptions import AssertionCircuitError


def append_superposition_assertion(
    circuit: QuantumCircuit,
    qubit: int,
    sign: str = "+",
    label: str = "",
) -> AssertionRecord:
    """Append the Fig. 5 equal-superposition assertion (in place).

    Parameters
    ----------
    circuit:
        The program being instrumented; gains one ancilla and one clbit.
    qubit:
        The qubit under test.
    sign:
        ``"+"`` asserts |+> (ancilla expected 0); ``"-"`` asserts |->
        (ancilla expected 1 — the same circuit distinguishes the two, so no
        extra gate is needed; the record's ``expected`` captures it).

    Returns
    -------
    AssertionRecord
    """
    if sign not in {"+", "-"}:
        raise AssertionCircuitError(f"sign must be '+' or '-', got {sign!r}")
    circuit.qubit_index(qubit)
    tag = f"assert_sup{sum(1 for r in circuit.qregs if r.name.startswith('assert_sup'))}"
    ancilla_reg = circuit.add_qubits(1, name=tag)
    clbit_reg = circuit.add_clbits(1, name=f"{tag}_m")
    ancilla = circuit.qubit_index(ancilla_reg[0])
    clbit = circuit.clbit_index(clbit_reg[0])

    circuit.cx(qubit, ancilla)
    circuit.h(qubit)
    circuit.h(ancilla)
    circuit.cx(qubit, ancilla)
    circuit.measure(ancilla, clbit)

    return AssertionRecord(
        kind=AssertionKind.SUPERPOSITION,
        qubits=(qubit,),
        ancillas=(ancilla,),
        clbits=(clbit,),
        expected=(0,) if sign == "+" else (1,),
        label=label or f"superposition|{sign}>",
    )


def append_state_assertion(
    circuit: QuantumCircuit,
    qubit: int,
    theta: float,
    phi: float = 0.0,
    label: str = "",
) -> AssertionRecord:
    """Assert ``qubit`` equals ``cos(theta/2)|0> + e^{i phi} sin(theta/2)|1>``.

    Rotated-basis generalisation of the classical assertion: apply the
    inverse preparation ``U^dagger`` (mapping the target state to |0>), run
    the Fig. 2 CNOT-ancilla check, then re-apply ``U``.  If the assertion
    holds, the qubit under test is returned to the target state exactly; a
    passing measurement on a wrong input *projects* the qubit onto the
    target state, mirroring the paper's auto-correction property.

    The error probability is ``1 - |<phi|psi>|^2``.

    Returns
    -------
    AssertionRecord
        ``kind`` is :attr:`AssertionKind.STATE`.
    """
    circuit.qubit_index(qubit)
    tag = f"assert_st{sum(1 for r in circuit.qregs if r.name.startswith('assert_st'))}"
    ancilla_reg = circuit.add_qubits(1, name=tag)
    clbit_reg = circuit.add_clbits(1, name=f"{tag}_m")
    ancilla = circuit.qubit_index(ancilla_reg[0])
    clbit = circuit.clbit_index(clbit_reg[0])

    # U = u3(theta, phi, 0) maps |0> to the target state; conjugate with it.
    circuit.u3(-theta, 0.0, -phi, qubit)  # U^dagger
    circuit.cx(qubit, ancilla)
    circuit.u3(theta, phi, 0.0, qubit)    # U
    circuit.measure(ancilla, clbit)

    return AssertionRecord(
        kind=AssertionKind.STATE,
        qubits=(qubit,),
        ancillas=(ancilla,),
        clbits=(clbit,),
        expected=(0,),
        label=label or f"state(theta={theta:.3f},phi={phi:.3f})",
    )


def superposition_error_probability(a: float, b: float) -> float:
    """Return the exact Fig. 5 assertion-error probability for real a, b.

    ``P(error) = (2 - 4ab) / 4`` with ``a^2 + b^2 = 1`` (paper §3.3).
    """
    norm = a * a + b * b
    if not math.isclose(norm, 1.0, abs_tol=1e-9):
        raise AssertionCircuitError(f"amplitudes not normalised: a^2+b^2 = {norm}")
    return (2.0 - 4.0 * a * b) / 4.0
