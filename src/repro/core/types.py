"""Assertion record types.

Every appended assertion yields an :class:`AssertionRecord` describing where
its ancilla lives and what classical bit carries its outcome.  The filtering
and estimation modules consume these records; they are the bookkeeping that
lets one circuit carry many assertions without the caller tracking bit
indices by hand.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.exceptions import AssertionCircuitError


class AssertionKind(enum.Enum):
    """The three assertion families of the paper, plus the generalisation."""

    CLASSICAL = "classical"
    ENTANGLEMENT = "entanglement"
    SUPERPOSITION = "superposition"
    STATE = "state"  # rotated-basis generalisation of CLASSICAL

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AssertionRecord:
    """Bookkeeping for one appended assertion.

    Attributes
    ----------
    kind:
        Which assertion family this is.
    qubits:
        The qubits under test (flat indices in the instrumented circuit).
    ancillas:
        Ancilla qubit indices the assertion allocated (one for most
        assertions; pairwise entanglement assertions allocate several).
    clbits:
        Classical bits carrying the ancilla measurement outcomes, aligned
        with ``ancillas``.
    expected:
        Expected measured value per clbit when the assertion *holds*.  Per
        the paper's convention the ancilla is prepared so this is normally
        0 ("a measurement of the ancilla qubit being |1> means an assertion
        error"); the |-> superposition assertion uses 1.
    label:
        Human-readable name used in reports.
    """

    kind: AssertionKind
    qubits: Tuple[int, ...]
    ancillas: Tuple[int, ...]
    clbits: Tuple[int, ...]
    expected: Tuple[int, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.qubits:
            raise AssertionCircuitError("assertion must test at least one qubit")
        if len(self.ancillas) != len(self.clbits):
            raise AssertionCircuitError(
                f"{len(self.ancillas)} ancillas but {len(self.clbits)} clbits"
            )
        if len(self.expected) != len(self.clbits):
            raise AssertionCircuitError(
                f"{len(self.expected)} expected values but {len(self.clbits)} clbits"
            )
        if any(value not in (0, 1) for value in self.expected):
            raise AssertionCircuitError(
                f"expected values must be 0/1, got {self.expected}"
            )
        if set(self.qubits) & set(self.ancillas):
            raise AssertionCircuitError(
                "ancilla qubits must be distinct from the qubits under test"
            )

    def passes(self, bitstring: str) -> bool:
        """Return True if this assertion holds in one measured shot.

        ``bitstring`` is the full classical-register readout (clbit 0
        leftmost).
        """
        return all(
            bitstring[clbit] == str(expected)
            for clbit, expected in zip(self.clbits, self.expected)
        )

    @property
    def num_ancillas(self) -> int:
        """Return the ancilla-qubit overhead of this assertion."""
        return len(self.ancillas)

    def describe(self) -> str:
        """Return a one-line human-readable description."""
        name = self.label or self.kind.value
        return (
            f"{name}: qubits={list(self.qubits)} ancillas={list(self.ancillas)} "
            f"clbits={list(self.clbits)} expected={list(self.expected)}"
        )
