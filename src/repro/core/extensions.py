"""Extensions beyond the paper's three assertion circuits.

The paper's parity assertion checks the **Z-type** stabilizers of a
GHZ-family state; it is blind to *phase* errors (a Z flip maps
``|0..0> + |1..1>`` to ``|0..0> - |1..1>``, which has identical Z-parity).
Two natural extensions close that gap, both built from the same
ancilla-CNOT toolbox the paper introduces:

* :func:`append_phase_parity_assertion` — the X-basis counterpart of
  Figs. 3-4: conjugate the parity CNOTs with Hadamards on the qubits under
  test, so the ancilla accumulates the X-parity.  For a GHZ state the
  X-parity of *all* qubits is deterministically even (the ``X..X``
  stabilizer), so the ancilla disentangles for **any** qubit count — the
  even-CNOT-count rule of Fig. 4 is specific to the Z-type check, where the
  two GHZ branches have different parities.  Combined with the paper's
  pairwise Z-parity checks this pins the complete GHZ stabilizer group:
  :func:`append_ghz_assertion`.

* :func:`append_equality_assertion` — a swap-test ancilla asserting two
  qubits hold the *same* (unknown) state; P(error) = (1 - |<a|b>|^2)/2.
  Unlike the paper's assertions this one is probabilistic even on a
  correct program only when the states differ; equal states never trip it.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.core.types import AssertionKind, AssertionRecord
from repro.exceptions import AssertionCircuitError


def append_phase_parity_assertion(
    circuit: QuantumCircuit,
    qubits: Sequence[int],
    expected_parity: int = 0,
    label: str = "",
) -> AssertionRecord:
    """Append an X-basis parity assertion over ``qubits`` (in place).

    Checks the ``X..X`` stabilizer of a GHZ-family state: Hadamards rotate
    each tested qubit into the X basis, the parity CNOTs run, and the
    Hadamards rotate back.  A phase flip anywhere in ``|0..0> + |1..1>``
    (turning it into the minus state) makes the ancilla read 1
    deterministically — the error class the paper's Z-parity circuit cannot
    see.

    Parameters
    ----------
    circuit:
        The program being instrumented; gains one ancilla and one clbit.
    qubits:
        Distinct qubits under test (any count >= 2; no even-count rule
        here — see the module docstring).
    expected_parity:
        0 asserts ``|0..0> + |1..1>``; 1 asserts ``|0..0> - |1..1>``
        (implemented with an ancilla X so measuring 1 still means error).

    Returns
    -------
    AssertionRecord
    """
    qubit_list = [int(q) for q in qubits]
    if len(qubit_list) < 2:
        raise AssertionCircuitError("phase-parity assertion needs >= 2 qubits")
    if len(set(qubit_list)) != len(qubit_list):
        raise AssertionCircuitError(f"duplicate qubits under test: {qubit_list}")
    if expected_parity not in (0, 1):
        raise AssertionCircuitError(
            f"expected parity must be 0 or 1, got {expected_parity}"
        )
    for qubit in qubit_list:
        circuit.qubit_index(qubit)

    tag = f"assert_xp{sum(1 for r in circuit.qregs if r.name.startswith('assert_xp'))}"
    ancilla_reg = circuit.add_qubits(1, name=tag)
    clbit_reg = circuit.add_clbits(1, name=f"{tag}_m")
    ancilla = circuit.qubit_index(ancilla_reg[0])
    clbit = circuit.clbit_index(clbit_reg[0])

    if expected_parity == 1:
        circuit.x(ancilla)
    for qubit in qubit_list:
        circuit.h(qubit)
    for qubit in qubit_list:
        circuit.cx(qubit, ancilla)
    for qubit in qubit_list:
        circuit.h(qubit)
    circuit.measure(ancilla, clbit)

    return AssertionRecord(
        kind=AssertionKind.ENTANGLEMENT,
        qubits=tuple(qubit_list),
        ancillas=(ancilla,),
        clbits=(clbit,),
        expected=(0,),
        label=label or f"xparity=={expected_parity}",
    )


def append_ghz_assertion(
    circuit: QuantumCircuit,
    qubits: Sequence[int],
    label: str = "",
) -> List[AssertionRecord]:
    """Assert the **complete** GHZ stabilizer group of ``qubits``.

    Combines the paper's pairwise Z-parity checks (``Z_i Z_{i+1}``, n-1
    ancillas) with one X-parity check (``X..X``, 1 ancilla).  A state passes
    all n checks deterministically iff it *is* the GHZ state
    ``(|0..0> + |1..1>)/sqrt(2)`` — bit flips trip a Z-pair, phase flips
    trip the X check.

    Returns
    -------
    list of AssertionRecord (n records for n tested qubits).
    """
    from repro.core.entanglement import append_entanglement_assertion

    qubit_list = [int(q) for q in qubits]
    records = append_entanglement_assertion(
        circuit, qubit_list, mode="pairwise", label=label
    )
    records.append(
        append_phase_parity_assertion(
            circuit, qubit_list, label=label or f"xparity{tuple(qubit_list)}"
        )
    )
    return records


def append_equality_assertion(
    circuit: QuantumCircuit,
    qubit_a: int,
    qubit_b: int,
    label: str = "",
) -> AssertionRecord:
    """Append a swap-test assertion that two qubits hold equal states.

    Circuit: H on the ancilla, CSWAP(ancilla; a, b), H, measure.  The
    ancilla reads 1 with probability ``(1 - |<a|b>|^2)/2``: equal states
    never trip it; orthogonal states trip it half the time (repeat runs to
    amplify confidence, as with the paper's superposition statistics).

    Unlike the CNOT-based assertions the swap test compares two *unknown*
    states — useful for checking that a state-preparation routine is
    deterministic, or that an ancilla-assisted copy (of a known basis
    state) succeeded.

    Returns
    -------
    AssertionRecord
        ``kind`` is :attr:`AssertionKind.STATE`.
    """
    a = circuit.qubit_index(qubit_a)
    b = circuit.qubit_index(qubit_b)
    if a == b:
        raise AssertionCircuitError("equality assertion needs two distinct qubits")

    tag = f"assert_eq{sum(1 for r in circuit.qregs if r.name.startswith('assert_eq'))}"
    ancilla_reg = circuit.add_qubits(1, name=tag)
    clbit_reg = circuit.add_clbits(1, name=f"{tag}_m")
    ancilla = circuit.qubit_index(ancilla_reg[0])
    clbit = circuit.clbit_index(clbit_reg[0])

    circuit.h(ancilla)
    circuit.cswap(ancilla, a, b)
    circuit.h(ancilla)
    circuit.measure(ancilla, clbit)

    return AssertionRecord(
        kind=AssertionKind.STATE,
        qubits=(a, b),
        ancillas=(ancilla,),
        clbits=(clbit,),
        expected=(0,),
        label=label or f"equal({a},{b})",
    )
