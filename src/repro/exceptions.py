"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
downstream users can catch a single base class.  Subsystems raise the more
specific subclasses defined here.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class CircuitError(ReproError):
    """Raised for invalid circuit construction or manipulation."""


class RegisterError(CircuitError):
    """Raised for invalid register definitions or out-of-range bit access."""


class GateError(CircuitError):
    """Raised for unknown gates, bad parameters, or invalid gate matrices."""


class QasmError(CircuitError):
    """Raised when OpenQASM text cannot be parsed or emitted."""


class SimulationError(ReproError):
    """Raised when a simulator cannot execute a circuit."""


class StabilizerError(SimulationError):
    """Raised when a non-Clifford operation reaches the stabilizer engine."""


class NoiseError(ReproError):
    """Raised for invalid noise channels or noise-model construction."""


class DeviceError(ReproError):
    """Raised for invalid device models or backend configuration."""


class TranspilerError(ReproError):
    """Raised when a circuit cannot be lowered to a device's constraints."""


class AnalysisError(ReproError):
    """Raised for invalid analysis inputs (non-states, bad dimensions...)."""


class AssertionCircuitError(ReproError):
    """Raised for invalid runtime-assertion construction or evaluation."""


class ExperimentError(ReproError):
    """Raised when an experiment harness is misconfigured."""


class JobError(ReproError):
    """Raised when a runtime job fails, is cancelled, or is misused."""


class QueueTimeout(JobError):
    """Raised when a scheduled batch is still *queued* past a deadline.

    Distinct from an execution timeout: the batch never reached the
    execution stack, so the caller can make an informed retry/abandon
    decision from the attached queue telemetry.

    Attributes
    ----------
    client:
        The submitting client's name.
    waited:
        Seconds the batch has been sitting in the queue.
    queue_position:
        Zero-based position within the client's queue (0 = dispatched
        next), or ``None`` when the batch already left the queue.
    queued_batches:
        Total batches queued across all clients at raise time.
    """

    def __init__(
        self,
        message: str,
        client: str = "",
        waited: float = 0.0,
        queue_position=None,
        queued_batches: int = 0,
    ) -> None:
        super().__init__(message)
        self.client = client
        self.waited = waited
        self.queue_position = queue_position
        self.queued_batches = queued_batches


class FaultInjected(ReproError):
    """Raised by a :class:`repro.faults.FaultPlan` site firing.

    Deliberately *not* a :class:`JobError`: resilience code treats it like
    any other unexpected execution failure, while tests can still assert
    the precise provenance of an injected fault.

    Attributes
    ----------
    site:
        The fault site that fired (e.g. ``"chunk.simulate"``).
    """

    def __init__(self, message: str, site: str = "") -> None:
        super().__init__(message)
        self.site = site


class CircuitOpen(JobError):
    """Raised when the scheduler's circuit breaker rejects a submission.

    The backend spec has crossed its failure-rate threshold and the
    breaker is open (or half-open with its probe slots taken): the
    submission never enters the queue, so a sick engine cannot consume
    fair-share capacity.  Retry after ``retry_after`` seconds.

    Attributes
    ----------
    backend:
        The backend spec the breaker guards.
    retry_after:
        Seconds until the breaker next admits a probe.
    """

    def __init__(self, message: str, backend: str = "",
                 retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.backend = backend
        self.retry_after = retry_after


class ServiceError(ReproError):
    """Base class for errors raised by the :mod:`repro.service` layer."""


class ServiceOverloaded(ServiceError):
    """Raised when the service sheds load instead of queueing a submission.

    Either the scheduler queue depth crossed the configured watermark or
    the service is draining for shutdown.  Transports map this to 503
    with a ``Retry-After`` header; it is *not* a client-quota rejection.

    Attributes
    ----------
    retry_after:
        Suggested seconds to wait before resubmitting.
    queue_depth:
        Batches queued across all clients at raise time.
    limit:
        The queue-depth watermark (0 when shedding for another reason).
    reason:
        ``"queue_depth"`` or ``"draining"``.
    """

    def __init__(self, message: str, retry_after: float = 1.0,
                 queue_depth: int = 0, limit: int = 0,
                 reason: str = "queue_depth") -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.queue_depth = queue_depth
        self.limit = limit
        self.reason = reason


class RegistrationConflict(ServiceError):
    """Raised when a client registration contradicts an existing one.

    Two different tokens may not register the same client name with
    conflicting ``weight``/``quota`` — the scheduler would see one client
    with ambiguous policy.  Re-registering with the *same* token is the
    explicit way to update a client's policy.

    Attributes
    ----------
    client:
        The conflicting client name.
    field:
        Which policy field disagreed (``"weight"`` or ``"quota"``).
    """

    def __init__(self, message: str, client: str = "", field: str = "") -> None:
        super().__init__(message)
        self.client = client
        self.field = field


class UnknownJob(ServiceError):
    """Raised when a job id resolves to nothing the service knows about.

    Distinct from a generic :class:`ServiceError` so transports can map it
    precisely (the HTTP front-end answers 404, not 400).

    Attributes
    ----------
    job_id:
        The id that failed to resolve.
    """

    def __init__(self, message: str, job_id: str = "") -> None:
        super().__init__(message)
        self.job_id = job_id


class ScopeDenied(ServiceError):
    """Raised when an authenticated token lacks the scope an API requires.

    Distinct from :class:`~repro.service.auth.AuthenticationError`: the
    token is valid and maps to a client, but its granted scopes (e.g.
    ``("read",)``) do not cover the operation (e.g. ``"submit"``).

    Attributes
    ----------
    client:
        The authenticated client's name.
    scope:
        The scope the operation required.
    granted:
        The scopes the token actually carries.
    """

    def __init__(self, message: str, client: str = "", scope: str = "",
                 granted=()) -> None:
        super().__init__(message)
        self.client = client
        self.scope = scope
        self.granted = tuple(granted)


class ProviderError(DeviceError):
    """Raised for unknown backend specs in the runtime provider registry."""
