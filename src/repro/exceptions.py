"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
downstream users can catch a single base class.  Subsystems raise the more
specific subclasses defined here.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class CircuitError(ReproError):
    """Raised for invalid circuit construction or manipulation."""


class RegisterError(CircuitError):
    """Raised for invalid register definitions or out-of-range bit access."""


class GateError(CircuitError):
    """Raised for unknown gates, bad parameters, or invalid gate matrices."""


class QasmError(CircuitError):
    """Raised when OpenQASM text cannot be parsed or emitted."""


class SimulationError(ReproError):
    """Raised when a simulator cannot execute a circuit."""


class StabilizerError(SimulationError):
    """Raised when a non-Clifford operation reaches the stabilizer engine."""


class NoiseError(ReproError):
    """Raised for invalid noise channels or noise-model construction."""


class DeviceError(ReproError):
    """Raised for invalid device models or backend configuration."""


class TranspilerError(ReproError):
    """Raised when a circuit cannot be lowered to a device's constraints."""


class AnalysisError(ReproError):
    """Raised for invalid analysis inputs (non-states, bad dimensions...)."""


class AssertionCircuitError(ReproError):
    """Raised for invalid runtime-assertion construction or evaluation."""


class ExperimentError(ReproError):
    """Raised when an experiment harness is misconfigured."""


class JobError(ReproError):
    """Raised when a runtime job fails, is cancelled, or is misused."""


class QueueTimeout(JobError):
    """Raised when a scheduled batch is still *queued* past a deadline.

    Distinct from an execution timeout: the batch never reached the
    execution stack, so the caller can make an informed retry/abandon
    decision from the attached queue telemetry.

    Attributes
    ----------
    client:
        The submitting client's name.
    waited:
        Seconds the batch has been sitting in the queue.
    queue_position:
        Zero-based position within the client's queue (0 = dispatched
        next), or ``None`` when the batch already left the queue.
    queued_batches:
        Total batches queued across all clients at raise time.
    """

    def __init__(
        self,
        message: str,
        client: str = "",
        waited: float = 0.0,
        queue_position=None,
        queued_batches: int = 0,
    ) -> None:
        super().__init__(message)
        self.client = client
        self.waited = waited
        self.queue_position = queue_position
        self.queued_batches = queued_batches


class ServiceError(ReproError):
    """Base class for errors raised by the :mod:`repro.service` layer."""


class ProviderError(DeviceError):
    """Raised for unknown backend specs in the runtime provider registry."""
