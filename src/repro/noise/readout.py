"""Classical readout (measurement) error.

Readout error dominates the error budget of the paper's Table 1 experiment —
the circuit has a single CNOT but still shows a 3.5 % raw error rate, which
on ibmqx4-class devices comes mostly from measurement misassignment.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import NoiseError


class ReadoutError:
    """A 2x2 confusion matrix for one qubit's measurement.

    ``matrix[recorded][true]`` is the probability of recording ``recorded``
    when the true post-measurement state is ``true``.

    Parameters
    ----------
    p0_given_1:
        Probability of recording 0 when the qubit was 1 (relaxation-flavoured
        error; usually the larger of the two on superconducting devices).
    p1_given_0:
        Probability of recording 1 when the qubit was 0.
    """

    def __init__(self, p0_given_1: float, p1_given_0: float) -> None:
        for p in (p0_given_1, p1_given_0):
            if not 0.0 <= p <= 1.0:
                raise NoiseError(f"readout probability {p} outside [0, 1]")
        self.p0_given_1 = float(p0_given_1)
        self.p1_given_0 = float(p1_given_0)

    @classmethod
    def symmetric(cls, probability: float) -> "ReadoutError":
        """Return a symmetric readout error with equal flip probabilities."""
        return cls(probability, probability)

    @property
    def matrix(self) -> np.ndarray:
        """Return the confusion matrix ``[[P(0|0), P(0|1)], [P(1|0), P(1|1)]]``."""
        return np.array(
            [
                [1.0 - self.p1_given_0, self.p0_given_1],
                [self.p1_given_0, 1.0 - self.p0_given_1],
            ]
        )

    def assignment_fidelity(self) -> float:
        """Return the average correct-assignment probability."""
        return 1.0 - 0.5 * (self.p0_given_1 + self.p1_given_0)

    def apply_to_distribution(
        self, probabilities: Sequence[float]
    ) -> np.ndarray:
        """Map a true (P(0), P(1)) pair through the confusion matrix."""
        vec = np.asarray(probabilities, dtype=float)
        if vec.shape != (2,):
            raise NoiseError("expected a length-2 probability vector")
        return self.matrix @ vec

    def scaled(self, factor: float) -> "ReadoutError":
        """Return a copy with both flip probabilities scaled (clipped to 1)."""
        if factor < 0:
            raise NoiseError("scale factor must be non-negative")
        return ReadoutError(
            min(1.0, self.p0_given_1 * factor),
            min(1.0, self.p1_given_0 * factor),
        )

    def __repr__(self) -> str:
        return (
            f"ReadoutError(p0_given_1={self.p0_given_1:g}, "
            f"p1_given_0={self.p1_given_0:g})"
        )
