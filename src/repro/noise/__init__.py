"""Noise modelling: Kraus channels, device noise models, trajectory sampling."""

from repro.noise.channels import (
    KrausChannel,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    pauli_channel,
    phase_damping,
    phase_flip,
    thermal_relaxation,
    two_qubit_depolarizing,
)
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.noise.trajectories import TrajectorySimulator

__all__ = [
    "KrausChannel",
    "NoiseModel",
    "ReadoutError",
    "TrajectorySimulator",
    "amplitude_damping",
    "bit_flip",
    "bit_phase_flip",
    "depolarizing",
    "pauli_channel",
    "phase_damping",
    "phase_flip",
    "thermal_relaxation",
    "two_qubit_depolarizing",
]
