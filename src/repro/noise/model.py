"""Device noise models.

A :class:`NoiseModel` attaches Kraus channels to gates (by name, optionally
restricted to specific qubit tuples) and :class:`ReadoutError` confusion
matrices to qubits.  The density-matrix and trajectory engines query it
through two methods:

* ``channels_for(instruction)`` — the channels to apply after a gate,
* ``readout_confusion(qubit)`` — the confusion matrix at measurement time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.instructions import Instruction
from repro.exceptions import NoiseError
from repro.noise.channels import KrausChannel
from repro.noise.readout import ReadoutError

#: Key for errors applying to a gate on any qubits.
_ANY = None


class NoiseModel:
    """Maps gates and measurements to noise processes.

    Parameters
    ----------
    name:
        Label reported in result metadata.

    Examples
    --------
    >>> from repro.noise import NoiseModel, depolarizing
    >>> model = NoiseModel("example")
    >>> model.add_gate_error("cx", two_qubit=True, channel=None)  # doctest: +SKIP
    """

    def __init__(self, name: str = "noise") -> None:
        self.name = name
        # gate name -> { qubit tuple or None: [channels] }
        self._gate_errors: Dict[str, Dict[Optional[Tuple[int, ...]], List[KrausChannel]]] = {}
        self._readout_errors: Dict[Optional[int], ReadoutError] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_all_qubit_gate_error(
        self, gate_names: Iterable[str], channel: KrausChannel
    ) -> "NoiseModel":
        """Attach ``channel`` to every occurrence of the named gates."""
        for name in gate_names:
            slot = self._gate_errors.setdefault(name.lower(), {})
            slot.setdefault(_ANY, []).append(channel)
        return self

    def add_gate_error(
        self,
        gate_name: str,
        qubits: Sequence[int],
        channel: KrausChannel,
    ) -> "NoiseModel":
        """Attach ``channel`` to the named gate on a specific qubit tuple.

        For a 1-qubit channel on a multi-qubit gate, attach per-qubit errors
        instead via :meth:`add_gate_error` with a 1-tuple, or use a channel
        whose arity matches the gate.
        """
        key = tuple(int(q) for q in qubits)
        slot = self._gate_errors.setdefault(gate_name.lower(), {})
        slot.setdefault(key, []).append(channel)
        return self

    def add_readout_error(
        self, error: ReadoutError, qubit: Optional[int] = None
    ) -> "NoiseModel":
        """Attach a readout confusion matrix (``qubit=None`` -> default)."""
        self._readout_errors[qubit] = error
        return self

    # ------------------------------------------------------------------
    # Queries (engine interface)
    # ------------------------------------------------------------------

    def channels_for(
        self, instruction: Instruction
    ) -> List[Tuple[Tuple[np.ndarray, ...], Tuple[int, ...]]]:
        """Return ``(kraus_operators, target_qubits)`` pairs for a gate.

        Channel arity is matched to the gate: an n-qubit channel applies to
        the gate's full qubit tuple; a 1-qubit channel on a multi-qubit gate
        is applied to **each** operand qubit (the usual device-model
        convention for e.g. per-qubit thermal relaxation during a CX).
        """
        slot = self._gate_errors.get(instruction.name)
        if not slot:
            return []
        channels: List[KrausChannel] = []
        channels.extend(slot.get(tuple(instruction.qubits), []))
        channels.extend(slot.get(_ANY, []))
        out: List[Tuple[Tuple[np.ndarray, ...], Tuple[int, ...]]] = []
        for channel in channels:
            if channel.num_qubits == len(instruction.qubits):
                out.append((channel.operators, tuple(instruction.qubits)))
            elif channel.num_qubits == 1:
                for qubit in instruction.qubits:
                    out.append((channel.operators, (qubit,)))
            else:
                raise NoiseError(
                    f"channel {channel.name!r} acts on {channel.num_qubits} "
                    f"qubit(s) but gate {instruction.name!r} has "
                    f"{len(instruction.qubits)} operand(s)"
                )
        return out

    def readout_confusion(self, qubit: int) -> Optional[np.ndarray]:
        """Return the confusion matrix for ``qubit`` or ``None`` if ideal."""
        error = self._readout_errors.get(qubit, self._readout_errors.get(None))
        return error.matrix if error is not None else None

    def readout_error(self, qubit: int) -> Optional[ReadoutError]:
        """Return the :class:`ReadoutError` object for ``qubit``, if any."""
        return self._readout_errors.get(qubit, self._readout_errors.get(None))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def noisy_gates(self) -> List[str]:
        """Return the gate names with attached errors."""
        return sorted(self._gate_errors)

    def is_ideal(self) -> bool:
        """Return True if no errors are attached."""
        return not self._gate_errors and not self._readout_errors

    def __repr__(self) -> str:
        return (
            f"NoiseModel({self.name!r}, gates={self.noisy_gates}, "
            f"readout_qubits={sorted(k for k in self._readout_errors if k is not None)}"
            f"{', default_readout' if _ANY in self._readout_errors or None in self._readout_errors else ''})"
        )
