"""Quantum noise channels in Kraus form.

Each constructor returns a :class:`KrausChannel` — an immutable, validated
list of Kraus operators satisfying the completeness relation
``sum_k K_k^dagger K_k = I`` (CPTP).  The density-matrix engine applies them
exactly; the trajectory engine unravels them stochastically.
"""

from __future__ import annotations

import cmath
import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import NoiseError

_PAULI = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class KrausChannel:
    """A CPTP map given by Kraus operators.

    Parameters
    ----------
    operators:
        Sequence of equal-shaped square matrices obeying the completeness
        relation.
    name:
        Human-readable channel name for reporting.
    atol:
        Tolerance for the completeness check.
    """

    def __init__(
        self,
        operators: Sequence[np.ndarray],
        name: str = "kraus",
        atol: float = 1e-8,
    ) -> None:
        ops = [np.asarray(op, dtype=complex) for op in operators]
        if not ops:
            raise NoiseError("channel requires at least one Kraus operator")
        dim = ops[0].shape[0]
        for op in ops:
            if op.ndim != 2 or op.shape != (dim, dim):
                raise NoiseError(
                    f"Kraus operators must be square and equal-shaped; got "
                    f"{[o.shape for o in ops]}"
                )
        num_qubits = int(math.log2(dim))
        if 2 ** num_qubits != dim:
            raise NoiseError(f"Kraus dimension {dim} is not a power of two")
        completeness = sum(op.conj().T @ op for op in ops)
        if not np.allclose(completeness, np.eye(dim), atol=atol):
            raise NoiseError(
                "Kraus operators do not satisfy the completeness relation"
            )
        self.operators: Tuple[np.ndarray, ...] = tuple(op.copy() for op in ops)
        self.name = name
        self.num_qubits = num_qubits

    def __iter__(self):
        return iter(self.operators)

    def __len__(self) -> int:
        return len(self.operators)

    def is_unital(self, atol: float = 1e-8) -> bool:
        """Return True if the channel maps the identity to itself."""
        dim = self.operators[0].shape[0]
        image = sum(op @ op.conj().T for op in self.operators)
        return bool(np.allclose(image, np.eye(dim), atol=atol))

    def compose(self, other: "KrausChannel") -> "KrausChannel":
        """Return ``self`` followed by ``other`` as one channel."""
        if self.num_qubits != other.num_qubits:
            raise NoiseError("cannot compose channels of different arities")
        ops = [b @ a for a in self.operators for b in other.operators]
        return KrausChannel(ops, name=f"{other.name}({self.name})")

    def __repr__(self) -> str:
        return (
            f"KrausChannel({self.name!r}, num_qubits={self.num_qubits}, "
            f"num_operators={len(self.operators)})"
        )


def _validated_probability(p: float, upper: float = 1.0) -> float:
    if not 0.0 <= p <= upper + 1e-12:
        raise NoiseError(f"probability {p} outside [0, {upper}]")
    return float(min(p, upper))


def bit_flip(probability: float) -> KrausChannel:
    """Return the bit-flip channel: X with the given probability."""
    p = _validated_probability(probability)
    return KrausChannel(
        [math.sqrt(1 - p) * _PAULI["I"], math.sqrt(p) * _PAULI["X"]],
        name=f"bit_flip({p:g})",
    )


def phase_flip(probability: float) -> KrausChannel:
    """Return the phase-flip channel: Z with the given probability."""
    p = _validated_probability(probability)
    return KrausChannel(
        [math.sqrt(1 - p) * _PAULI["I"], math.sqrt(p) * _PAULI["Z"]],
        name=f"phase_flip({p:g})",
    )


def bit_phase_flip(probability: float) -> KrausChannel:
    """Return the bit-phase-flip channel: Y with the given probability."""
    p = _validated_probability(probability)
    return KrausChannel(
        [math.sqrt(1 - p) * _PAULI["I"], math.sqrt(p) * _PAULI["Y"]],
        name=f"bit_phase_flip({p:g})",
    )


def depolarizing(probability: float) -> KrausChannel:
    """Return the single-qubit depolarizing channel.

    With probability ``p`` the state is replaced by the maximally mixed
    state; equivalently each non-identity Pauli occurs with ``p/4``.
    """
    p = _validated_probability(probability)
    return KrausChannel(
        [
            math.sqrt(1 - 3 * p / 4) * _PAULI["I"],
            math.sqrt(p / 4) * _PAULI["X"],
            math.sqrt(p / 4) * _PAULI["Y"],
            math.sqrt(p / 4) * _PAULI["Z"],
        ],
        name=f"depolarizing({p:g})",
    )


def two_qubit_depolarizing(probability: float) -> KrausChannel:
    """Return the two-qubit depolarizing channel (15 Pauli errors)."""
    p = _validated_probability(probability)
    ops: List[np.ndarray] = []
    labels = [a + b for a in "IXYZ" for b in "IXYZ"]
    for label in labels:
        weight = 1 - 15 * p / 16 if label == "II" else p / 16
        matrix = np.kron(_PAULI[label[0]], _PAULI[label[1]])
        ops.append(math.sqrt(weight) * matrix)
    return KrausChannel(ops, name=f"two_qubit_depolarizing({p:g})")


def pauli_channel(px: float, py: float, pz: float) -> KrausChannel:
    """Return the general single-qubit Pauli channel."""
    for p in (px, py, pz):
        _validated_probability(p)
    total = px + py + pz
    if total > 1.0 + 1e-12:
        raise NoiseError(f"Pauli probabilities sum to {total} > 1")
    return KrausChannel(
        [
            math.sqrt(max(0.0, 1 - total)) * _PAULI["I"],
            math.sqrt(px) * _PAULI["X"],
            math.sqrt(py) * _PAULI["Y"],
            math.sqrt(pz) * _PAULI["Z"],
        ],
        name=f"pauli({px:g},{py:g},{pz:g})",
    )


def amplitude_damping(gamma: float) -> KrausChannel:
    """Return the amplitude-damping channel (energy relaxation, T1)."""
    g = _validated_probability(gamma)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - g)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(g)], [0, 0]], dtype=complex)
    return KrausChannel([k0, k1], name=f"amplitude_damping({g:g})")


def phase_damping(lam: float) -> KrausChannel:
    """Return the phase-damping channel (pure dephasing, T2)."""
    value = _validated_probability(lam)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - value)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(value)]], dtype=complex)
    return KrausChannel([k0, k1], name=f"phase_damping({value:g})")


def thermal_relaxation(
    t1: float,
    t2: float,
    gate_time: float,
    excited_population: float = 0.0,
) -> KrausChannel:
    """Return the thermal-relaxation channel for a gate of given duration.

    Parameters
    ----------
    t1, t2:
        Relaxation and dephasing times (same unit as ``gate_time``);
        requires ``t2 <= 2 * t1``.
    gate_time:
        Duration the qubit idles/evolves under the noise.
    excited_population:
        Equilibrium |1> population (0 for a cold device).

    Notes
    -----
    Implemented as amplitude damping with ``gamma = 1 - exp(-t/T1)`` composed
    with pure dephasing chosen so the total coherence decay matches
    ``exp(-t/T2)``.
    """
    if t1 <= 0 or t2 <= 0:
        raise NoiseError("T1 and T2 must be positive")
    if t2 > 2 * t1 + 1e-12:
        raise NoiseError(f"T2 = {t2} exceeds the physical limit 2*T1 = {2 * t1}")
    if gate_time < 0:
        raise NoiseError("gate_time must be non-negative")
    if not 0.0 <= excited_population <= 1.0:
        raise NoiseError("excited_population must lie in [0, 1]")
    gamma = 1.0 - math.exp(-gate_time / t1)
    # Total off-diagonal decay must be exp(-t/T2); amplitude damping alone
    # contributes sqrt(1-gamma) = exp(-t/(2 T1)).
    # Single exponent avoids underflow when gate_time >> T1, T2.
    residual = min(1.0, math.exp(gate_time * (0.5 / t1 - 1.0 / t2)))
    lam = 1.0 - residual ** 2
    ad = _generalized_amplitude_damping(gamma, excited_population)
    pd = phase_damping(lam)
    channel = ad.compose(pd)
    return KrausChannel(
        channel.operators,
        name=f"thermal(T1={t1:g},T2={t2:g},t={gate_time:g})",
    )


def _generalized_amplitude_damping(gamma: float, p_excited: float) -> KrausChannel:
    """Return generalized amplitude damping toward a thermal population."""
    g = _validated_probability(gamma)
    p_cold = 1.0 - p_excited
    k0 = math.sqrt(p_cold) * np.array([[1, 0], [0, math.sqrt(1 - g)]], dtype=complex)
    k1 = math.sqrt(p_cold) * np.array([[0, math.sqrt(g)], [0, 0]], dtype=complex)
    k2 = math.sqrt(p_excited) * np.array(
        [[math.sqrt(1 - g), 0], [0, 1]], dtype=complex
    )
    k3 = math.sqrt(p_excited) * np.array([[0, 0], [math.sqrt(g), 0]], dtype=complex)
    ops = [k for k in (k0, k1, k2, k3) if np.any(np.abs(k) > 1e-15)]
    return KrausChannel(ops, name=f"gad({g:g},{p_excited:g})")
