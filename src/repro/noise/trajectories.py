"""Monte-Carlo quantum-trajectory simulation.

Unravels each Kraus channel stochastically on a statevector: after every
noisy gate, one Kraus operator is sampled with probability
``<psi| K^dagger K |psi>`` and applied (renormalised).  Memory scales like a
statevector instead of a density matrix, trading exactness for sampling
noise — the cross-validation benchmark (DESIGN.md A5) checks it converges to
the density-matrix engine's exact distribution.

Shots execute through :mod:`repro.simulators._batched`: by default all
trajectories of a ``max_batch`` tile evolve together along a NumPy batch
axis (``method="batched"``), with the historical per-shot walker retained
as ``method="loop"``.  Each trajectory draws from its own counter-based
Philox substream keyed by ``(seed, trajectory index)``, and both paths
consume identical substreams with identical row arithmetic — so batched
and looped counts are **bit-identical** for a fixed seed at every
``max_batch`` tiling.  Duck-typed noise models (anything that is not a
:class:`repro.noise.model.NoiseModel`) are queried per shot and therefore
always take the loop path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.results.counts import Counts
from repro.results.result import Result
from repro.simulators import _batched


class TrajectorySimulator:
    """Shot-based noisy statevector engine.

    Parameters
    ----------
    noise_model:
        The same duck-typed interface the density-matrix engine uses
        (``channels_for`` / ``readout_confusion``); ``None`` degenerates to
        ideal per-shot statevector simulation.
    method:
        ``"batched"`` evolves whole shot tiles along a NumPy batch axis,
        ``"loop"`` re-walks the circuit per shot, and ``"auto"`` (default)
        batches whenever the noise model supports it.  Counts are
        bit-identical across methods for a fixed seed.
    max_batch:
        Shot-tiling bound for the batched path (memory knob; never affects
        counts).
    """

    name = "trajectory"

    def __init__(
        self,
        noise_model=None,
        method: str = "auto",
        max_batch: int = _batched.DEFAULT_MAX_BATCH,
    ) -> None:
        self.noise_model = noise_model
        _batched.resolve_method(method, None)  # validate the name eagerly
        self.method = method
        self.max_batch = _batched.validate_max_batch(max_batch)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        seed: Optional[int] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> Result:
        """Sample ``shots`` noisy trajectories and return their counts."""
        counts, resolved = _batched.sample_shots(
            circuit,
            self.noise_model,
            shots,
            seed,
            initial_state,
            method=self.method,
            max_batch=self.max_batch,
        )
        return Result(
            counts=Counts(counts),
            shots=shots,
            metadata={
                "engine": self.name,
                "noise": getattr(self.noise_model, "name", None),
                "seed": seed,
                "method": resolved,
                "max_batch": self.max_batch,
            },
        )
