"""Monte-Carlo quantum-trajectory simulation.

Unravels each Kraus channel stochastically on a statevector: after every
noisy gate, one Kraus operator is sampled with probability
``<psi| K^dagger K |psi>`` and applied (renormalised).  Memory scales like a
statevector instead of a density matrix, trading exactness for sampling
noise — the cross-validation benchmark (DESIGN.md A5) checks it converges to
the density-matrix engine's exact distribution.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import SimulationError
from repro.results.counts import Counts
from repro.results.result import Result
from repro.simulators import _kernels


class TrajectorySimulator:
    """Shot-based noisy statevector engine.

    Parameters
    ----------
    noise_model:
        The same duck-typed interface the density-matrix engine uses
        (``channels_for`` / ``readout_confusion``); ``None`` degenerates to
        ideal per-shot statevector simulation.
    """

    name = "trajectory"

    def __init__(self, noise_model=None) -> None:
        self.noise_model = noise_model

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        seed: Optional[int] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> Result:
        """Sample ``shots`` noisy trajectories and return their counts."""
        rng = np.random.default_rng(seed)
        counts: Dict[str, int] = {}
        for _ in range(shots):
            key = self._single_shot(circuit, rng, initial_state)
            counts[key] = counts.get(key, 0) + 1
        return Result(
            counts=Counts(counts),
            shots=shots,
            metadata={
                "engine": self.name,
                "noise": getattr(self.noise_model, "name", None),
                "seed": seed,
            },
        )

    # ------------------------------------------------------------------

    def _single_shot(
        self,
        circuit: QuantumCircuit,
        rng: np.random.Generator,
        initial_state: Optional[np.ndarray],
    ) -> str:
        state = _kernels.state_tensor(circuit.num_qubits, initial_state)
        clbits = [0] * circuit.num_clbits
        for inst in circuit.data:
            if inst.name == "barrier":
                continue
            if inst.condition is not None:
                clbit, value = inst.condition
                if clbits[clbit] != value:
                    continue
            if inst.name == "measure":
                state = self._measure(state, inst, clbits, rng)
            elif inst.name == "reset":
                state = self._reset(state, inst, rng)
            else:
                state = self._noisy_gate(state, inst, rng)
        return "".join(str(b) for b in clbits)

    def _noisy_gate(self, state: np.ndarray, inst, rng: np.random.Generator) -> np.ndarray:
        op = inst.operation
        if not isinstance(op, Gate):
            raise SimulationError(f"cannot apply non-gate {op.name!r}")
        state = _kernels.apply_matrix(state, op.matrix, inst.qubits)
        if self.noise_model is None:
            return state
        for kraus, targets in self.noise_model.channels_for(inst):
            state = self._sample_kraus(state, kraus, targets, rng)
        return state

    def _sample_kraus(
        self,
        state: np.ndarray,
        kraus,
        targets,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Pick one Kraus branch with its Born probability and renormalise."""
        pick = rng.random()
        cumulative = 0.0
        candidates: List[np.ndarray] = []
        for k_op in kraus:
            branch = _kernels.apply_matrix(state, k_op, targets)
            prob = float(np.real(np.vdot(branch, branch)))
            candidates.append(branch)
            cumulative += prob
            if pick < cumulative:
                if prob <= 1e-15:
                    break
                return branch / np.sqrt(prob)
        # Float round-off: fall back to the last branch with support.
        for branch in reversed(candidates):
            prob = float(np.real(np.vdot(branch, branch)))
            if prob > 1e-15:
                return branch / np.sqrt(prob)
        raise SimulationError("Kraus sampling found no branch with support")

    def _measure(
        self,
        state: np.ndarray,
        inst,
        clbits: List[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        qubit, clbit = inst.qubits[0], inst.clbits[0]
        p1 = _kernels.probability_of_one(state, qubit)
        outcome = 1 if rng.random() < p1 else 0
        state, _ = _kernels.collapse(state, qubit, outcome)
        recorded = outcome
        if self.noise_model is not None:
            confusion = self.noise_model.readout_confusion(qubit)
            if confusion is not None:
                # confusion[r][m]: probability of recording r given true m.
                flip_prob = float(confusion[1 - outcome][outcome])
                if rng.random() < flip_prob:
                    recorded = 1 - outcome
        clbits[clbit] = recorded
        return state

    def _reset(self, state: np.ndarray, inst, rng: np.random.Generator) -> np.ndarray:
        from repro.circuits.gates import x_matrix

        qubit = inst.qubits[0]
        p1 = _kernels.probability_of_one(state, qubit)
        outcome = 1 if rng.random() < p1 else 0
        state, _ = _kernels.collapse(state, qubit, outcome)
        if outcome == 1:
            state = _kernels.apply_matrix(state, x_matrix(), [qubit])
        return state
