"""Build the overall unitary of a measurement-free circuit.

Used by the test suite to verify the paper's algebraic proofs (the assertion
circuits' claimed |psi1>..|psi4> states) and by the transpiler tests to check
unitary equivalence of rewritten circuits.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import SimulationError
from repro.simulators import _kernels


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Return the ``2^n x 2^n`` unitary implemented by ``circuit``.

    Columns follow the library's basis convention (qubit 0 most significant).

    Raises
    ------
    SimulationError
        If the circuit contains measurement, reset or conditioned gates.
    """
    n = circuit.num_qubits
    dim = 2 ** n
    # Evolve the identity matrix column-block as an (n+n)-tensor: the first n
    # axes are the "state" qubits, the last n axes index the input column.
    unitary = np.eye(dim, dtype=complex).reshape((2,) * (2 * n))
    for inst in circuit.data:
        if inst.name == "barrier":
            continue
        if inst.condition is not None or not isinstance(inst.operation, Gate):
            raise SimulationError(
                "circuit_unitary requires a purely unitary circuit; found "
                f"{inst.name!r}"
            )
        unitary = _kernels.apply_matrix(unitary, inst.operation.matrix, inst.qubits)
    return unitary.reshape(dim, dim)


def circuits_equivalent(
    first: QuantumCircuit,
    second: QuantumCircuit,
    up_to_phase: bool = True,
    atol: float = 1e-8,
) -> bool:
    """Return ``True`` if two circuits implement the same unitary.

    Parameters
    ----------
    up_to_phase:
        Ignore a global-phase difference (the physically meaningful notion).
    """
    if first.num_qubits != second.num_qubits:
        return False
    u1 = circuit_unitary(first)
    u2 = circuit_unitary(second)
    if up_to_phase:
        from repro.circuits.gates import matrices_equal_up_to_phase

        return matrices_equal_up_to_phase(u1, u2, atol=atol)
    return bool(np.allclose(u1, u2, atol=atol))
