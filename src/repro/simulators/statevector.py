"""Exact pure-state (statevector) simulation.

The engine supports the full instruction set: gates, mid-circuit measurement,
reset, barriers and classically conditioned gates.  Measurement is handled by
**branch enumeration**: instead of sampling per shot, the simulator tracks
every classical-outcome branch ``(probability, classical bits, statevector)``
exactly, then samples the final shot histogram from the exact branch
distribution.  This is both faster than per-shot reruns and gives the
experiments exact probabilities (the paper's QUIRK verifications in Figs. 6-7
rely on exact post-selected states).

For circuits with many measurements the branch count can grow as ``2^m``; the
engine falls back to per-shot Monte-Carlo simulation above ``max_branches``
branches.  The fallback runs through the shared batch-axis machinery
(:mod:`repro.simulators._batched`): all shots of a ``max_batch`` tile evolve
together (``method="batched"``), with a per-shot ``method="loop"`` walker
retained — both consume identical per-trajectory Philox substreams, so their
counts agree bit-for-bit for a fixed seed at every tiling.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.instructions import Instruction
from repro.exceptions import SimulationError
from repro.results.counts import Counts, counts_from_probabilities
from repro.results.result import Result
from repro.simulators import _batched, _kernels


class Statevector:
    """A normalised pure state on ``num_qubits`` qubits.

    Thin convenience wrapper used by tests and analysis code; the simulator
    itself works on raw tensors for speed.
    """

    def __init__(self, data: np.ndarray, num_qubits: Optional[int] = None) -> None:
        data = np.asarray(data, dtype=complex).reshape(-1)
        dim = data.shape[0]
        inferred = int(np.log2(dim)) if dim else 0
        if 2 ** inferred != dim:
            raise SimulationError(f"statevector length {dim} is not a power of two")
        if num_qubits is not None and num_qubits != inferred:
            raise SimulationError(
                f"statevector length {dim} does not match {num_qubits} qubits"
            )
        norm = np.linalg.norm(data)
        if abs(norm - 1.0) > 1e-8:
            raise SimulationError(f"statevector is not normalised (|psi| = {norm})")
        self.data = data
        self.num_qubits = inferred

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Build a product state from a label over ``01+-rl`` characters.

        ``r``/``l`` denote the +i / -i eigenstates of Y.
        """
        single = {
            "0": np.array([1, 0], dtype=complex),
            "1": np.array([0, 1], dtype=complex),
            "+": np.array([1, 1], dtype=complex) / np.sqrt(2),
            "-": np.array([1, -1], dtype=complex) / np.sqrt(2),
            "r": np.array([1, 1j], dtype=complex) / np.sqrt(2),
            "l": np.array([1, -1j], dtype=complex) / np.sqrt(2),
        }
        state = np.array([1.0 + 0.0j])
        for char in label:
            if char not in single:
                raise SimulationError(f"unknown state label character {char!r}")
            state = np.kron(state, single[char])
        return cls(state)

    def probabilities(self) -> Dict[str, float]:
        """Return basis-state probabilities keyed by bitstring."""
        probs = np.abs(self.data) ** 2
        return {
            _kernels.basis_label(i, self.num_qubits): float(p)
            for i, p in enumerate(probs)
            if p > 1e-14
        }

    def equiv(self, other: "Statevector", atol: float = 1e-8) -> bool:
        """Return ``True`` if equal to ``other`` up to global phase."""
        inner = np.vdot(self.data, other.data)
        return bool(abs(abs(inner) - 1.0) < atol)

    def __repr__(self) -> str:
        terms = []
        for i, amp in enumerate(self.data):
            if abs(amp) > 1e-12:
                terms.append(f"({amp:.4g})|{_kernels.basis_label(i, self.num_qubits)}>")
        return " + ".join(terms) if terms else "0"


class _Branch:
    """One classical-outcome branch during simulation."""

    __slots__ = ("probability", "clbits", "state")

    def __init__(
        self, probability: float, clbits: List[int], state: np.ndarray
    ) -> None:
        self.probability = probability
        self.clbits = clbits
        self.state = state


class StatevectorSimulator:
    """Exact statevector engine.

    Parameters
    ----------
    max_branches:
        Branch-enumeration cap; circuits whose measurement tree exceeds this
        fall back to per-shot sampling.
    method / max_batch:
        How the per-shot fallback executes (see
        :mod:`repro.simulators._batched`): ``"batched"`` (the ``"auto"``
        default resolves to it) evolves whole shot tiles along a NumPy
        batch axis, ``"loop"`` re-walks the circuit per shot.  Both draw
        per-trajectory Philox substreams keyed by ``(seed, shot index)``,
        so fallback counts are bit-identical across methods and
        ``max_batch`` tilings for a fixed seed.
    """

    name = "statevector"

    def __init__(
        self,
        max_branches: int = 4096,
        method: str = "auto",
        max_batch: int = _batched.DEFAULT_MAX_BATCH,
    ) -> None:
        if max_branches < 1:
            raise SimulationError("max_branches must be positive")
        self.max_branches = max_branches
        _batched.resolve_method(method, None)  # validate the name eagerly
        self.method = method
        self.max_batch = _batched.validate_max_batch(max_batch)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        seed: Optional[int] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> Result:
        """Execute ``circuit`` and return a :class:`Result`.

        The result's ``probabilities`` field holds the exact classical
        distribution whenever branch enumeration succeeded; ``counts`` holds
        a multinomial sample of ``shots`` from it.  With no measurements the
        result carries the final statevector.
        """
        rng = np.random.default_rng(seed)
        branches = self._try_enumerate(circuit, initial_state)
        if branches is not None:
            probabilities = self._branch_distribution(circuit, branches)
            counts = (
                counts_from_probabilities(probabilities, shots, rng)
                if probabilities
                else Counts()
            )
            statevector = None
            if len(branches) == 1:
                statevector = _kernels.flatten(branches[0].state).copy()
            return Result(
                counts=counts,
                shots=shots,
                statevector=statevector,
                probabilities=probabilities or None,
                metadata={"engine": self.name, "method": "branch", "seed": seed},
            )
        counts_dict, resolved = _batched.sample_shots(
            circuit,
            None,
            shots,
            seed,
            initial_state,
            method=self.method,
            max_batch=self.max_batch,
        )
        return Result(
            counts=Counts(counts_dict),
            shots=shots,
            metadata={
                "engine": self.name,
                "method": "per-shot",
                "per_shot_method": resolved,
                "max_batch": self.max_batch,
                "seed": seed,
            },
        )

    def final_statevector(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray] = None,
    ) -> Statevector:
        """Return the final state of a measurement-free circuit.

        Raises
        ------
        SimulationError
            If the circuit contains measurement, reset or conditionals.
        """
        state = _kernels.state_tensor(circuit.num_qubits, initial_state)
        for inst in circuit.data:
            if inst.name == "barrier":
                continue
            if inst.name in {"measure", "reset"} or inst.condition is not None:
                raise SimulationError(
                    "final_statevector requires a purely unitary circuit; "
                    f"found {inst.name!r} (use run() or branches() instead)"
                )
            state = self._apply_gate(state, inst)
        return Statevector(_kernels.flatten(state))

    def branches(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray] = None,
    ) -> List[Tuple[float, str, Statevector]]:
        """Return all measurement branches as ``(prob, clbit string, state)``.

        This is the exact-analysis workhorse: the Fig. 6 / Fig. 7
        reproductions inspect the post-measurement state of the qubit under
        test conditioned on the assertion ancilla's outcome.
        """
        enumerated = self._try_enumerate(circuit, initial_state)
        if enumerated is None:
            raise SimulationError(
                f"circuit exceeds the branch cap ({self.max_branches}); "
                "raise max_branches to enumerate it"
            )
        out: List[Tuple[float, str, Statevector]] = []
        for branch in enumerated:
            key = "".join(str(b) for b in branch.clbits)
            out.append(
                (
                    branch.probability,
                    key,
                    Statevector(_kernels.flatten(branch.state)),
                )
            )
        out.sort(key=lambda item: item[1])
        return out

    def exact_probabilities(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray] = None,
    ) -> Dict[str, float]:
        """Return the exact distribution over measured classical bits."""
        enumerated = self._try_enumerate(circuit, initial_state)
        if enumerated is None:
            raise SimulationError(
                f"circuit exceeds the branch cap ({self.max_branches})"
            )
        return self._branch_distribution(circuit, enumerated)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _apply_gate(self, state: np.ndarray, inst: Instruction) -> np.ndarray:
        op = inst.operation
        if not isinstance(op, Gate):
            raise SimulationError(f"cannot apply non-gate {op.name!r} unitarily")
        return _kernels.apply_matrix(state, op.matrix, inst.qubits)

    def _try_enumerate(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray],
    ) -> Optional[List[_Branch]]:
        """Enumerate measurement branches, or None if the cap is exceeded."""
        state = _kernels.state_tensor(circuit.num_qubits, initial_state)
        branches = [_Branch(1.0, [0] * circuit.num_clbits, state)]
        for inst in circuit.data:
            if inst.name == "barrier":
                continue
            new_branches: List[_Branch] = []
            for branch in branches:
                if inst.condition is not None:
                    clbit, value = inst.condition
                    if branch.clbits[clbit] != value:
                        new_branches.append(branch)
                        continue
                if inst.name == "measure":
                    new_branches.extend(self._measure_branch(branch, inst))
                elif inst.name == "reset":
                    new_branches.extend(self._reset_branch(branch, inst))
                else:
                    branch.state = self._apply_gate(branch.state, inst)
                    new_branches.append(branch)
            branches = new_branches
            if len(branches) > self.max_branches:
                return None
        return branches

    def _measure_branch(
        self, branch: _Branch, inst: Instruction
    ) -> Iterable[_Branch]:
        qubit = inst.qubits[0]
        clbit = inst.clbits[0]
        for outcome in (0, 1):
            collapsed, prob = _kernels.collapse(branch.state, qubit, outcome)
            if prob <= 1e-14:
                continue
            clbits = list(branch.clbits)
            clbits[clbit] = outcome
            yield _Branch(branch.probability * prob, clbits, collapsed)

    def _reset_branch(self, branch: _Branch, inst: Instruction) -> Iterable[_Branch]:
        qubit = inst.qubits[0]
        for outcome in (0, 1):
            collapsed, prob = _kernels.collapse(branch.state, qubit, outcome)
            if prob <= 1e-14:
                continue
            if outcome == 1:
                from repro.circuits.gates import x_matrix

                collapsed = _kernels.apply_matrix(collapsed, x_matrix(), [qubit])
            yield _Branch(branch.probability * prob, list(branch.clbits), collapsed)

    def _branch_distribution(
        self, circuit: QuantumCircuit, branches: List[_Branch]
    ) -> Dict[str, float]:
        """Aggregate branch probabilities by classical bitstring."""
        if circuit.num_clbits == 0 or not circuit.has_measurements():
            return {}
        out: Dict[str, float] = {}
        for branch in branches:
            key = "".join(str(b) for b in branch.clbits)
            out[key] = out.get(key, 0.0) + branch.probability
        return out

