"""Exact mixed-state (density-matrix) simulation with noise channels.

This engine is the substitute for the paper's IBM Q hardware runs: it applies
each gate's ideal unitary followed by the Kraus channels a
:class:`~repro.noise.model.NoiseModel` attaches to it, and models readout
error as a classical confusion process at measurement time.  Measurement uses
the same branch-enumeration strategy as the statevector engine, so the
classical-outcome distribution is **exact** — shot histograms are multinomial
samples from it, exactly like repeated runs on a (modelled) device.

The density matrix is stored as a rank-``2n`` tensor with row axes
``0..n-1`` and column axes ``n..2n-1``; axis ``k`` / ``n+k`` is qubit ``k``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.instructions import Instruction
from repro.exceptions import SimulationError
from repro.results.counts import Counts, counts_from_probabilities
from repro.results.result import Result
from repro.simulators import _kernels


class DensityMatrix:
    """A density operator on ``num_qubits`` qubits."""

    def __init__(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=complex)
        dim = data.shape[0]
        if data.ndim != 2 or data.shape != (dim, dim):
            raise SimulationError(f"density matrix must be square, got {data.shape}")
        num_qubits = int(np.log2(dim)) if dim else 0
        if 2 ** num_qubits != dim:
            raise SimulationError(f"dimension {dim} is not a power of two")
        trace = complex(np.trace(data))
        if abs(trace - 1.0) > 1e-6:
            raise SimulationError(f"density matrix trace is {trace}, expected 1")
        if not np.allclose(data, data.conj().T, atol=1e-8):
            raise SimulationError("density matrix is not Hermitian")
        self.data = data.copy()
        self.num_qubits = num_qubits

    @classmethod
    def from_statevector(cls, statevector: np.ndarray) -> "DensityMatrix":
        """Return the pure-state density matrix |psi><psi|."""
        vec = np.asarray(statevector, dtype=complex).reshape(-1)
        return cls(np.outer(vec, vec.conj()))

    def purity(self) -> float:
        """Return Tr(rho^2); 1 for pure states."""
        return float(np.real(np.trace(self.data @ self.data)))

    def probabilities(self) -> Dict[str, float]:
        """Return computational-basis probabilities keyed by bitstring."""
        diag = np.real(np.diag(self.data))
        return {
            _kernels.basis_label(i, self.num_qubits): float(p)
            for i, p in enumerate(diag)
            if p > 1e-14
        }

    def __repr__(self) -> str:
        return f"DensityMatrix(num_qubits={self.num_qubits}, purity={self.purity():.6f})"


class _Branch:
    """One classical-outcome branch: (probability, clbits, rho tensor)."""

    __slots__ = ("probability", "clbits", "rho")

    def __init__(self, probability: float, clbits: List[int], rho: np.ndarray) -> None:
        self.probability = probability
        self.clbits = clbits
        self.rho = rho


def _rho_tensor(num_qubits: int, initial: Optional[np.ndarray]) -> np.ndarray:
    dim = 2 ** num_qubits
    if initial is None:
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
    else:
        initial = np.asarray(initial, dtype=complex)
        if initial.ndim == 1:
            rho = np.outer(initial, initial.conj())
        else:
            rho = DensityMatrix(initial).data
    return rho.reshape((2,) * (2 * num_qubits))


def _apply_unitary(rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
    """Apply ``U rho U^dagger`` on the given qubits."""
    n = rho.ndim // 2
    rho = _kernels.apply_matrix(rho, matrix, qubits)
    col_axes = [n + q for q in qubits]
    return _kernels.apply_matrix(rho, matrix.conj(), col_axes)


def _apply_kraus(
    rho: np.ndarray, kraus: Sequence[np.ndarray], qubits: Sequence[int]
) -> np.ndarray:
    """Apply the channel ``sum_k K rho K^dagger`` on the given qubits."""
    n = rho.ndim // 2
    col_axes = [n + q for q in qubits]
    total = None
    for k_op in kraus:
        term = _kernels.apply_matrix(rho, k_op, qubits)
        term = _kernels.apply_matrix(term, k_op.conj(), col_axes)
        total = term if total is None else total + term
    if total is None:
        raise SimulationError("channel has no Kraus operators")
    return total


def _measure_probability(rho: np.ndarray, qubit: int, outcome: int) -> float:
    """Return P(outcome) for a computational-basis measurement."""
    n = rho.ndim // 2
    sliced = np.take(np.take(rho, outcome, axis=qubit), outcome, axis=n - 1 + qubit)
    # After the double take the remaining axes pair up as (rows, cols) of the
    # reduced operator; its trace is the diagonal sum over matching indices.
    m = n - 1
    flat = sliced.reshape(2 ** m, 2 ** m) if m else sliced.reshape(1, 1)
    return float(np.real(np.trace(flat)))


def _project(rho: np.ndarray, qubit: int, outcome: int) -> Tuple[np.ndarray, float]:
    """Project onto ``outcome`` and renormalise; returns (rho', prob)."""
    n = rho.ndim // 2
    projected = rho.copy()
    index_row = [slice(None)] * rho.ndim
    index_row[qubit] = 1 - outcome
    projected[tuple(index_row)] = 0.0
    index_col = [slice(None)] * rho.ndim
    index_col[n + qubit] = 1 - outcome
    projected[tuple(index_col)] = 0.0
    prob = _trace(projected)
    if prob <= 0.0:
        return projected, 0.0
    return projected / prob, prob


def _trace(rho: np.ndarray) -> float:
    n = rho.ndim // 2
    dim = 2 ** n
    return float(np.real(np.trace(rho.reshape(dim, dim))))


class DensityMatrixSimulator:
    """Exact density-matrix engine with optional noise.

    Parameters
    ----------
    noise_model:
        Optional :class:`~repro.noise.model.NoiseModel`.  The engine only
        relies on its ``channels_for(instruction)`` and
        ``readout_confusion(qubit)`` methods, so any duck-typed model works.
    max_branches:
        Cap on measurement branches (true-outcome x recorded-value pairs).
    """

    name = "density_matrix"

    def __init__(self, noise_model=None, max_branches: int = 4096) -> None:
        self.noise_model = noise_model
        if max_branches < 1:
            raise SimulationError("max_branches must be positive")
        self.max_branches = max_branches

    # ------------------------------------------------------------------

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        seed: Optional[int] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> Result:
        """Execute ``circuit``; exact probabilities + multinomial counts."""
        rng = np.random.default_rng(seed)
        branches = self._enumerate(circuit, initial_state)
        probabilities = self._distribution(circuit, branches)
        counts = (
            counts_from_probabilities(probabilities, shots, rng)
            if probabilities
            else Counts()
        )
        return Result(
            counts=counts,
            shots=shots,
            probabilities=probabilities or None,
            metadata={
                "engine": self.name,
                "noise": getattr(self.noise_model, "name", None),
                "seed": seed,
            },
        )

    def final_density_matrix(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray] = None,
    ) -> DensityMatrix:
        """Return the final state, averaging over measurement outcomes."""
        branches = self._enumerate(circuit, initial_state)
        n = circuit.num_qubits
        dim = 2 ** n
        total = np.zeros((dim, dim), dtype=complex)
        for branch in branches:
            total += branch.probability * branch.rho.reshape(dim, dim)
        return DensityMatrix(total)

    def conditional_density_matrix(
        self,
        circuit: QuantumCircuit,
        conditions: Dict[int, int],
        initial_state: Optional[np.ndarray] = None,
    ) -> Tuple[DensityMatrix, float]:
        """Return the state conditioned on clbit values (post-selection).

        Returns ``(state, probability_of_conditions)``.
        """
        branches = self._enumerate(circuit, initial_state)
        n = circuit.num_qubits
        dim = 2 ** n
        total = np.zeros((dim, dim), dtype=complex)
        mass = 0.0
        for branch in branches:
            if all(branch.clbits[pos] == val for pos, val in conditions.items()):
                total += branch.probability * branch.rho.reshape(dim, dim)
                mass += branch.probability
        if mass <= 1e-14:
            raise SimulationError(f"no branch satisfies conditions {conditions}")
        return DensityMatrix(total / mass), mass

    # ------------------------------------------------------------------

    def _enumerate(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray],
    ) -> List[_Branch]:
        rho = _rho_tensor(circuit.num_qubits, initial_state)
        branches = [_Branch(1.0, [0] * circuit.num_clbits, rho)]
        for inst in circuit.data:
            if inst.name == "barrier":
                continue
            new_branches: List[_Branch] = []
            for branch in branches:
                if inst.condition is not None:
                    clbit, value = inst.condition
                    if branch.clbits[clbit] != value:
                        new_branches.append(branch)
                        continue
                if inst.name == "measure":
                    new_branches.extend(self._measure(branch, inst))
                elif inst.name == "reset":
                    new_branches.append(self._reset(branch, inst))
                else:
                    branch.rho = self._apply_instruction(branch.rho, inst)
                    new_branches.append(branch)
            branches = _merge_equal_clbits(new_branches)
            if len(branches) > self.max_branches:
                raise SimulationError(
                    f"measurement branches exceed the cap ({self.max_branches})"
                )
        return branches

    def _apply_instruction(self, rho: np.ndarray, inst: Instruction) -> np.ndarray:
        op = inst.operation
        if not isinstance(op, Gate):
            raise SimulationError(f"cannot apply non-gate {op.name!r}")
        rho = _apply_unitary(rho, op.matrix, inst.qubits)
        if self.noise_model is not None:
            for kraus, targets in self.noise_model.channels_for(inst):
                rho = _apply_kraus(rho, kraus, targets)
        return rho

    def _measure(self, branch: _Branch, inst: Instruction) -> Iterable[_Branch]:
        qubit = inst.qubits[0]
        clbit = inst.clbits[0]
        confusion = None
        if self.noise_model is not None:
            confusion = self.noise_model.readout_confusion(qubit)
        for outcome in (0, 1):
            projected, prob = _project(branch.rho, qubit, outcome)
            if prob <= 1e-14:
                continue
            if confusion is None:
                record_probs = {outcome: 1.0}
            else:
                # confusion[r][m] = P(recorded r | true m)
                record_probs = {
                    recorded: float(confusion[recorded][outcome])
                    for recorded in (0, 1)
                    if confusion[recorded][outcome] > 1e-14
                }
            for recorded, record_prob in record_probs.items():
                clbits = list(branch.clbits)
                clbits[clbit] = recorded
                yield _Branch(branch.probability * prob * record_prob, clbits, projected)

    def _reset(self, branch: _Branch, inst: Instruction) -> _Branch:
        """Reset is the deterministic channel |0><0| + |0><1| rho ..."""
        from repro.circuits.gates import x_matrix

        qubit = inst.qubits[0]
        zero, p0 = _project(branch.rho, qubit, 0)
        one, p1 = _project(branch.rho, qubit, 1)
        total = None
        if p0 > 1e-14:
            total = p0 * zero
        if p1 > 1e-14:
            flipped = _apply_unitary(one, x_matrix(), [qubit])
            total = p1 * flipped if total is None else total + p1 * flipped
        branch.rho = total if total is not None else branch.rho
        return branch

    def _distribution(
        self, circuit: QuantumCircuit, branches: List[_Branch]
    ) -> Dict[str, float]:
        if circuit.num_clbits == 0 or not circuit.has_measurements():
            return {}
        out: Dict[str, float] = {}
        for branch in branches:
            key = "".join(str(b) for b in branch.clbits)
            out[key] = out.get(key, 0.0) + branch.probability
        return out


def _merge_equal_clbits(branches: List[_Branch]) -> List[_Branch]:
    """Merge branches with identical classical bits into one mixed state.

    Unlike pure states, density matrices of same-clbit branches can be merged
    exactly (convex combination), which keeps the branch count bounded by the
    number of distinct classical strings rather than the measurement tree.
    """
    by_clbits: Dict[Tuple[int, ...], _Branch] = {}
    for branch in branches:
        key = tuple(branch.clbits)
        existing = by_clbits.get(key)
        if existing is None:
            by_clbits[key] = branch
        else:
            total = existing.probability + branch.probability
            existing.rho = (
                existing.probability * existing.rho + branch.probability * branch.rho
            ) / total
            existing.probability = total
    return list(by_clbits.values())
