"""Shared numerical kernels for the statevector and density-matrix engines.

States are stored as rank-``n`` tensors of shape ``(2,) * n`` where tensor
axis ``k`` is qubit ``k``.  Flattening in C order therefore makes qubit 0 the
most-significant bit of the statevector index, matching the bitstring
convention in DESIGN.md §3.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError


def state_tensor(num_qubits: int, initial: np.ndarray = None) -> np.ndarray:
    """Return the |0...0> state tensor (or reshape a given flat vector)."""
    dim = 2 ** num_qubits
    if initial is None:
        state = np.zeros(dim, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(initial, dtype=complex).reshape(dim).copy()
        norm = np.linalg.norm(state)
        if abs(norm - 1.0) > 1e-8:
            raise SimulationError(f"initial state is not normalised (|psi| = {norm})")
    return state.reshape((2,) * num_qubits)


def apply_matrix(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` matrix to the given tensor axes of ``state``.

    Works for any rank-``n`` tensor whose axes are qubits (statevectors) —
    the density-matrix engine calls it twice, once for row axes and once for
    column axes.
    """
    k = len(qubits)
    if matrix.shape != (2 ** k, 2 ** k):
        raise SimulationError(
            f"matrix shape {matrix.shape} does not act on {k} qubit(s)"
        )
    reshaped = matrix.reshape((2,) * (2 * k))
    state = np.tensordot(reshaped, state, axes=(tuple(range(k, 2 * k)), tuple(qubits)))
    # tensordot puts the new qubit axes first; move them back home.
    return np.moveaxis(state, tuple(range(k)), tuple(qubits))


def probability_of_one(state: np.ndarray, qubit: int) -> float:
    """Return P(measuring |1>) on ``qubit`` for a statevector tensor."""
    sliced = np.take(state, 1, axis=qubit)
    return float(np.real(np.vdot(sliced, sliced)))


def collapse(state: np.ndarray, qubit: int, outcome: int) -> Tuple[np.ndarray, float]:
    """Project ``qubit`` onto ``outcome`` and renormalise.

    Returns ``(collapsed_state, probability_of_outcome)``.  The returned
    state is a fresh array; probability 0 returns a zero tensor.
    """
    if outcome not in (0, 1):
        raise SimulationError(f"measurement outcome must be 0 or 1, got {outcome}")
    projected = state.copy()
    index = [slice(None)] * state.ndim
    index[qubit] = 1 - outcome
    projected[tuple(index)] = 0.0
    norm_sq = float(np.real(np.vdot(projected, projected)))
    if norm_sq <= 0.0:
        return projected, 0.0
    return projected / np.sqrt(norm_sq), norm_sq


def flatten(state: np.ndarray) -> np.ndarray:
    """Return the flat statevector (C order: qubit 0 most significant)."""
    return state.reshape(-1)


def basis_label(index: int, num_qubits: int) -> str:
    """Return the bitstring label of basis-state ``index`` (qubit 0 first)."""
    return format(index, f"0{num_qubits}b")
