"""Shared numerical kernels for the statevector and density-matrix engines.

States are stored as rank-``n`` tensors of shape ``(2,) * n`` where tensor
axis ``k`` is qubit ``k``.  Flattening in C order therefore makes qubit 0 the
most-significant bit of the statevector index, matching the bitstring
convention in DESIGN.md §3.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError


def state_tensor(num_qubits: int, initial: np.ndarray = None) -> np.ndarray:
    """Return the |0...0> state tensor (or reshape a given flat vector)."""
    dim = 2 ** num_qubits
    if initial is None:
        state = np.zeros(dim, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(initial, dtype=complex).reshape(dim).copy()
        norm = np.linalg.norm(state)
        if abs(norm - 1.0) > 1e-8:
            raise SimulationError(f"initial state is not normalised (|psi| = {norm})")
    return state.reshape((2,) * num_qubits)


def apply_matrix(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` matrix to the given tensor axes of ``state``.

    Works for any rank-``n`` tensor whose axes are qubits (statevectors) —
    the density-matrix engine calls it twice, once for row axes and once for
    column axes.
    """
    k = len(qubits)
    if matrix.shape != (2 ** k, 2 ** k):
        raise SimulationError(
            f"matrix shape {matrix.shape} does not act on {k} qubit(s)"
        )
    reshaped = matrix.reshape((2,) * (2 * k))
    state = np.tensordot(reshaped, state, axes=(tuple(range(k, 2 * k)), tuple(qubits)))
    # tensordot puts the new qubit axes first; move them back home.
    return np.moveaxis(state, tuple(range(k)), tuple(qubits))


def probability_of_one(state: np.ndarray, qubit: int) -> float:
    """Return P(measuring |1>) on ``qubit`` for a statevector tensor."""
    sliced = np.take(state, 1, axis=qubit)
    return float(np.real(np.vdot(sliced, sliced)))


def collapse(state: np.ndarray, qubit: int, outcome: int) -> Tuple[np.ndarray, float]:
    """Project ``qubit`` onto ``outcome`` and renormalise.

    Returns ``(collapsed_state, probability_of_outcome)``.  The returned
    state is a fresh array; probability 0 returns a zero tensor.
    """
    if outcome not in (0, 1):
        raise SimulationError(f"measurement outcome must be 0 or 1, got {outcome}")
    projected = state.copy()
    index = [slice(None)] * state.ndim
    index[qubit] = 1 - outcome
    projected[tuple(index)] = 0.0
    norm_sq = float(np.real(np.vdot(projected, projected)))
    if norm_sq <= 0.0:
        return projected, 0.0
    return projected / np.sqrt(norm_sq), norm_sq


def flatten(state: np.ndarray) -> np.ndarray:
    """Return the flat statevector (C order: qubit 0 most significant)."""
    return state.reshape(-1)


def basis_label(index: int, num_qubits: int) -> str:
    """Return the bitstring label of basis-state ``index`` (qubit 0 first)."""
    return format(index, f"0{num_qubits}b")


# ----------------------------------------------------------------------
# Batched (shot-axis) kernels
# ----------------------------------------------------------------------
#
# Batched states are rank-``n+1`` tensors of shape ``(2, ..., 2, B)``:
# tensor axis ``k`` is qubit ``k`` and the **last** axis indexes the
# trajectory.  Batch-last keeps every qubit-basis slice contiguous over
# the batch, so the elementwise kernels stream long runs instead of
# strided singles.  Every kernel below is *trajectory-wise independent*:
# each trajectory's output amplitudes and norms are computed by a
# fixed-order sum over that trajectory's own amplitudes only (elementwise
# ufuncs and fixed-length axis-0 reductions, never a batch-shaped BLAS
# call), so the floats a trajectory sees are identical whether it runs in
# a batch of 1, 7 or 4096.  That invariance is what makes the engines'
# batched/looped determinism contract hold bit-for-bit (see
# :mod:`repro.simulators._batched`).

#: Born weights at or below this are treated as unsupported Kraus branches.
KRAUS_EPS = 1e-15


def batched_state_tensor(
    batch: int, num_qubits: int, initial: np.ndarray = None
) -> np.ndarray:
    """Return ``batch`` copies of the |0...0> (or given) state tensor."""
    base = flatten(state_tensor(num_qubits, initial))
    return np.repeat(base[:, np.newaxis], batch, axis=1).reshape(
        (2,) * num_qubits + (batch,)
    )


def _basis_slices(states: np.ndarray, qubits: Sequence[int], dim: int) -> list:
    """Return views of ``states`` sliced to each basis index of ``qubits``."""
    k = len(qubits)
    slices = []
    for index in range(dim):
        key: list = [slice(None)] * states.ndim
        for position, axis in enumerate(qubits):
            key[axis] = (index >> (k - 1 - position)) & 1
        slices.append(states[tuple(key)])
    return slices


def batched_apply_matrix(
    states: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` matrix to qubit axes of every batched state.

    The contraction is written as elementwise scalar-multiply-adds over
    basis-index views (no reshape copies, no BLAS): each output amplitude
    is a fixed-order ``2^k``-term sum of that trajectory's own amplitudes,
    so results are bitwise identical regardless of the batch width
    (trajectory-wise determinism; see the section note).
    """
    k = len(qubits)
    dim = 2 ** k
    if matrix.shape != (dim, dim):
        raise SimulationError(
            f"matrix shape {matrix.shape} does not act on {k} qubit(s)"
        )
    nonzero = matrix != 0
    if np.all(nonzero.sum(axis=1) == 1):
        # Monomial matrix (one nonzero per row): Pauli factors, CX/CZ/SWAP,
        # phase rotations and the scaled-identity Kraus branch that
        # dominates every weak channel.  One multiply per basis slice
        # (exact structural test — no tolerance, no batch dependence).
        columns = nonzero.argmax(axis=1)
        coefficients = matrix[np.arange(dim), columns]
        if (columns == np.arange(dim)).all() and (
            coefficients == coefficients[0]
        ).all():
            # Scalar multiple of the identity: one contiguous pass.
            return coefficients[0] * states
        sources = _basis_slices(states, qubits, dim)
        out = np.empty_like(states)
        targets = _basis_slices(out, qubits, dim)
        for i in range(dim):
            targets[i][...] = coefficients[i] * sources[columns[i]]
        return out
    sources = _basis_slices(states, qubits, dim)
    out = np.empty_like(states)
    targets = _basis_slices(out, qubits, dim)
    for i in range(dim):
        acc = matrix[i, 0] * sources[0]
        for j in range(1, dim):
            acc += matrix[i, j] * sources[j]
        targets[i][...] = acc
    return out


def batched_norm_sq(states: np.ndarray) -> np.ndarray:
    """Return each batched state's squared norm as a ``(B,)`` float array.

    ``sum(re^2) + sum(im^2)`` with each sum an ``einsum`` contraction over
    the amplitude axis: einsum accumulates the contracted index
    sequentially per output element, so the summation order a trajectory
    sees depends only on ``2^n`` — never on the batch width or memory
    layout — keeping norms bitwise batch-invariant.  (A plain
    ``.sum(axis=0)`` would not be: its pairwise blocking switches strategy
    with the array's shape.)
    """
    flat = states.reshape(-1, states.shape[-1])
    real, imag = flat.real, flat.imag
    return np.einsum("ib,ib->b", real, real) + np.einsum("ib,ib->b", imag, imag)


def batched_probability_of_one(states: np.ndarray, qubit: int) -> np.ndarray:
    """Return per-trajectory P(measuring |1>) on ``qubit`` as ``(B,)``."""
    return batched_norm_sq(np.take(states, 1, axis=qubit))


def batched_collapse(
    states: np.ndarray, qubit: int, outcomes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Project ``qubit`` onto per-trajectory ``outcomes`` and renormalise.

    ``outcomes`` is a ``(B,)`` array of 0/1.  Returns ``(collapsed,
    probabilities)`` where trajectory ``b`` was projected onto
    ``outcomes[b]``; zero-probability trajectories come back as zero
    tensors (never NaN).
    """
    batch = states.shape[-1]
    keep = np.zeros((2, batch))
    keep[outcomes, np.arange(batch)] = 1.0
    shape = [1] * states.ndim
    shape[qubit] = 2
    shape[-1] = batch
    projected = states * keep.reshape(shape)
    norm_sq = batched_norm_sq(projected)
    scale = np.ones_like(norm_sq)
    safe = norm_sq > 0.0
    scale[safe] = 1.0 / np.sqrt(norm_sq[safe])
    projected *= scale
    return projected, norm_sq


def kraus_select(weights: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """Pick one Kraus branch per trajectory from Born ``weights``.

    ``weights`` is ``(m, B)`` (branch-major), ``uniforms`` is ``(B,)``.
    Trajectory ``b`` selects the first branch ``j`` whose cumulative
    weight exceeds ``uniforms[b]``; float round-off (or a selected branch
    without support) falls back to the last branch with support.  The
    looped and batched engines share this exact decision function, so a
    trajectory's branch choice depends only on its own weights and draw.
    """
    m = weights.shape[0]
    cumulative = np.cumsum(weights, axis=0)
    choice = (cumulative <= uniforms).sum(axis=0)
    capped = np.minimum(choice, m - 1)
    columns = np.arange(weights.shape[1])
    bad = (choice >= m) | (weights[capped, columns] <= KRAUS_EPS)
    if np.any(bad):
        support = weights > KRAUS_EPS
        if not support.any(axis=0)[bad].all():
            raise SimulationError("Kraus sampling found no branch with support")
        last_supported = (m - 1) - np.argmax(support[::-1], axis=0)
        capped = np.where(bad, last_supported, capped)
    return capped


def pack_counts(clbits: np.ndarray) -> Dict[str, int]:
    """Histogram a ``(B, num_clbits)`` 0/1 matrix into bitstring counts.

    Rows are bit-packed so the unique pass runs on a handful of bytes per
    trajectory instead of Python strings — the vectorised replacement for
    the engines' old per-shot ``counts[key] = counts.get(key, 0) + 1``.
    """
    shots, width = clbits.shape
    if shots == 0:
        return {}
    if width == 0:
        return {"": int(shots)}
    packed = np.packbits(clbits.astype(np.uint8, copy=False), axis=1)
    unique, counts = np.unique(packed, axis=0, return_counts=True)
    rows = np.unpackbits(unique, axis=1, count=width)
    return {
        "".join("1" if bit else "0" for bit in row): int(count)
        for row, count in zip(rows, counts)
    }
