"""Clifford (stabilizer) simulation via the Aaronson-Gottesman tableau.

All three of the paper's assertion circuits — classical-value (CNOT),
entanglement (CNOT parity) and equal-superposition (CNOT/H sandwich) — are
Clifford circuits, as are the GHZ/Bell workloads they guard.  The tableau
representation therefore lets the scaling benchmarks (DESIGN.md experiment
A2) run the full assertion pipeline on hundreds of qubits in milliseconds,
far beyond the statevector engine's reach.

The implementation follows Aaronson & Gottesman, "Improved simulation of
stabilizer circuits" (PRA 70, 052328, 2004): a binary tableau of 2n+1 rows
(destabilizers, stabilizers, scratch) over columns ``x | z | r``.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import is_clifford_gate
from repro.exceptions import StabilizerError
from repro.results.counts import Counts
from repro.results.result import Result


class StabilizerState:
    """A stabilizer state on ``num_qubits`` qubits.

    Attributes
    ----------
    x, z:
        ``(2n+1, n)`` binary matrices: row i's Pauli has an X (Z) factor on
        qubit j iff ``x[i, j]`` (``z[i, j]``).  Rows 0..n-1 are destabilizers,
        rows n..2n-1 stabilizers, row 2n is scratch space.
    r:
        ``(2n+1,)`` sign bits (1 means the row's Pauli carries a - sign).
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise StabilizerError("need at least one qubit")
        self.num_qubits = num_qubits
        size = 2 * num_qubits + 1
        self.x = np.zeros((size, num_qubits), dtype=np.uint8)
        self.z = np.zeros((size, num_qubits), dtype=np.uint8)
        self.r = np.zeros(size, dtype=np.uint8)
        for i in range(num_qubits):
            self.x[i, i] = 1              # destabilizer X_i
            self.z[num_qubits + i, i] = 1  # stabilizer Z_i

    # ------------------------------------------------------------------
    # Gate actions
    # ------------------------------------------------------------------

    def apply_h(self, q: int) -> None:
        """Apply a Hadamard gate: swap X and Z columns, update phases."""
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def apply_s(self, q: int) -> None:
        """Apply the phase gate S."""
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def apply_sdg(self, q: int) -> None:
        """Apply S-dagger (S three times in the Clifford group mod phase)."""
        self.apply_s(q)
        self.apply_z(q)

    def apply_x(self, q: int) -> None:
        """Apply Pauli-X: flips the sign of rows with a Z on q."""
        self.r ^= self.z[:, q]

    def apply_z(self, q: int) -> None:
        """Apply Pauli-Z: flips the sign of rows with an X on q."""
        self.r ^= self.x[:, q]

    def apply_y(self, q: int) -> None:
        """Apply Pauli-Y = iXZ."""
        self.r ^= self.x[:, q] ^ self.z[:, q]

    def apply_sx(self, q: int) -> None:
        """Apply sqrt(X) = H S H (up to global phase)."""
        self.apply_h(q)
        self.apply_s(q)
        self.apply_h(q)

    def apply_sxdg(self, q: int) -> None:
        """Apply the inverse sqrt(X)."""
        self.apply_h(q)
        self.apply_sdg(q)
        self.apply_h(q)

    def apply_cx(self, control: int, target: int) -> None:
        """Apply CNOT per the Aaronson-Gottesman update rule."""
        self.r ^= (
            self.x[:, control]
            & self.z[:, target]
            & (self.x[:, target] ^ self.z[:, control] ^ 1)
        )
        self.x[:, target] ^= self.x[:, control]
        self.z[:, control] ^= self.z[:, target]

    def apply_cz(self, control: int, target: int) -> None:
        """Apply controlled-Z via H-conjugated CNOT."""
        self.apply_h(target)
        self.apply_cx(control, target)
        self.apply_h(target)

    def apply_cy(self, control: int, target: int) -> None:
        """Apply controlled-Y via S-conjugated CNOT."""
        self.apply_sdg(target)
        self.apply_cx(control, target)
        self.apply_s(target)

    def apply_swap(self, a: int, b: int) -> None:
        """Apply SWAP as three CNOTs."""
        self.apply_cx(a, b)
        self.apply_cx(b, a)
        self.apply_cx(a, b)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def measure(self, q: int, rng: np.random.Generator) -> int:
        """Measure qubit ``q`` in the computational basis, collapsing it."""
        n = self.num_qubits
        stab_rows = np.nonzero(self.x[n : 2 * n, q])[0]
        if stab_rows.size:
            # Random outcome: some stabilizer anticommutes with Z_q.
            p = int(stab_rows[0]) + n
            for i in range(2 * n):
                if i != p and self.x[i, q]:
                    self._rowsum(i, p)
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, q] = 1
            outcome = int(rng.integers(0, 2))
            self.r[p] = outcome
            return outcome
        # Deterministic outcome: compute the sign of Z_q in the stabilizer.
        scratch = 2 * n
        self.x[scratch] = 0
        self.z[scratch] = 0
        self.r[scratch] = 0
        for i in range(n):
            if self.x[i, q]:
                self._rowsum(scratch, i + n)
        return int(self.r[scratch])

    def expectation_z(self, q: int) -> Optional[int]:
        """Return +-1 if <Z_q> is deterministic, else None."""
        n = self.num_qubits
        if np.any(self.x[n : 2 * n, q]):
            return None
        scratch = 2 * n
        self.x[scratch] = 0
        self.z[scratch] = 0
        self.r[scratch] = 0
        for i in range(n):
            if self.x[i, q]:
                self._rowsum(scratch, i + n)
        return -1 if self.r[scratch] else 1

    def _rowsum(self, h: int, i: int) -> None:
        """Set row h to row h * row i, tracking the phase exactly."""
        # Phase exponent of i^k when multiplying single-qubit Paulis:
        x1, z1 = self.x[i].astype(np.int8), self.z[i].astype(np.int8)
        x2, z2 = self.x[h].astype(np.int8), self.z[h].astype(np.int8)
        g = (
            x1 * z1 * (z2 - x2)
            + x1 * (1 - z1) * z2 * (2 * x2 - 1)
            + (1 - x1) * z1 * x2 * (1 - 2 * z2)
        )
        total = 2 * int(self.r[h]) + 2 * int(self.r[i]) + int(g.sum())
        self.r[h] = (total % 4) // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    def copy(self) -> "StabilizerState":
        """Return an independent snapshot of the tableau."""
        clone = StabilizerState.__new__(StabilizerState)
        clone.num_qubits = self.num_qubits
        clone.x = self.x.copy()
        clone.z = self.z.copy()
        clone.r = self.r.copy()
        return clone

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stabilizer_strings(self) -> List[str]:
        """Return the stabilizer generators as signed Pauli strings."""
        n = self.num_qubits
        out = []
        for i in range(n, 2 * n):
            sign = "-" if self.r[i] else "+"
            paulis = []
            for q in range(n):
                x_bit, z_bit = self.x[i, q], self.z[i, q]
                paulis.append("IXZY"[x_bit + 2 * z_bit] if x_bit + 2 * z_bit != 3 else "Y")
            out.append(sign + "".join(paulis))
        return out


_ONE_QUBIT_APPLIERS = {
    "id": lambda state, q: None,
    "x": StabilizerState.apply_x,
    "y": StabilizerState.apply_y,
    "z": StabilizerState.apply_z,
    "h": StabilizerState.apply_h,
    "s": StabilizerState.apply_s,
    "sdg": StabilizerState.apply_sdg,
    "sx": StabilizerState.apply_sx,
    "sxdg": StabilizerState.apply_sxdg,
}

_TWO_QUBIT_APPLIERS = {
    "cx": StabilizerState.apply_cx,
    "cy": StabilizerState.apply_cy,
    "cz": StabilizerState.apply_cz,
    "swap": StabilizerState.apply_swap,
}


class StabilizerSimulator:
    """Shot-based Clifford simulator.

    Unlike the statevector/density-matrix engines this simulator is
    per-shot (tableau evolution is cheap), so the returned counts are true
    Monte-Carlo samples.  The deterministic unitary prefix — everything up
    to the first measurement, reset or conditional — is evolved **once**
    per :meth:`run` and snapshotted; each shot then copies the snapshot
    and replays only the stochastic suffix, so circuits whose measurements
    are terminal (the common case) stop paying the full tableau rebuild
    per shot.  The split never touches the random stream (gates consume no
    entropy), so counts are bit-identical to the unhoisted loop for a
    fixed seed.
    """

    name = "stabilizer"

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        seed: Optional[int] = None,
    ) -> Result:
        """Execute a Clifford circuit and return sampled counts.

        Raises
        ------
        StabilizerError
            If the circuit contains a non-Clifford gate.
        """
        self._validate(circuit)
        rng = np.random.default_rng(seed)
        prefix, suffix = self._split_deterministic_prefix(circuit)
        base: Optional[StabilizerState] = None
        if prefix and shots > 0:
            base = StabilizerState(circuit.num_qubits)
            self._execute_instructions(prefix, base, rng, [0] * circuit.num_clbits)
        counter: Counter = Counter()
        for _ in range(shots):
            state = base.copy() if base is not None else StabilizerState(circuit.num_qubits)
            clbits = [0] * circuit.num_clbits
            self._execute_instructions(suffix, state, rng, clbits)
            counter["".join(str(b) for b in clbits)] += 1
        return Result(
            counts=Counts(dict(counter)),
            shots=shots,
            metadata={"engine": self.name, "seed": seed},
        )

    def final_state(
        self,
        circuit: QuantumCircuit,
        seed: Optional[int] = None,
    ) -> StabilizerState:
        """Run once and return the final tableau (measurements sampled)."""
        self._validate(circuit)
        rng = np.random.default_rng(seed)
        state = StabilizerState(circuit.num_qubits)
        self._execute_instructions(circuit.data, state, rng, [0] * circuit.num_clbits)
        return state

    # ------------------------------------------------------------------

    def _validate(self, circuit: QuantumCircuit) -> None:
        for inst in circuit.data:
            if inst.name in {"measure", "reset", "barrier"}:
                continue
            if inst.name in {"rz", "p", "u1"}:
                if is_clifford_gate(inst.operation):
                    continue
                raise StabilizerError(
                    f"rotation {inst.name}({inst.operation.params[0]:.4f}) is "
                    "not a Clifford gate"
                )
            if (
                inst.name not in _ONE_QUBIT_APPLIERS
                and inst.name not in _TWO_QUBIT_APPLIERS
            ):
                raise StabilizerError(f"non-Clifford gate {inst.name!r}")

    @staticmethod
    def _split_deterministic_prefix(circuit: QuantumCircuit):
        """Split ``circuit.data`` into (deterministic prefix, per-shot suffix).

        The prefix holds the leading unconditional gates — everything before
        the first measurement, reset or classically conditioned instruction —
        whose tableau evolution is identical for every shot.
        """
        data = list(circuit.data)
        split = 0
        for inst in data:
            if (
                inst.name in {"measure", "reset"}
                or inst.condition is not None
            ):
                break
            split += 1
        return data[:split], data[split:]

    def _execute_instructions(
        self,
        instructions,
        state: StabilizerState,
        rng: np.random.Generator,
        clbits: List[int],
    ) -> None:
        for inst in instructions:
            if inst.name == "barrier":
                continue
            if inst.condition is not None:
                clbit, value = inst.condition
                if clbits[clbit] != value:
                    continue
            if inst.name == "measure":
                clbits[inst.clbits[0]] = state.measure(inst.qubits[0], rng)
            elif inst.name == "reset":
                if state.measure(inst.qubits[0], rng) == 1:
                    state.apply_x(inst.qubits[0])
            elif inst.name in _ONE_QUBIT_APPLIERS:
                applier = _ONE_QUBIT_APPLIERS[inst.name]
                if applier is not None:
                    applier(state, inst.qubits[0])
            elif inst.name in {"rz", "p", "u1"}:
                self._apply_phase_rotation(state, inst)
            elif inst.name in _TWO_QUBIT_APPLIERS:
                _TWO_QUBIT_APPLIERS[inst.name](state, inst.qubits[0], inst.qubits[1])
            else:  # pragma: no cover - _validate guards this
                raise StabilizerError(f"non-Clifford gate {inst.name!r}")

    def _apply_phase_rotation(self, state: StabilizerState, inst) -> None:
        """Apply rz/p/u1 with an angle that is a multiple of pi/2."""
        import math

        angle = inst.operation.params[0] % (2.0 * math.pi)
        quarter_turns = round(angle / (math.pi / 2.0)) % 4
        q = inst.qubits[0]
        if quarter_turns == 1:
            state.apply_s(q)
        elif quarter_turns == 2:
            state.apply_z(q)
        elif quarter_turns == 3:
            state.apply_sdg(q)
