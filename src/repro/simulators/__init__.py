"""Simulation engines.

Four engines with one convention (DESIGN.md §3: qubit 0 is the most
significant statevector bit):

* :class:`~repro.simulators.statevector.StatevectorSimulator` — exact pure
  states, branch-enumerated measurement (the "QUIRK" substrate).
* :class:`~repro.simulators.density_matrix.DensityMatrixSimulator` — exact
  mixed states with Kraus channels (the "IBM Q" substrate).
* :class:`~repro.simulators.stabilizer.StabilizerSimulator` — CHP tableau,
  Clifford-only, scales to hundreds of qubits.
* :func:`~repro.simulators.unitary.circuit_unitary` — builds the whole
  circuit unitary for algebraic verification.

These classes are the low-level engines.  For running circuits — and
especially batches of them — prefer the :mod:`repro.runtime` layer:
``repro.runtime.execute(circuits, backend, shots, seed)`` resolves backends
by name (``repro.runtime.get_backend``), fans jobs out over a thread pool,
deduplicates identical circuits, and caches device transpilation, while
reproducing exactly the counts a direct engine ``run()`` would return for
the same seed.
"""

from repro.simulators.statevector import StatevectorSimulator, Statevector
from repro.simulators.density_matrix import DensityMatrixSimulator, DensityMatrix
from repro.simulators.stabilizer import StabilizerSimulator
from repro.simulators.unitary import circuit_unitary
from repro.simulators.postselection import (
    postselect_statevector,
    postselected_statevector_after,
)

__all__ = [
    "DensityMatrix",
    "DensityMatrixSimulator",
    "StabilizerSimulator",
    "Statevector",
    "StatevectorSimulator",
    "circuit_unitary",
    "postselect_statevector",
    "postselected_statevector_after",
]
