"""Batch-axis trajectory execution shared by the sampling engines.

This module is the machinery behind ``method="batched"`` on the
:class:`~repro.noise.trajectories.TrajectorySimulator` and the statevector
engine's post-``max_branches`` per-shot fallback: instead of re-walking the
circuit once per shot in Python, all shots of a (sub-)batch evolve together
as one batch-last ``(2, ..., 2, B)`` state tensor through the batched
kernels in :mod:`repro.simulators._kernels`.  Classically conditioned instructions are
handled by masking the rows whose classical bits do not match; memory is
bounded by tiling the shots into ``max_batch``-sized sub-batches.

Determinism contract (batch-width invariant by construction)
------------------------------------------------------------
Every trajectory draws from its **own counter-based substream**: shot ``t``
of a run seeded ``s`` uses ``Philox(SeedSequence(s).spawn(shots)[t])``, and
consumes one uniform per stochastic decision it actually executes (Kraus
branch choice, measurement outcome, readout flip, reset), in program order.
The batched path pre-generates each trajectory's uniforms and advances a
per-row cursor; the retained loop path (``method="loop"``, also the
fallback for duck-typed noise models) draws the same uniforms sequentially
from the same substream.  Both paths share the per-trajectory decision
arithmetic (the batched kernels are row-wise bitwise deterministic, and the
loop path runs them at batch width 1), so batched and looped counts are
bit-identical for a fixed seed at **every** ``max_batch`` tiling — which is
what lets the runtime's chunk-seed plan, dedup and cost model treat
``method`` and ``max_batch`` as pure throughput knobs.

The loop fallback is taken when the noise model is duck-typed (anything
that is not a :class:`repro.noise.model.NoiseModel`): its ``channels_for``
may be stateful, so it must be queried per shot exactly as the historical
engine did.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.gates import Gate, x_matrix
from repro.exceptions import SimulationError
from repro.simulators import _kernels

#: Selectable execution methods for the sampling engines.
METHODS = ("auto", "batched", "loop")

#: Default shot-tiling bound: big enough to amortise kernel dispatch,
#: small enough that ``B * 2^n`` (plus one Kraus branch copy per operator)
#: stays cache- and memory-friendly for the paper's circuit sizes.
DEFAULT_MAX_BATCH = 1024

_GATE = "gate"
_KRAUS = "kraus"
_MEASURE = "measure"
_RESET = "reset"


def supports_batching(noise_model) -> bool:
    """Return ``True`` when ``noise_model`` is safe to query once per run.

    The batched path asks the model for each instruction's channels a
    single time and replays the answer across all shots, so it requires
    the repo's pure :class:`~repro.noise.model.NoiseModel` (or no noise at
    all).  Arbitrary duck-typed models may be stateful and take the loop
    fallback instead.
    """
    if noise_model is None:
        return True
    from repro.noise.model import NoiseModel

    return isinstance(noise_model, NoiseModel)


def resolve_method(method: str, noise_model) -> str:
    """Map a ``method`` argument to the concrete path (``batched``/``loop``)."""
    if method not in METHODS:
        raise SimulationError(
            f"unknown method {method!r}; choose from {list(METHODS)}"
        )
    if method == "loop":
        return "loop"
    if supports_batching(noise_model):
        return "batched"
    if method == "batched":
        raise SimulationError(
            "method='batched' requires a repro NoiseModel (duck-typed noise "
            "models are queried per shot and must use method='loop')"
        )
    return "loop"


def validate_max_batch(max_batch: int) -> int:
    if int(max_batch) < 1:
        raise SimulationError(f"max_batch must be positive, got {max_batch}")
    return int(max_batch)


def spawn_substreams(seed: Optional[int], shots: int) -> List[np.random.SeedSequence]:
    """Return one child :class:`~numpy.random.SeedSequence` per trajectory.

    Substream ``t`` depends only on ``(seed, t)`` — never on how shots are
    tiled into batches — which is the root of the batch-width-invariance
    contract.  ``seed=None`` draws fresh OS entropy for the root.
    """
    root = np.random.SeedSequence(seed)
    return root.spawn(shots) if shots > 0 else []


def substream_generator(child: np.random.SeedSequence) -> np.random.Generator:
    """Return the counter-based generator of one trajectory substream."""
    return np.random.Generator(np.random.Philox(child))


# ----------------------------------------------------------------------
# Program construction (batched path)
# ----------------------------------------------------------------------


def build_program(circuit, noise_model) -> List[tuple]:
    """Compile ``circuit.data`` to a flat step list for the batched walker.

    Each step is ``(kind, ..., condition)``; the noise model is queried
    exactly once per instruction (it must therefore pass
    :func:`supports_batching`).  Raises on non-gate unitaries, exactly as
    the per-shot walker would.
    """
    steps: List[tuple] = []
    for inst in circuit.data:
        if inst.name == "barrier":
            continue
        condition = inst.condition
        if inst.name == "measure":
            qubit, clbit = inst.qubits[0], inst.clbits[0]
            confusion = (
                noise_model.readout_confusion(qubit)
                if noise_model is not None
                else None
            )
            steps.append((_MEASURE, qubit, clbit, confusion, condition))
        elif inst.name == "reset":
            steps.append((_RESET, inst.qubits[0], condition))
        else:
            op = inst.operation
            if not isinstance(op, Gate):
                raise SimulationError(f"cannot apply non-gate {op.name!r}")
            steps.append((_GATE, op.matrix, tuple(inst.qubits), condition))
            if noise_model is not None:
                for kraus, targets in noise_model.channels_for(inst):
                    steps.append((_KRAUS, tuple(kraus), tuple(targets), condition))
    return steps


def _max_draws(steps: List[tuple]) -> int:
    """Upper bound on the uniforms any one trajectory consumes."""
    draws = 0
    for step in steps:
        if step[0] == _MEASURE:
            draws += 1 + (1 if step[3] is not None else 0)
        elif step[0] in (_RESET, _KRAUS):
            draws += 1
    return draws


# ----------------------------------------------------------------------
# Batched execution
# ----------------------------------------------------------------------


def _apply_rows(states, rows, new_rows) -> np.ndarray:
    """Write the processed subset back (whole-batch writes skip the copy).

    The batch axis is the states' **last** axis (see the kernels module).
    """
    if rows.shape[0] == states.shape[-1]:
        return new_rows
    states[..., rows] = new_rows
    return states


def _sample_kraus_rows(sub, operators, targets, uniforms):
    """Vectorised per-trajectory Kraus unravelling for one channel.

    All operator weights are computed batched (every branch tensor is
    live until selection — peak memory is ``m + 2`` state tensors), then
    each trajectory takes its sampled branch (shared
    :func:`_kernels.kraus_select` decision) and renormalises by that
    branch's Born weight.  Rows are assembled per-branch so no
    additional ``(m, B, ...)`` stack is materialised on top.
    """
    branches = [
        _kernels.batched_apply_matrix(sub, k_op, targets) for k_op in operators
    ]
    weights = np.stack([_kernels.batched_norm_sq(branch) for branch in branches])
    choice = _kernels.kraus_select(weights, uniforms)
    out = np.empty_like(sub)
    for index, branch in enumerate(branches):
        rows = np.nonzero(choice == index)[0]
        if rows.size:
            out[..., rows] = branch[..., rows] / np.sqrt(weights[index, rows])
    return out


def run_batched(
    steps: List[tuple],
    num_qubits: int,
    num_clbits: int,
    children: List[np.random.SeedSequence],
    initial_state: Optional[np.ndarray],
    max_batch: int = DEFAULT_MAX_BATCH,
) -> Dict[str, int]:
    """Simulate every trajectory substream in ``max_batch``-sized tiles."""
    counts: Dict[str, int] = {}
    draws = _max_draws(steps)
    for start in range(0, len(children), max_batch):
        tile = children[start : start + max_batch]
        batch = len(tile)
        if draws:
            uniforms = np.empty((batch, draws))
            for row, child in enumerate(tile):
                uniforms[row] = substream_generator(child).random(draws)
        else:
            uniforms = np.empty((batch, 0))
        cursor = np.zeros(batch, dtype=np.intp)
        states = _kernels.batched_state_tensor(batch, num_qubits, initial_state)
        clbits = np.zeros((batch, num_clbits), dtype=np.uint8)
        all_rows = np.arange(batch)

        def take(rows):
            values = uniforms[rows, cursor[rows]]
            cursor[rows] += 1
            return values

        for step in steps:
            condition = step[-1]
            if condition is None:
                rows = all_rows
            else:
                clbit, value = condition
                rows = np.nonzero(clbits[:, clbit] == value)[0]
                if rows.shape[0] == 0:
                    continue
            kind = step[0]
            if kind == _GATE:
                _, matrix, qubits, _ = step
                sub = states if rows is all_rows else states[..., rows]
                states = _apply_rows(
                    states, rows, _kernels.batched_apply_matrix(sub, matrix, qubits)
                )
            elif kind == _KRAUS:
                _, operators, targets, _ = step
                sub = states if rows is all_rows else states[..., rows]
                states = _apply_rows(
                    states, rows, _sample_kraus_rows(sub, operators, targets, take(rows))
                )
            elif kind == _MEASURE:
                _, qubit, clbit, confusion, _ = step
                sub = states if rows is all_rows else states[..., rows]
                p_one = _kernels.batched_probability_of_one(sub, qubit)
                outcomes = (take(rows) < p_one).astype(np.uint8)
                collapsed, _ = _kernels.batched_collapse(sub, qubit, outcomes)
                states = _apply_rows(states, rows, collapsed)
                recorded = outcomes
                if confusion is not None:
                    flip_prob = np.where(
                        outcomes == 1, confusion[0][1], confusion[1][0]
                    )
                    flips = (take(rows) < flip_prob).astype(np.uint8)
                    recorded = outcomes ^ flips
                clbits[rows, clbit] = recorded
            elif kind == _RESET:
                _, qubit, _ = step
                sub = states if rows is all_rows else states[..., rows]
                p_one = _kernels.batched_probability_of_one(sub, qubit)
                outcomes = (take(rows) < p_one).astype(np.uint8)
                collapsed, _ = _kernels.batched_collapse(sub, qubit, outcomes)
                ones = np.nonzero(outcomes == 1)[0]
                if ones.shape[0]:
                    collapsed[..., ones] = _kernels.batched_apply_matrix(
                        collapsed[..., ones], x_matrix(), [qubit]
                    )
                states = _apply_rows(states, rows, collapsed)
        for key, value in _kernels.pack_counts(clbits).items():
            counts[key] = counts.get(key, 0) + value
    return counts


# ----------------------------------------------------------------------
# Retained loop path (batch width 1, identical substreams)
# ----------------------------------------------------------------------


def run_loop(
    circuit,
    noise_model,
    children: List[np.random.SeedSequence],
    initial_state: Optional[np.ndarray],
) -> Dict[str, int]:
    """Per-shot walker consuming the same substreams as the batched path.

    Kept as the reference implementation and the fallback for duck-typed
    noise models (queried per shot).  It runs the *batched* kernels at
    batch width 1 and shares the Kraus decision function, so its counts
    are bit-identical to :func:`run_batched` for a fixed seed.
    """
    from collections import Counter

    counts: Counter = Counter()
    for child in children:
        rng = substream_generator(child)
        counts[_loop_shot(circuit, noise_model, rng, initial_state)] += 1
    return dict(counts)


def _loop_shot(circuit, noise_model, rng, initial_state) -> str:
    state = _kernels.batched_state_tensor(1, circuit.num_qubits, initial_state)
    clbits = [0] * circuit.num_clbits
    for inst in circuit.data:
        if inst.name == "barrier":
            continue
        if inst.condition is not None:
            clbit, value = inst.condition
            if clbits[clbit] != value:
                continue
        if inst.name == "measure":
            state = _loop_measure(state, inst, clbits, noise_model, rng)
        elif inst.name == "reset":
            state = _loop_reset(state, inst, rng)
        else:
            op = inst.operation
            if not isinstance(op, Gate):
                raise SimulationError(f"cannot apply non-gate {op.name!r}")
            state = _kernels.batched_apply_matrix(state, op.matrix, inst.qubits)
            if noise_model is not None:
                for kraus, targets in noise_model.channels_for(inst):
                    state = _loop_sample_kraus(
                        state, tuple(kraus), tuple(targets), rng.random()
                    )
    return "".join(str(b) for b in clbits)


def _loop_sample_kraus(state, operators, targets, uniform):
    """Early-exiting scalar twin of :func:`_sample_kraus_rows`.

    Applies operators only until the sampled branch is found (usually the
    first, high-weight one), instead of materialising all ``m`` branches
    per shot.  Decision-equivalent to :func:`_kernels.kraus_select`
    bit-for-bit: the cumulative partial sums are the same float64
    sequence, the first branch whose cumulative weight exceeds the draw
    wins, and the round-off / zero-weight fallback (which does need every
    weight) picks the last branch with support.
    """
    cumulative = 0.0
    branches = []
    weights = []
    for k_op in operators:
        branch = _kernels.batched_apply_matrix(state, k_op, targets)
        weight = float(_kernels.batched_norm_sq(branch)[0])
        branches.append(branch)
        weights.append(weight)
        cumulative += weight
        if uniform < cumulative:
            if weight > _kernels.KRAUS_EPS:
                return branch / np.sqrt(weight)
            break  # selected a zero-weight branch: take the fallback
    for k_op in operators[len(branches):]:
        branch = _kernels.batched_apply_matrix(state, k_op, targets)
        branches.append(branch)
        weights.append(float(_kernels.batched_norm_sq(branch)[0]))
    for branch, weight in zip(reversed(branches), reversed(weights)):
        if weight > _kernels.KRAUS_EPS:
            return branch / np.sqrt(weight)
    raise SimulationError("Kraus sampling found no branch with support")


def _loop_measure(state, inst, clbits, noise_model, rng):
    qubit, clbit = inst.qubits[0], inst.clbits[0]
    p_one = _kernels.batched_probability_of_one(state, qubit)[0]
    outcome = 1 if rng.random() < p_one else 0
    state, _ = _kernels.batched_collapse(state, qubit, np.array([outcome], dtype=np.uint8))
    recorded = outcome
    if noise_model is not None:
        confusion = noise_model.readout_confusion(qubit)
        if confusion is not None:
            flip_prob = confusion[1 - outcome][outcome]
            if rng.random() < flip_prob:
                recorded = 1 - outcome
    clbits[clbit] = recorded
    return state


def _loop_reset(state, inst, rng):
    qubit = inst.qubits[0]
    p_one = _kernels.batched_probability_of_one(state, qubit)[0]
    outcome = 1 if rng.random() < p_one else 0
    state, _ = _kernels.batched_collapse(state, qubit, np.array([outcome], dtype=np.uint8))
    if outcome == 1:
        state = _kernels.batched_apply_matrix(state, x_matrix(), [qubit])
    return state


# ----------------------------------------------------------------------
# Engine entry point
# ----------------------------------------------------------------------


def sample_shots(
    circuit,
    noise_model,
    shots: int,
    seed: Optional[int],
    initial_state: Optional[np.ndarray],
    method: str = "auto",
    max_batch: int = DEFAULT_MAX_BATCH,
) -> Tuple[Dict[str, int], str]:
    """Sample ``shots`` trajectories; returns ``(counts, resolved method)``.

    The one entry point both sampling engines call: resolves ``method``,
    spawns the per-trajectory substreams, and dispatches to the batched or
    loop walker — whose counts agree bit-for-bit wherever both apply.
    """
    resolved = resolve_method(method, noise_model)
    max_batch = validate_max_batch(max_batch)
    children = spawn_substreams(seed, shots)
    if resolved == "batched":
        steps = build_program(circuit, noise_model)
        counts = run_batched(
            steps,
            circuit.num_qubits,
            circuit.num_clbits,
            children,
            initial_state,
            max_batch,
        )
    else:
        counts = run_loop(circuit, noise_model, children, initial_state)
    return counts, resolved
