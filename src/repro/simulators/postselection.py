"""QUIRK-style post-selection.

The paper's simulator experiments (Figs. 6-7) use QUIRK's *post-select*
operator: keep only the measurement branches where a given qubit reads a
given value, then inspect the surviving (renormalised) state.  These helpers
replicate that operator on top of the statevector engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.simulators import _kernels
from repro.simulators.statevector import Statevector, StatevectorSimulator


def postselect_statevector(
    state: Statevector, qubit: int, value: int
) -> Tuple[Statevector, float]:
    """Project ``qubit`` onto ``value`` and renormalise.

    Returns ``(postselected_state, probability)``.

    Raises
    ------
    SimulationError
        If the requested outcome has zero probability.
    """
    if not 0 <= qubit < state.num_qubits:
        raise SimulationError(
            f"qubit {qubit} out of range for a {state.num_qubits}-qubit state"
        )
    tensor = state.data.reshape((2,) * state.num_qubits)
    collapsed, prob = _kernels.collapse(tensor, qubit, value)
    if prob <= 1e-14:
        raise SimulationError(
            f"post-selecting qubit {qubit} == {value} has probability 0"
        )
    return Statevector(_kernels.flatten(collapsed)), prob


def postselected_statevector_after(
    circuit: QuantumCircuit,
    conditions: Dict[int, int],
    simulator: Optional[StatevectorSimulator] = None,
    initial_state: Optional[np.ndarray] = None,
) -> Tuple[Statevector, float]:
    """Run ``circuit`` and keep only branches matching clbit ``conditions``.

    Parameters
    ----------
    circuit:
        Circuit with measurements (e.g. an assertion's ancilla measurement).
    conditions:
        Mapping ``clbit index -> required value``; the QUIRK post-select.
    simulator:
        Optional engine to reuse; a fresh one is created otherwise.
    initial_state:
        Optional initial statevector.

    Returns
    -------
    (state, probability):
        The renormalised state of *all* qubits conditioned on the selected
        outcomes, and the total probability mass of the surviving branches.

    Raises
    ------
    SimulationError
        If no branch satisfies the conditions, or surviving branches disagree
        (post-selection of a mixed conditional state is not a pure state).
    """
    sim = simulator or StatevectorSimulator()
    surviving: List[Tuple[float, Statevector]] = []
    for prob, clbit_string, state in sim.branches(circuit, initial_state):
        if all(clbit_string[pos] == str(val) for pos, val in conditions.items()):
            surviving.append((prob, state))
    if not surviving:
        raise SimulationError(f"no measurement branch satisfies {conditions}")
    total = sum(prob for prob, _ in surviving)
    reference = surviving[0][1]
    for _, state in surviving[1:]:
        if not reference.equiv(state):
            raise SimulationError(
                "post-selected branches are not a single pure state; "
                "condition on more classical bits"
            )
    return reference, total
