"""Deterministic, seedable fault injection for chaos testing.

The resilience machinery this repo grew in PR 10 — chunk retries, pool
rebuilds, circuit breakers, load shedding — is only trustworthy if it can
be *exercised*, and exercised reproducibly.  :class:`FaultPlan` is that
lever: a per-site table of fault rules whose fire/no-fire decisions are a
pure function of ``(plan seed, site, decision key)``, so a chaos storm
replayed with the same plan seed kills the same workers and fails the
same chunks, bit for bit.

Sites are plain strings; the ones the codebase consults are listed in
:data:`SITES`:

``chunk.simulate``
    A chunk raises :class:`~repro.exceptions.FaultInjected` instead of
    simulating (exercises per-chunk retry).
``pool.worker_crash``
    A process-pool worker hard-exits (``os._exit``) mid-chunk, breaking
    the shared pool (exercises pool rebuild + resubmission).  Only
    honoured under process executors — in a thread or serial executor
    the "worker" is the caller's interpreter.
``journal.write``
    A journal store write raises (exercises settlement-error paths).
``http.accept``
    An accepted HTTP connection is dropped before reading the request
    (exercises client reconnect/retry).

Decisions happen in the *parent* process wherever possible (the plan
holds a lock and is deliberately not shipped across pickle boundaries):
the runtime computes each chunk's fault verdict before submitting and
ships only the verdict into the worker.

Activation is either explicit (pass a plan to ``execute(fault_plan=...)``
or use the :func:`injected` context manager) or ambient via
``$REPRO_FAULT_PLAN`` — a JSON object (or a path to a JSON file) like::

    {"seed": 7, "sites": {"chunk.simulate": 0.05,
                          "pool.worker_crash": {"rate": 1.0, "times": 1}}}

A bare number is shorthand for ``{"rate": ...}``.  ``times`` caps how
often a site fires, ``after`` skips the first N decisions.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import FaultInjected

__all__ = [
    "SITES",
    "FaultRule",
    "FaultPlan",
    "ENV_VAR",
    "active_plan",
    "activate",
    "deactivate",
    "injected",
    "should_fail",
    "inject",
]

#: Fault sites consulted somewhere in the codebase.  Plans may name other
#: sites (they simply never fire anything); this list is documentation
#: plus a typo guard for the helpers below.
SITES = (
    "chunk.simulate",
    "pool.worker_crash",
    "journal.write",
    "http.accept",
)

ENV_VAR = "REPRO_FAULT_PLAN"


@dataclass(frozen=True)
class FaultRule:
    """One site's firing policy.

    Attributes
    ----------
    rate:
        Probability in ``[0, 1]`` that a decision fires (1.0 = always).
    times:
        Cap on total fires for this site (``None`` = unlimited).
    after:
        Number of initial decisions to skip before the rule is live.
    """

    rate: float = 1.0
    times: Optional[int] = None
    after: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate!r}")
        if self.times is not None and self.times < 0:
            raise ValueError(f"times must be >= 0, got {self.times!r}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after!r}")

    @classmethod
    def coerce(cls, value) -> "FaultRule":
        if isinstance(value, FaultRule):
            return value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return cls(rate=float(value))
        if isinstance(value, dict):
            unknown = set(value) - {"rate", "times", "after"}
            if unknown:
                raise ValueError(
                    f"unknown FaultRule fields: {sorted(unknown)}"
                )
            return cls(**value)
        raise TypeError(
            f"fault rule must be a number, dict or FaultRule, got {value!r}"
        )


def _uniform(seed: int, site: str, key) -> float:
    """A deterministic uniform in [0, 1) from (seed, site, key).

    sha256, not ``hash()``: the latter is salted per-interpreter
    (PYTHONHASHSEED), which would make chaos runs unreproducible.
    """
    token = f"{seed}|{site}|{key!r}".encode("utf-8")
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class FaultPlan:
    """A seeded table of per-site fault rules with deterministic decisions.

    ``should_fire(site, key=...)`` is the whole API: with an explicit
    ``key`` the verdict is a pure function of ``(seed, site, key)`` —
    the runtime keys chunk faults by ``(job seed, chunk index, attempt)``
    so a replayed storm injects identically.  Without a key, a per-site
    decision counter is used (still deterministic within one process for
    a fixed decision order).

    Thread-safe; deliberately not picklable across process boundaries
    (decisions belong in the parent — workers receive verdicts).
    """

    def __init__(self, seed: int = 0,
                 sites: Optional[Dict[str, object]] = None) -> None:
        self.seed = int(seed)
        self.sites: Dict[str, FaultRule] = {
            site: FaultRule.coerce(rule)
            for site, rule in (sites or {}).items()
        }
        self._lock = threading.Lock()
        self._decisions: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}

    # -- decisions -------------------------------------------------------

    def should_fire(self, site: str, key=None) -> bool:
        """Return True when ``site`` fires for this decision.

        Every call counts as one decision (for ``after`` and the
        per-site tallies) whether or not it fires; fires additionally
        consume the ``times`` budget.
        """
        rule = self.sites.get(site)
        with self._lock:
            index = self._decisions.get(site, 0)
            self._decisions[site] = index + 1
            if rule is None:
                return False
            if index < rule.after:
                return False
            if rule.times is not None and self._fired.get(site, 0) >= rule.times:
                return False
            decision_key = key if key is not None else index
            if _uniform(self.seed, site, decision_key) >= rule.rate:
                return False
            self._fired[site] = self._fired.get(site, 0) + 1
            return True

    def stats(self) -> dict:
        """Return per-site ``{decisions, fired}`` tallies."""
        with self._lock:
            return {
                site: {
                    "decisions": self._decisions.get(site, 0),
                    "fired": self._fired.get(site, 0),
                }
                for site in set(self._decisions) | set(self.sites)
            }

    # -- (de)serialization ----------------------------------------------

    @classmethod
    def from_spec(cls, spec) -> "FaultPlan":
        """Build a plan from a dict / JSON string / JSON-file path."""
        if isinstance(spec, FaultPlan):
            return spec
        if isinstance(spec, str):
            text = spec.strip()
            if not text.startswith("{"):
                with open(text, "r", encoding="utf-8") as handle:
                    text = handle.read()
            spec = json.loads(text)
        if not isinstance(spec, dict):
            raise TypeError(
                f"fault plan spec must be a dict or JSON object, got {spec!r}"
            )
        unknown = set(spec) - {"seed", "sites"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(seed=spec.get("seed", 0), sites=spec.get("sites"))

    def to_spec(self) -> dict:
        sites: Dict[str, dict] = {}
        for site, rule in self.sites.items():
            entry = {"rate": rule.rate}
            if rule.times is not None:
                entry["times"] = rule.times
            if rule.after:
                entry["after"] = rule.after
            sites[site] = entry
        return {"seed": self.seed, "sites": sites}

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, sites={sorted(self.sites)})"


# -- ambient plan --------------------------------------------------------
#
# One process-wide plan: either explicitly activated or parsed once from
# $REPRO_FAULT_PLAN.  The env-parsed plan is cached per env value so its
# decision counters persist across consultations within the process.

_lock = threading.Lock()
_explicit: Optional[FaultPlan] = None
_env_cache: Optional[tuple] = None  # (env value, FaultPlan)


def activate(plan) -> FaultPlan:
    """Install ``plan`` as the process-wide ambient fault plan."""
    global _explicit
    plan = FaultPlan.from_spec(plan)
    with _lock:
        _explicit = plan
    return plan


def deactivate() -> None:
    """Clear any explicitly-activated ambient plan."""
    global _explicit
    with _lock:
        _explicit = None


def active_plan() -> Optional[FaultPlan]:
    """The ambient plan: explicitly activated, else ``$REPRO_FAULT_PLAN``."""
    global _env_cache
    with _lock:
        if _explicit is not None:
            return _explicit
        value = os.environ.get(ENV_VAR)
        if not value:
            _env_cache = None
            return None
        if _env_cache is not None and _env_cache[0] == value:
            return _env_cache[1]
        plan = FaultPlan.from_spec(value)
        _env_cache = (value, plan)
        return plan


class injected:
    """Context manager scoping an ambient plan: ``with injected(plan): ...``"""

    def __init__(self, plan) -> None:
        self.plan = FaultPlan.from_spec(plan)
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        global _explicit
        with _lock:
            self._previous = _explicit
            _explicit = self.plan
        return self.plan

    def __exit__(self, *exc_info) -> None:
        global _explicit
        with _lock:
            _explicit = self._previous


def should_fail(site: str, key=None) -> bool:
    """Ambient-plan decision for ``site`` (False when no plan is active)."""
    plan = active_plan()
    return plan is not None and plan.should_fire(site, key=key)


def inject(site: str, key=None) -> None:
    """Raise :class:`FaultInjected` when the ambient plan fires ``site``."""
    if should_fail(site, key=key):
        raise FaultInjected(f"injected fault at {site}", site=site)
