"""repro — reproduction of Zhou & Byrd, "Quantum Circuits for Dynamic
Runtime Assertions in Quantum Computation" (ASPLOS 2020).

The package bundles the paper's contribution (:mod:`repro.core`, dynamic
ancilla-based assertions) together with every substrate the paper's
evaluation depends on: a circuit IR (:mod:`repro.circuits`), exact and
stabilizer simulators (:mod:`repro.simulators`), noise models
(:mod:`repro.noise`), an ibmqx4 device model + transpiler
(:mod:`repro.devices`, :mod:`repro.transpiler`), analysis utilities
(:mod:`repro.analysis`) and the experiment harness regenerating each table
and figure (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import QuantumCircuit, AssertionInjector, StatevectorBackend
>>> from repro.core import postselect_passing
>>> bell = QuantumCircuit(2)
>>> _ = bell.h(0)
>>> _ = bell.cx(0, 1)
>>> injector = AssertionInjector(bell)
>>> _ = injector.assert_entangled([0, 1])
>>> _ = injector.measure_program()
>>> result = StatevectorBackend().run(injector.circuit, shots=1000, seed=7)
>>> filtered = postselect_passing(result.counts, injector.records)
>>> sorted(filtered)   # only the Bell outcomes survive
['00', '11']
"""

from repro.circuits import (
    ClassicalRegister,
    QuantumCircuit,
    QuantumRegister,
    library,
)
from repro.core import (
    AssertionInjector,
    AssertionKind,
    AssertionRecord,
    evaluate_assertions,
    postselect_passing,
)
from repro.devices import (
    NoisyDeviceBackend,
    StabilizerBackend,
    StatevectorBackend,
    ibmqx4,
)
from repro.results import Counts, Result
from repro.runtime import execute, get_backend
from repro.simulators import (
    DensityMatrixSimulator,
    StabilizerSimulator,
    Statevector,
    StatevectorSimulator,
)

__version__ = "1.0.0"

__all__ = [
    "AssertionInjector",
    "AssertionKind",
    "AssertionRecord",
    "ClassicalRegister",
    "Counts",
    "DensityMatrixSimulator",
    "NoisyDeviceBackend",
    "QuantumCircuit",
    "QuantumRegister",
    "Result",
    "StabilizerBackend",
    "StabilizerSimulator",
    "Statevector",
    "StatevectorBackend",
    "StatevectorSimulator",
    "evaluate_assertions",
    "execute",
    "get_backend",
    "ibmqx4",
    "library",
    "postselect_passing",
    "__version__",
]
