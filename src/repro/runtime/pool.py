"""Process-wide worker pools shared across ``execute()`` calls.

PR 1's runtime built a fresh ``ThreadPoolExecutor`` inside every
``execute()`` call — pure churn for single-job callers like ``run_table1``,
and useless for the GIL-bound per-shot engines (stabilizer, trajectory)
where thread fan-out buys nothing.  This module replaces that with three
selectable executor kinds behind one lazily-created, process-wide registry:

``serial``
    Run every task inline on the calling thread (:class:`SerialExecutor`).
    Zero scheduling overhead and strictly deterministic execution *order*,
    which makes job priorities directly observable.
``thread``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor`.  Right for
    the NumPy engines (density-matrix, statevector), whose kernels release
    the GIL.
``process``
    A shared :class:`~concurrent.futures.ProcessPoolExecutor`.  Right for
    the pure-Python per-shot engines; circuits, backends and results cross
    the boundary by pickle (see the runtime's pickling hooks).

Pools are keyed by ``(kind, width)`` and created on first use, so repeated
``execute()`` calls with the same configuration reuse one executor instead
of rebuilding it.  The counts contract is unchanged: for a fixed seed,
every executor kind produces bit-identical counts (``tests/runtime/
test_determinism.py`` pins this).

The default kind comes from the ``REPRO_EXECUTOR`` environment variable
(``serial`` | ``thread`` | ``process``), falling back to ``thread`` — which
is how CI runs the runtime suite under every executor without touching the
tests.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Dict, Optional, Tuple

from repro.exceptions import JobError

#: The selectable executor kinds, in increasing isolation order.
EXECUTOR_KINDS = ("serial", "thread", "process")

#: Environment variable naming the default executor kind.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"


class SerialExecutor(Executor):
    """An :class:`~concurrent.futures.Executor` that runs tasks inline.

    ``submit()`` executes the task on the calling thread and returns an
    already-completed :class:`~concurrent.futures.Future` (exceptions are
    captured in the future, matching pool semantics, not raised at submit
    time).  Tasks therefore run in exact submission order, which is what
    makes job priorities observable under this executor.
    """

    def submit(self, fn, /, *args, **kwargs) -> Future:
        future: Future = Future()
        if not future.set_running_or_notify_cancel():  # pragma: no cover
            return future
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:
            future.set_exception(exc)
        return future


def default_executor_kind() -> str:
    """Return the default kind: ``$REPRO_EXECUTOR`` or ``"thread"``."""
    kind = os.environ.get(EXECUTOR_ENV_VAR, "").strip().lower()
    if not kind:
        return "thread"
    if kind not in EXECUTOR_KINDS:
        raise JobError(
            f"{EXECUTOR_ENV_VAR}={kind!r} is not a valid executor kind; "
            f"choose from {list(EXECUTOR_KINDS)}"
        )
    return kind


def default_max_workers() -> int:
    """Return the default pool width (CPU count, capped at 32)."""
    return min(32, (os.cpu_count() or 1))


#: Registry key: (kind, width); the serial executor has no width.
_PoolKey = Tuple[str, Optional[int]]

_lock = threading.Lock()
_pools: Dict[_PoolKey, Executor] = {}
_stats = {"created": 0, "reused": 0, "rebuilds": 0}


def _make_executor(kind: str, width: Optional[int]) -> Executor:
    if kind == "serial":
        pool: Executor = SerialExecutor()
    elif kind == "thread":
        pool = ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="repro-runtime"
        )
    else:
        pool = ProcessPoolExecutor(max_workers=width)
    pool._repro_kind = kind
    pool._repro_key = (kind, width)
    return pool


def executor_kind(executor: Executor) -> Optional[str]:
    """Return an executor's kind (``"serial"``/``"thread"``/``"process"``).

    Registry-created pools carry an explicit tag; foreign executors fall
    back to an isinstance probe, and ``None`` means "unknown" — callers
    (like the process-fan-out prepare step) must then assume nothing.
    """
    kind = getattr(executor, "_repro_kind", None)
    if kind is not None:
        return kind
    if isinstance(executor, ProcessPoolExecutor):
        return "process"
    if isinstance(executor, ThreadPoolExecutor):
        return "thread"
    if isinstance(executor, SerialExecutor):
        return "serial"
    return None


def _is_broken(pool: Executor) -> bool:
    """Return ``True`` for a process pool whose workers died."""
    return bool(getattr(pool, "_broken", False))


def get_executor(
    kind: Optional[str] = None, max_workers: Optional[int] = None
) -> Executor:
    """Return the shared executor for ``(kind, max_workers)``.

    The first request for a configuration creates its pool; later requests
    return the same object (``pool_stats()`` tracks both).  A broken
    process pool (workers killed) is transparently discarded and rebuilt.

    Parameters
    ----------
    kind:
        ``"serial"``, ``"thread"`` or ``"process"``; ``None`` uses
        :func:`default_executor_kind`.
    max_workers:
        Pool width; ``None`` uses :func:`default_max_workers`.  Ignored by
        the serial executor.
    """
    kind = kind if kind is not None else default_executor_kind()
    if kind not in EXECUTOR_KINDS:
        raise JobError(
            f"unknown executor kind {kind!r}; choose from {list(EXECUTOR_KINDS)}"
        )
    if max_workers is not None and max_workers < 1:
        raise JobError(f"max_workers must be positive, got {max_workers}")
    if kind == "serial":
        key: _PoolKey = ("serial", None)
    else:
        key = (kind, int(max_workers) if max_workers else default_max_workers())
    with _lock:
        pool = _pools.get(key)
        if pool is not None and _is_broken(pool):
            pool.shutdown(wait=False)
            del _pools[key]
            pool = None
        if pool is None:
            pool = _make_executor(kind, key[1])
            _pools[key] = pool
            _stats["created"] += 1
        else:
            _stats["reused"] += 1
        return pool


def rebuild_executor(pool: Executor) -> Optional[Executor]:
    """Quarantine a broken registry pool and return a fresh replacement.

    The self-healing path: a chunk that fails with
    :class:`~concurrent.futures.process.BrokenProcessPool` calls this to
    swap the shared pool for a new one, then resubmits.  Concurrent
    callers (every in-flight chunk of the broken pool fails at once)
    rebuild exactly once — whoever arrives after the swap gets the
    already-rebuilt pool back.

    Returns ``None`` for executors the registry does not own (explicit
    ``executor=`` arguments); the caller must treat those failures as
    non-retryable, because it cannot know how to rebuild them.
    """
    key = getattr(pool, "_repro_key", None)
    kind = getattr(pool, "_repro_kind", None)
    if key is None or kind is None:
        return None
    key = (kind, key[1])
    with _lock:
        current = _pools.get(key)
        if current is not None and current is not pool:
            # Someone already rebuilt; hand back the healthy replacement.
            return current
        if current is pool:
            del _pools[key]
        replacement = _make_executor(kind, key[1])
        _pools[key] = replacement
        _stats["created"] += 1
        _stats["rebuilds"] += 1
    pool.shutdown(wait=False)
    return replacement


def pool_stats() -> dict:
    """Return ``{"active", "created", "reused", "rebuilds", "pools"}``.

    ``created``/``reused``/``rebuilds`` are lifetime counters (they
    survive :func:`shutdown_executors`); ``pools`` lists the live
    ``(kind, width)`` keys.
    """
    with _lock:
        return {
            "active": len(_pools),
            "created": _stats["created"],
            "reused": _stats["reused"],
            "rebuilds": _stats["rebuilds"],
            "pools": sorted(_pools),
        }


def shutdown_executors(wait: bool = True) -> None:
    """Shut down and drop every shared pool (they rebuild lazily on use)."""
    with _lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


atexit.register(shutdown_executors)
