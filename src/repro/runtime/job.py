"""Asynchronous jobs: the submit/result/cancel half of the runtime.

A :class:`Job` is one circuit's execution on one backend, fanned out as one
or more shot-chunk tasks on the shared ``concurrent.futures`` executor the
runtime keeps per configuration (see :mod:`repro.runtime.pool`; the
submit-then-collect discipline of mainstream SDK ``Job`` objects).  A
:class:`JobSet` is an ordered batch of jobs returned by
:func:`repro.runtime.execute.execute`, with bulk and streaming
(:meth:`JobSet.as_completed`) collection.

Chunk tasks are submitted as the module-level :func:`_execute_chunk` so the
same code path serves thread pools (shared objects) and process pools
(pickled ``(backend, circuit)`` arguments, pickled results back).

Determinism contract
--------------------
* An unchunked job runs ``backend.run(circuit, shots, seed)`` verbatim, so
  its counts are bit-identical to the sequential loop it replaces —
  whichever executor kind runs it.
* A chunked job derives chunk ``i``'s seed from the caller's seed via
  ``SeedSequence`` spawning and merges chunk counts **in chunk order**, so
  its counts depend only on ``(circuit, backend, shots, seed,
  chunk_shots)`` — never on executor kind, worker count or completion
  order.
* A deduplicated job (see :mod:`repro.runtime.batching`) clones or
  re-samples its group primary's result with its own seed, and a
  distribution-cache hit (see :mod:`repro.runtime.distcache`) re-samples
  the cached distribution the same way — both reproduce the counts a
  dedicated run would have drawn.
"""

from __future__ import annotations

import copy
import enum
import functools
import itertools
import os
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Future,
    InvalidStateError,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import FaultInjected, JobError
from repro.obs.metrics import DEFAULT_REGISTRY
from repro.obs.trace import Span, worker_chunk_record
from repro.results.counts import Counts
from repro.results.result import Result
from repro.runtime.batching import (
    ROLE_INDEPENDENT,
    ROLE_SHARE,
    chunk_seed,
    clone_result,
    merge_chunk_results,
    resample_result,
    split_shots,
)
from repro.runtime.retry import RetryPolicy, backoff_rng, next_backoff

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuits.circuit import QuantumCircuit
    from repro.devices.backend import Backend


class JobStatus(enum.Enum):
    """Lifecycle of a :class:`Job`."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    ERROR = "error"


_job_counter = itertools.count(1)

_M_CHUNK_RETRIES = DEFAULT_REGISTRY.counter(
    "repro_chunk_retries_total",
    help="Chunk attempts retried after an execution failure.",
)
_M_POOL_RESUBMITS = DEFAULT_REGISTRY.counter(
    "repro_chunk_pool_resubmits_total",
    help="Chunk attempts resubmitted after an executor pool loss.",
)

#: Cap on per-chunk resubmissions after pool losses.  Pool losses do not
#: consume the chunk's retry policy (the chunk did nothing wrong), but an
#: environment that keeps killing workers must still converge to an error.
_MAX_POOL_RESUBMITS = 3


def _execute_chunk(
    backend: "Backend",
    circuit: "QuantumCircuit",
    shots: int,
    seed: Optional[int],
    trace_ctx: Optional[dict] = None,
    fault: Optional[str] = None,
) -> Tuple[Result, float, Optional[dict]]:
    """Run one shot chunk; return ``(result, elapsed_seconds, trace_record)``.

    Module-level so process-pool executors can pickle the task; thread and
    serial executors call it with shared objects and pay nothing extra.
    ``trace_ctx`` is the picklable span context of the chunk's parent-side
    trace span (or ``None`` when the job is untraced); the returned trace
    record carries the worker-measured wall-clock back across the executor
    boundary for :meth:`repro.obs.trace.Span.merge_worker`.

    ``fault`` is a pre-computed fault-injection verdict (see
    :mod:`repro.faults`) shipped in from the parent — the plan itself
    never crosses the executor boundary.  ``"fail"`` raises
    :class:`~repro.exceptions.FaultInjected`; ``"crash"`` hard-exits the
    worker process (only ever sent to process-pool workers), which is how
    chaos tests break a real shared pool.
    """
    if fault == "crash":
        os._exit(17)
    if fault == "fail":
        raise FaultInjected(
            f"injected fault at chunk.simulate (shots={shots}, seed={seed})",
            site="chunk.simulate",
        )
    start = time.perf_counter()
    result = backend.run(circuit, shots=shots, seed=seed)
    elapsed = time.perf_counter() - start
    record = worker_chunk_record(
        trace_ctx,
        engine=type(backend).__name__,
        shots=shots,
        duration_s=elapsed,
        batch_width=getattr(backend, "max_batch", None),
    )
    return result, elapsed, record


class _ChunkFuture(Future):
    """A stable per-chunk future that survives retries and pool rebuilds.

    The job's collection machinery (``result()``, ``status()``, the done
    barrier, trace/cost callbacks) holds *these*, while the underlying
    executor futures come and go as :class:`_ChunkRun` retries attempts.
    The proxy settles exactly once, with the same ``(result, elapsed,
    record)`` tuple a direct executor future would carry.
    """

    def __init__(self, run: "_ChunkRun") -> None:
        super().__init__()
        self._run = run
        self._terminal = False

    def cancel(self) -> bool:
        # Route cancellation through the run, which knows whether the
        # chunk is waiting on a backoff timer (cancellable), in flight
        # (cancellable only if the executor agrees) or already settled.
        if self._terminal or self.done():
            return super().cancel()
        return self._run.request_cancel()

    def _force_cancel(self) -> bool:
        """Settle the proxy as cancelled (run-internal)."""
        self._terminal = True
        return super().cancel() or self.cancelled()

    def running(self) -> bool:
        # The proxy never enters the real RUNNING state (that would make
        # it uncancellable); report the current attempt's view instead.
        if self.done():
            return False
        with self._run._lock:
            attempt = self._run._attempt_future
        return attempt is not None and (attempt.running() or attempt.done())


class _ChunkRun:
    """One chunk's execution manager: attempts, retries, pool recovery.

    Owns the chunk's stable :class:`_ChunkFuture` proxy and drives real
    executor submissions behind it.  Failure handling, in order:

    * :class:`~concurrent.futures.BrokenExecutor` — the pool died under
      the chunk (e.g. an injected ``pool.worker_crash``).  Quarantine and
      rebuild the shared pool via
      :func:`repro.runtime.pool.rebuild_executor` and resubmit on the
      replacement.  Pool losses do not consume the retry policy (the
      chunk did nothing wrong) but are capped at
      :data:`_MAX_POOL_RESUBMITS`.
    * Any other exception — retry per the job's
      :class:`~repro.runtime.retry.RetryPolicy` after a
      decorrelated-jitter backoff, resubmitting with the chunk's original
      ``(shots, seed)`` so a retried chunk's counts are bit-identical to
      a fault-free run.
    * Out of retries/budget — settle the proxy with the exception.

    Fault-injection verdicts are computed here, in the parent, keyed by
    ``(job seed, chunk index, attempt)`` — bit-reproducible, and the
    plan object itself never has to cross a pickle boundary.
    """

    def __init__(self, job: "Job", index: int, shots: int,
                 seed: Optional[int], backend, circuit, ctx, span,
                 executor, kind: Optional[str]) -> None:
        self.job = job
        self.index = index
        self.shots = shots
        self.seed = seed
        self.backend = backend
        self.circuit = circuit
        self.ctx = ctx
        self.span = span
        self.executor = executor
        self.kind = kind
        self.proxy = _ChunkFuture(self)
        self.attempt = 0  # total executions started (feeds fault keys)
        self.retries = 0  # policy-consuming retries
        self.pool_resubmits = 0
        self.prev_backoff = 0.0
        self._lock = threading.Lock()
        self._attempt_future: Optional[Future] = None
        self._timer: Optional[threading.Timer] = None
        self._started = False

    # -- attempt lifecycle ----------------------------------------------

    def launch(self) -> None:
        """Start the first attempt (called once, after the job's barrier
        is armed, so every settle path is observed)."""
        self._start_attempt()

    def _fault_for_attempt(self) -> Optional[str]:
        plan = self.job._fault_plan
        if plan is None:
            return None
        key = (self.job.seed, self.index, self.attempt)
        # Worker crashes only make sense where the worker is a separate
        # process; under thread/serial executors the "worker" is us.
        if self.kind == "process" and plan.should_fire(
            "pool.worker_crash", key=key
        ):
            return "crash"
        if plan.should_fire("chunk.simulate", key=key):
            return "fail"
        return None

    def _start_attempt(self) -> None:
        with self._lock:
            self._timer = None
            if self.proxy.done():
                return
            self._started = True
        fault = self._fault_for_attempt()
        try:
            future = self.executor.submit(
                _execute_chunk, self.backend, self.circuit, self.shots,
                self.seed, self.ctx, fault,
            )
        except BaseException as exc:
            # Submit-time failures (broken/shut-down pool) flow through
            # the same failure path as run-time ones, so the proxy always
            # settles and the job's done barrier always fires.
            self._handle_failure(exc)
            return
        with self._lock:
            self._attempt_future = future
        future.add_done_callback(self._settled)

    def _settled(self, future: Future) -> None:
        if future.cancelled():
            self.proxy._force_cancel()
            return
        exc = future.exception()
        if exc is None:
            try:
                self.proxy.set_result(future.result())
            except InvalidStateError:  # pragma: no cover - settle race
                pass
            return
        self._handle_failure(exc)

    # -- failure handling -----------------------------------------------

    def _handle_failure(self, exc: BaseException) -> None:
        if self.proxy.done():
            return
        if isinstance(exc, BrokenExecutor):
            if self._resubmit_after_pool_loss(exc):
                return
        elif self._retry_after_failure(exc):
            return
        self._terminal_failure(exc)

    def _resubmit_after_pool_loss(self, exc: BaseException) -> bool:
        from repro.runtime.pool import rebuild_executor

        if self.pool_resubmits >= _MAX_POOL_RESUBMITS:
            return False
        replacement = rebuild_executor(self.executor)
        if replacement is None:
            # A foreign executor we cannot rebuild: not recoverable here.
            return False
        self.pool_resubmits += 1
        self.attempt += 1
        self.executor = replacement
        self.job._note_pool_rebuild()
        _M_POOL_RESUBMITS.inc()
        if self.span is not None:
            self.span.event(
                "pool_rebuild",
                error=type(exc).__name__,
                resubmit=self.pool_resubmits,
            )
        # No backoff: the replacement pool is healthy by construction.
        self._start_attempt()
        return True

    def _retry_after_failure(self, exc: BaseException) -> bool:
        policy = self.job._retry_policy
        if policy is None or self.retries >= policy.max_retries:
            return False
        if not self.job._consume_retry_budget():
            return False
        self.retries += 1
        self.attempt += 1
        rng = backoff_rng(self.job.seed, self.index, self.attempt)
        delay = next_backoff(policy, self.prev_backoff, rng)
        self.prev_backoff = delay
        _M_CHUNK_RETRIES.inc()
        if self.span is not None:
            self.span.event(
                "retry",
                attempt=self.attempt,
                error=type(exc).__name__,
                backoff_s=round(delay, 6),
            )
        timer = threading.Timer(delay, self._start_attempt)
        timer.daemon = True
        with self._lock:
            if self.proxy.done():  # cancelled while we were deciding
                return True
            self._timer = timer
        timer.start()
        return True

    def _terminal_failure(self, exc: BaseException) -> None:
        self.proxy._terminal = True
        try:
            self.proxy.set_exception(exc)
        except InvalidStateError:  # pragma: no cover - settle race
            pass

    # -- cancellation ----------------------------------------------------

    def request_cancel(self) -> bool:
        with self._lock:
            if self.proxy.done():
                return self.proxy.cancelled()
            timer, self._timer = self._timer, None
            attempt = self._attempt_future
            launched = self._started
        if timer is not None:
            # Waiting out a retry backoff: nothing is in flight.
            timer.cancel()
            self.proxy._force_cancel()
            return True
        if not launched:
            self.proxy._force_cancel()
            return True
        if attempt is not None:
            # The executor future's done-callback settles the proxy as
            # cancelled when this succeeds; a running attempt refuses and
            # the chunk runs to completion (unchanged semantics).
            return attempt.cancel()
        return False


class Job:
    """A single circuit execution in flight.

    Jobs are created by :func:`repro.runtime.execute.execute`; user code
    interacts with the returned object only.

    Attributes
    ----------
    job_id:
        Monotonic identifier, unique within the process.
    circuit / backend / shots / seed:
        The submitted work.
    priority:
        Submission priority (higher submits first; see
        :func:`repro.runtime.execute.execute`).
    """

    def __init__(
        self,
        circuit: "QuantumCircuit",
        backend: "Backend",
        shots: int,
        seed: Optional[int],
        role: str = ROLE_INDEPENDENT,
        source: Optional["Job"] = None,
        chunk_shots: Optional[int] = None,
        priority: int = 0,
        distribution: Optional[Result] = None,
    ) -> None:
        self.job_id = f"job-{next(_job_counter)}"
        self.circuit = circuit
        self.backend = backend
        self.shots = shots
        self.seed = seed
        self.chunk_shots = chunk_shots
        self.priority = int(priority)
        self._role = role
        self._source = source if source is not None else self
        self._distribution = distribution
        #: Set by execute() on a distribution-cache miss: (cache, key) to
        #: store this job's distribution into once it completes.
        self._dist_store = None
        self._dist_stored = False
        #: Set by execute(): (CostModel, run key, prepare key) every
        #: completed chunk / parent-side prepare reports its measured
        #: wall-clock into (see repro.runtime.profile; the run key carries
        #: the backend's cost_tag, the prepare key never does).
        self._cost_probe = None
        #: Set by execute(): how the scheduler planned this job —
        #: {"schedule", "chunk_shots", "executor"} — for introspection.
        self.plan: Optional[dict] = None
        #: Set by execute() when tracing is on: this job's trace span.
        #: Chunk submissions hang child spans off it and ship its context
        #: into the chunk task (see repro.obs.trace).
        self._span: Optional[Span] = None
        #: Set by execute(): the chunk retry policy (None = fail fast).
        self._retry_policy: Optional[RetryPolicy] = None
        #: Set by execute(): the fault plan consulted per chunk attempt.
        self._fault_plan = None
        self._retry_budget_used = 0
        #: Telemetry: policy-consuming chunk retries this job performed.
        self.retries = 0
        #: Telemetry: chunk resubmissions after executor pool losses (the
        #: registry-level rebuild count lives in ``pool_stats()``; many
        #: chunks of one job can resubmit onto a single rebuilt pool).
        self.pool_rebuilds = 0
        self._chunk_runs: List[_ChunkRun] = []
        self._futures: List[Future] = []
        self._chunk_elapsed: List[float] = []
        self._pool_elapsed_recorded = False
        self._result: Optional[Result] = None
        self._error: Optional[BaseException] = None
        self._cancelled = False
        self._lock = threading.Lock()
        self._done_callbacks: List = []
        self._done_barrier: Optional[int] = None
        self._done_notified = False

    # ------------------------------------------------------------------
    # Submission (runtime-internal)
    # ------------------------------------------------------------------

    def chunk_plan(self) -> List[tuple]:
        """Return the job's ``(shots, seed)`` chunk schedule.

        The same plan drives both a primary's pool submission and a
        derived job's re-sampling, so counts depend only on ``(circuit,
        backend, shots, seed, chunk_shots)`` — never on dedup grouping.
        """
        shot_chunks = split_shots(self.shots, self.chunk_shots)
        if len(shot_chunks) == 1:
            return [(self.shots, self.seed)]
        return [(n, chunk_seed(self.seed, i)) for i, n in enumerate(shot_chunks)]

    def _run_chunk(self, shots: int, seed: Optional[int]) -> Result:
        """Run one chunk inline (lazy fallbacks), recording its elapsed time."""
        span = (
            self._span.child("chunk", shots=shots, inline=True)
            if self._span is not None
            else None
        )
        result, elapsed, record = _execute_chunk(
            self.backend,
            self.circuit,
            shots,
            seed,
            None if span is None else span.context(),
        )
        if span is not None:
            span.finish().merge_worker(record)
        with self._lock:
            self._chunk_elapsed.append(elapsed)
        return result

    def _prepare_for_fanout(self) -> Tuple["Backend", "QuantumCircuit"]:
        """Transpile once in the parent before process fan-out.

        A process-pool worker unpickles a backend whose explicit
        :class:`~repro.runtime.cache.TranspileCache` ships configuration,
        not contents — so without this step every chunk task re-lowers the
        circuit from scratch.  Instead the parent runs ``prepare()`` once
        (through the cache) and ships the *prepared* circuit with a
        transpile-disabled copy of the backend: the workers execute exactly
        the circuit a direct ``run()`` would have, so counts are untouched,
        and the measured prepare cost feeds the cost model.

        Any ``prepare()`` failure falls back to shipping the original pair
        so the error keeps surfacing through the job's future (the
        established collection-time error path), not at submit time.
        """
        prepare = getattr(self.backend, "prepare", None)
        if prepare is None or not getattr(self.backend, "transpile", False):
            return self.backend, self.circuit
        # Only a cache *miss* measures real lowering work; folding in the
        # microsecond cache hits would collapse the per-prepare EWMA to
        # ~zero right after the first transpile.  (Concurrent jobs sharing
        # a cache can skew the miss delta — an occasional mis-attributed
        # sample, never a systematic bias.)
        cache = getattr(self.backend, "cache", None)
        if cache is None:
            from repro.runtime.cache import DEFAULT_CACHE

            cache = DEFAULT_CACHE
        misses_before = getattr(cache, "misses", None)
        span = self._span.child("prepare") if self._span is not None else None
        start = time.perf_counter()
        try:
            prepared = prepare(self.circuit)
        except Exception:
            if span is not None:
                span.finish().set(error=True)
            return self.backend, self.circuit
        elapsed = time.perf_counter() - start
        lowered = (
            True
            if misses_before is None  # cache=False: every prepare is real
            else cache.misses > misses_before
        )
        if span is not None:
            span.finish().set(cache_hit=not lowered)
        if self._cost_probe is not None and lowered:
            model, _run_key, prepare_key = self._cost_probe
            model.observe_prepare(prepare_key, elapsed)
        shipped = copy.copy(self.backend)
        shipped.transpile = False
        return shipped, prepared

    def _submit(self, executor) -> None:
        """Schedule this job's chunk tasks on ``executor``.

        Each chunk is driven by a :class:`_ChunkRun` behind a stable
        :class:`_ChunkFuture` proxy, so retries and pool rebuilds are
        invisible to collection: ``self._futures`` never changes after
        submit.  Tasks are the picklable module-level
        :func:`_execute_chunk`, so any executor kind — serial, thread or
        process — can run them.  Process fan-out ships a
        parent-side-prepared circuit (see :meth:`_prepare_for_fanout`).
        On a distribution-cache miss, a done-callback on the first chunk
        publishes the distribution at *completion* time — a chunked job's
        merged distribution is exactly its first chunk's — so overlapping
        ``execute()`` calls see the entry as soon as the simulation
        finishes, not when somebody first collects the result.  Every
        chunk future also reports its measured wall-clock into the
        runtime's cost model when a probe is attached.
        """
        from repro.runtime.pool import executor_kind

        kind = executor_kind(executor)
        backend, circuit = self.backend, self.circuit
        if kind == "process":
            backend, circuit = self._prepare_for_fanout()
        runs: List[_ChunkRun] = []
        for index, (shots, seed) in enumerate(self.chunk_plan()):
            span = ctx = None
            if self._span is not None:
                span = self._span.child(
                    "chunk", chunk=index, shots=shots, executor=kind
                )
                ctx = span.context()
            run = _ChunkRun(
                self, index, shots, seed, backend, circuit, ctx, span,
                executor, kind,
            )
            runs.append(run)
            self._futures.append(run.proxy)
            if span is not None:
                run.proxy.add_done_callback(
                    functools.partial(self._trace_chunk, span)
                )
            if self._cost_probe is not None:
                run.proxy.add_done_callback(
                    functools.partial(self._observe_chunk, shots)
                )
        self._chunk_runs = runs
        if self._dist_store is not None and self._futures:
            self._futures[0].add_done_callback(self._distribution_completed)
        # Arm the completion barrier *before* the first launch: whatever
        # a launch does — run inline (serial), fail at submit time, get
        # cancelled — every proxy settles through a path the barrier
        # observes, so done callbacks (and as_completed streaming) can
        # never be lost to a chunk that died before arming.
        self._arm_done_barrier()
        for run in runs:
            run.launch()

    def _trace_chunk(self, span: Span, future: Future) -> None:
        """Done-callback: close the chunk span and fold in the worker view.

        The parent-side window (submit -> completion) is the span's own
        duration; the worker-measured wall-clock arrives in the returned
        trace record (``worker_wall_s``), the only chunk timing trusted
        across a process boundary.
        """
        span.finish()
        if future.cancelled():
            span.set(cancelled=True)
            return
        exc = future.exception()
        if exc is not None:
            span.set(error=type(exc).__name__)
            return
        _result, _elapsed, record = future.result()
        span.merge_worker(record)

    def _observe_chunk(self, shots: int, future: Future) -> None:
        """Done-callback: feed one chunk's measured cost to the cost model."""
        if future.cancelled() or future.exception() is not None:
            return
        _result, elapsed, _trace = future.result()
        model, run_key, _prepare_key = self._cost_probe
        model.observe_run(run_key, shots, elapsed)

    def _distribution_completed(self, future: Future) -> None:
        """Done-callback: store the finished chunk's distribution."""
        if future.cancelled() or future.exception() is not None:
            return
        result, _elapsed, _trace = future.result()
        self._publish_distribution(result)

    def _publish_distribution(self, result: Result) -> None:
        """Store ``result``'s distribution into the pending cache slot once.

        Idempotent: called from the completion callback and (as a fallback,
        e.g. when a callback could not run) from :meth:`result` — whichever
        takes the lock first stores, the other skips.  The store happens
        *inside* the critical section so that once any publish call has
        returned, the entry is visible — ``result()`` must never return
        before the cache reflects the job (callers compare stats right
        after collecting).
        """
        if self._dist_store is None or result.probabilities is None:
            return
        cache, key = self._dist_store
        with self._lock:
            if self._dist_stored:
                return
            cache.store(key, result)
            self._dist_stored = True

    # ------------------------------------------------------------------
    # Completion notification (the non-blocking bridge)
    # ------------------------------------------------------------------

    def add_done_callback(self, fn) -> None:
        """Call ``fn(self)`` once this job reaches a terminal state.

        The event-driven counterpart of polling :meth:`done`: an async
        front-end (see :mod:`repro.service`) registers a callback instead
        of blocking a thread per job.  Fires exactly once, from whichever
        thread settles the last chunk future (or inline, when the job is
        already terminal at registration time).  Derived and
        distribution-cached jobs settle with their source, exactly as
        :meth:`status` reports them.  Callbacks must not block: they run
        on executor worker/collector threads.
        """
        if self.cached:
            fn(self)
            return
        if self.derived:
            self._source.add_done_callback(lambda _source: fn(self))
            return
        with self._lock:
            if not self._done_notified:
                self._done_callbacks.append(fn)
                fn = None
        if fn is not None:
            fn(self)

    def _arm_done_barrier(self) -> None:
        """Register the chunk-future countdown that fires done callbacks."""
        with self._lock:
            if self._done_barrier is not None or not self._futures:
                return
            self._done_barrier = len(self._futures)
        for future in self._futures:
            # Future done-callbacks fire on completion, failure *and*
            # cancellation, so every terminal path counts down.
            future.add_done_callback(self._chunk_settled)

    def _chunk_settled(self, _future: Future) -> None:
        with self._lock:
            if self._done_barrier is None or self._done_notified:
                # A settle racing barrier arming (or a defensive re-fire)
                # must never crash the settling thread.
                return
            self._done_barrier -= 1
            if self._done_barrier > 0:
                return
            self._done_notified = True
            callbacks, self._done_callbacks = self._done_callbacks, []
        for fn in callbacks:
            fn(self)

    # ------------------------------------------------------------------
    # Retry accounting (chunk-run internal)
    # ------------------------------------------------------------------

    def _consume_retry_budget(self) -> bool:
        """Reserve one retry against the job-wide budget (thread-safe)."""
        policy = self._retry_policy
        if policy is None:
            return False
        with self._lock:
            if (
                policy.retry_budget is not None
                and self._retry_budget_used >= policy.retry_budget
            ):
                return False
            self._retry_budget_used += 1
            self.retries += 1
            return True

    def _note_pool_rebuild(self) -> None:
        with self._lock:
            self.pool_rebuilds += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def derived(self) -> bool:
        """Return ``True`` when this job reuses a group primary's result."""
        return self._source is not self

    @property
    def cached(self) -> bool:
        """Return ``True`` when this job re-samples a cached distribution.

        A cached job never touches the backend: its counts come from a
        cross-call :class:`~repro.runtime.distcache.DistributionCache` hit
        (bit-identical to a fresh run, per the determinism contract).
        """
        return self._distribution is not None

    def status(self) -> JobStatus:
        """Return the job's current :class:`JobStatus`.

        ``DONE`` means no pool work is outstanding and :meth:`result`
        returns without waiting on other jobs.  For a deduplicated job it
        is derived from the group primary; in the rare per-shot-fallback
        case (primary finished without an exact distribution) or after the
        primary was cancelled, :meth:`result` still has to run this job's
        own simulation lazily on the calling thread.
        """
        if self._cancelled:
            return JobStatus.CANCELLED
        if self._error is not None:
            return JobStatus.ERROR
        if self._result is not None:
            return JobStatus.DONE
        if self.cached:
            # The distribution is in hand; result() re-samples it without
            # waiting on any pool work.
            return JobStatus.DONE
        if self.derived:
            source_status = self._source.status()
            if source_status is JobStatus.CANCELLED:
                # This job was not cancelled: result() will run it
                # independently on demand.
                return JobStatus.DONE
            return source_status
        if not self._futures:
            return JobStatus.QUEUED
        if any(f.cancelled() for f in self._futures):
            return JobStatus.CANCELLED
        if any(f.done() and f.exception() is not None for f in self._futures):
            return JobStatus.ERROR
        if all(f.done() for f in self._futures):
            return JobStatus.DONE
        if any(f.running() or f.done() for f in self._futures):
            return JobStatus.RUNNING
        return JobStatus.QUEUED

    def done(self) -> bool:
        """Return ``True`` once the job has finished (any terminal state)."""
        return self.status() in (JobStatus.DONE, JobStatus.CANCELLED, JobStatus.ERROR)

    @property
    def time_taken(self) -> float:
        """Return the summed wall-clock seconds of this job's chunk runs.

        Derived (deduplicated) jobs report ``0.0`` — their result cost
        nothing beyond the primary's execution — except when the primary
        carried no exact distribution and a real fallback simulation ran.
        """
        with self._lock:
            return float(sum(self._chunk_elapsed))

    def _finish_span(self, **attrs) -> None:
        """Close this job's trace span once, stamping terminal attributes."""
        if self._span is not None:
            if self._span.end_s is None and attrs:
                self._span.set(**attrs)
            self._span.finish()

    def trace(self) -> Optional[dict]:
        """Return this job's trace span tree as JSON-safe dicts.

        ``None`` when the job ran untraced (tracing disabled at submit
        time).  Safe to call while the job is still running: unfinished
        spans report ``duration_s: null``.
        """
        return None if self._span is None else self._span.to_dict()

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def cancel(self) -> bool:
        """Attempt to cancel the job's pending chunk tasks.

        Returns ``True`` when the job will **not** produce a result: if any
        chunk was cancelled before starting, the job's counts can never be
        complete, so the whole job is marked cancelled (even when other
        chunks were already running).  Returns ``False`` when nothing could
        be cancelled — the job runs to completion as normal.  A derived job
        cannot be cancelled independently of its primary.
        """
        if self._result is not None or self.derived or self.cached:
            return False
        cancelled = [f.cancel() for f in self._futures]
        if cancelled and any(cancelled):
            self._cancelled = True
            self._finish_span(status="cancelled")
            return True
        return False

    def result(self, timeout: Optional[float] = None) -> Result:
        """Block until the job finishes and return its merged :class:`Result`.

        ``timeout`` is a total deadline in seconds for the whole job, not
        per chunk.  A deduplicated job derives its result from the group
        primary; when the primary finished without an exact distribution
        (per-shot fallback) or was cancelled, this call runs the job's own
        simulation on the calling thread instead — that inline simulation
        is not interruptible, so the deadline only bounds waits on pool
        work.

        Raises
        ------
        JobError
            If the job was cancelled or a chunk raised.
        """
        if self._result is not None:
            return self._result
        if self._cancelled:
            raise JobError(f"{self.job_id} was cancelled")
        if self.cached:
            # Replay this job's own chunk plan against the cached
            # distribution — the same schedule a dedicated (possibly
            # chunked) run would have drawn from, so counts match it
            # bit-for-bit.
            chunk_results = []
            for shots, seed in self.chunk_plan():
                derived = resample_result(self._distribution, shots, seed)
                if derived is None:  # defensive: entries always carry one
                    derived = self._run_chunk(shots, seed)
                chunk_results.append(derived)
            merged = merge_chunk_results(chunk_results, self.shots, self.seed)
            merged.metadata["distribution_cache"] = True
            self._result = merged
            self._finish_span(status="done", cached=True)
            return self._result
        if self.derived:
            try:
                source_result = self._source.result(timeout=timeout)
            except JobError:
                if self._source.status() is not JobStatus.CANCELLED:
                    raise
                # The group primary was cancelled out from under us; this
                # job was not, so run it independently (dedup must stay a
                # transparent optimization).
                chunk_results = [
                    self._run_chunk(shots, seed) for shots, seed in self.chunk_plan()
                ]
                self._result = merge_chunk_results(
                    chunk_results, self.shots, self.seed
                )
                self._finish_span(status="done", fallback=True)
                return self._result
            if self._role == ROLE_SHARE:
                self._result = clone_result(source_result, self.seed)
            else:
                # Replay this job's own chunk plan so the derived counts are
                # bit-identical to a dedicated (possibly chunked) run; fall
                # back to real execution per chunk when the primary carried
                # no exact distribution (per-shot statevector fallback).
                chunk_results = []
                for shots, seed in self.chunk_plan():
                    derived = resample_result(source_result, shots, seed)
                    if derived is None:
                        derived = self._run_chunk(shots, seed)
                    chunk_results.append(derived)
                self._result = merge_chunk_results(
                    chunk_results, self.shots, self.seed
                )
            self._finish_span(status="done", derived=True)
            return self._result
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            chunk_results = []
            chunk_elapsed = []
            for future in self._futures:
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                result, elapsed, _trace = future.result(timeout=remaining)
                chunk_results.append(result)
                chunk_elapsed.append(elapsed)
        except CancelledError:
            self._cancelled = True
            self._finish_span(status="cancelled")
            raise JobError(f"{self.job_id} was cancelled") from None
        except FutureTimeoutError:
            # Not terminal: the chunks keep running and result() may be
            # retried with a fresh deadline.
            raise JobError(f"{self.job_id} timed out after {timeout}s") from None
        except Exception as exc:
            self._error = exc
            self._finish_span(status="error", error=type(exc).__name__)
            raise JobError(f"{self.job_id} failed: {exc}") from exc
        # Worker wall-clock is recorded at collection time (the workers may
        # live in another process); guard against a concurrent first
        # result() call double-counting it.
        with self._lock:
            if not self._pool_elapsed_recorded:
                self._chunk_elapsed.extend(chunk_elapsed)
                self._pool_elapsed_recorded = True
        collect_span = (
            self._span.child("collect", chunks=len(chunk_results))
            if self._span is not None
            else None
        )
        self._result = merge_chunk_results(chunk_results, self.shots, self.seed)
        self._publish_distribution(self._result)
        if collect_span is not None:
            collect_span.finish()
        self._finish_span(status="done")
        return self._result

    def counts(self, timeout: Optional[float] = None) -> Counts:
        """Shorthand for ``job.result().counts``."""
        return self.result(timeout=timeout).counts

    def __repr__(self) -> str:
        return (
            f"<Job {self.job_id} {self.circuit.name!r} on {self.backend.name!r} "
            f"shots={self.shots} status={self.status().value}>"
        )


class JobSet:
    """An ordered batch of :class:`Job` objects with bulk collection."""

    def __init__(self, jobs: Sequence[Job]) -> None:
        self.jobs: List[Job] = list(jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, index: int) -> Job:
        return self.jobs[index]

    def statuses(self) -> List[JobStatus]:
        """Return every job's current status, in submission order."""
        return [job.status() for job in self.jobs]

    def done(self) -> bool:
        """Return ``True`` once every job has finished."""
        return all(job.done() for job in self.jobs)

    def cancel(self) -> List[bool]:
        """Attempt to cancel every job; returns per-job success flags."""
        return [job.cancel() for job in self.jobs]

    def result(self, timeout: Optional[float] = None) -> List[Result]:
        """Block until all jobs finish and return their results in order.

        ``timeout`` is one shared deadline for the whole batch, not per
        job.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        results = []
        for job in self.jobs:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            results.append(job.result(timeout=remaining))
        return results

    def counts(self, timeout: Optional[float] = None) -> List[Counts]:
        """Return every job's counts, in submission order (shared deadline)."""
        return [result.counts for result in self.result(timeout=timeout)]

    def as_completed(
        self, timeout: Optional[float] = None
    ) -> Iterator[Job]:
        """Yield each job as it finishes, in completion order.

        Streaming counterpart of :meth:`result`: a sweep can consume fast
        jobs while slow ones still run.  Every job is yielded **exactly
        once**, whatever its terminal state — callers see cancelled and
        failed jobs too (their ``result()`` raises
        :class:`~repro.exceptions.JobError`), so the stream never silently
        drops work.  Derived and distribution-cached jobs surface as soon
        as their source is settled.

        Raises
        ------
        JobError
            When ``timeout`` (seconds, for the whole stream) expires with
            jobs still pending.  The pending jobs keep running and remain
            collectable individually.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        pending = list(self.jobs)
        # Exponential poll backoff: snappy while jobs finish quickly, near
        # zero CPU while long engine runs are in flight (a poll is the only
        # mechanism that also covers derived/cached jobs, which settle with
        # their source rather than with a future of their own).
        delay = 0.001
        while pending:
            still_pending = []
            progressed = False
            for job in pending:
                if job.done():
                    progressed = True
                    yield job
                else:
                    still_pending.append(job)
            pending = still_pending
            if not pending:
                return
            if deadline is not None and time.monotonic() > deadline:
                raise JobError(
                    f"{len(pending)} job(s) still pending after {timeout}s"
                )
            if progressed:
                delay = 0.001
            else:
                time.sleep(delay)
                delay = min(delay * 2, 0.05)

    @property
    def time_taken(self) -> float:
        """Return the summed chunk wall-clock time across the batch."""
        return float(sum(job.time_taken for job in self.jobs))

    def trace(self) -> List[Optional[dict]]:
        """Return every job's trace span tree, in submission order."""
        return [job.trace() for job in self.jobs]

    @property
    def num_executed(self) -> int:
        """Return how many jobs actually ran on a backend.

        Derived (in-call dedup) and distribution-cached (cross-call reuse)
        jobs never touch a backend, so they are excluded.
        """
        return sum(1 for job in self.jobs if not job.derived and not job.cached)

    @property
    def num_cached(self) -> int:
        """Return how many jobs were served by the distribution cache."""
        return sum(1 for job in self.jobs if job.cached)

    def __repr__(self) -> str:
        from collections import Counter

        tally = Counter(status.value for status in self.statuses())
        summary = ", ".join(f"{k}={v}" for k, v in sorted(tally.items()))
        return f"<JobSet of {len(self.jobs)} jobs: {summary}>"
