"""``execute()`` — the batched, parallel front door of the runtime.

One call covers the paper's whole execution surface::

    from repro.runtime import execute, get_backend

    job = execute(circuit, "statevector", shots=4096, seed=7)
    result = job.result()

    jobs = execute(sweep_circuits, get_backend("noisy:ibmqx4"),
                   shots=8192, seed=2020, max_workers=4)
    for counts in jobs.counts():
        ...

Semantics:

* **Batching** — a list of circuits becomes a :class:`~repro.runtime.job.JobSet`
  whose jobs fan out over a shared thread pool (NumPy kernels release the
  GIL, so noisy-simulation batches genuinely overlap).
* **Deduplication** — with ``dedupe=True`` (default), jobs with the same
  ``(circuit.fingerprint(), backend)`` simulate the distribution once and
  share/re-sample it (see :mod:`repro.runtime.batching`), preserving the
  exact counts a dedicated run would have produced.
* **Shot chunking** — ``chunk_shots=N`` splits each job into ≤N-shot chunks
  executed in parallel, with per-chunk seeds spawned deterministically from
  the caller's seed; worker count never changes the merged counts.
* **Determinism** — an unchunked, unbatched ``execute`` is bit-identical to
  the sequential ``backend.run`` loop it replaces.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Union

from repro.circuits.circuit import QuantumCircuit
from repro.devices.backend import Backend
from repro.exceptions import JobError
from repro.runtime.batching import ROLE_INDEPENDENT, ROLE_PRIMARY, plan_batches
from repro.runtime.job import Job, JobSet
from repro.runtime.provider import resolve_backend

CircuitInput = Union[QuantumCircuit, Sequence[QuantumCircuit]]
BackendInput = Union[str, Backend, Sequence[Union[str, Backend]]]


def _default_workers() -> int:
    return min(32, (os.cpu_count() or 1))


def _broadcast(value, count: int, name: str) -> list:
    """Expand a scalar to ``count`` entries or validate a sequence's length."""
    if isinstance(value, (list, tuple)):
        if len(value) != count:
            raise JobError(
                f"{name} list has {len(value)} entries for {count} circuit(s)"
            )
        return list(value)
    return [value] * count


def execute(
    circuits: CircuitInput,
    backend: BackendInput,
    shots: Union[int, Sequence[int]] = 1024,
    seed: Union[None, int, Sequence[Optional[int]]] = None,
    max_workers: Optional[int] = None,
    chunk_shots: Optional[int] = None,
    dedupe: bool = True,
) -> Union[Job, JobSet]:
    """Submit one circuit or a batch for (parallel) execution.

    Parameters
    ----------
    circuits:
        A :class:`~repro.circuits.circuit.QuantumCircuit` or a sequence of
        them.
    backend:
        A backend instance, a provider spec string (``"noisy:ibmqx4"``), or
        a per-circuit sequence of either.
    shots / seed:
        Scalars apply to every circuit; sequences must match the batch
        length.  A scalar seed replicates the sequential-loop convention of
        running every circuit with the *same* seed.
    max_workers:
        Thread-pool width (default: CPU count, capped at 32).  ``1`` forces
        serial execution — the merged counts are identical either way.
    chunk_shots:
        Split each job into chunks of at most this many shots (parallel
        shot sharding for the per-shot Monte-Carlo engines).
    dedupe:
        Group identical ``(circuit, backend)`` jobs so the distribution is
        simulated once and re-sampled per job.

    Returns
    -------
    Job or JobSet
        A single :class:`Job` when ``circuits`` is a lone circuit, else a
        :class:`JobSet` in input order.  Submission returns immediately;
        call ``.result()`` to collect.
    """
    single = isinstance(circuits, QuantumCircuit)
    circuit_list: List[QuantumCircuit] = [circuits] if single else list(circuits)
    if not circuit_list:
        return JobSet([])
    count = len(circuit_list)
    # Resolve each distinct spec string once so repeated specs share one
    # backend instance — dedup groups by backend identity, so per-circuit
    # resolution would silently disable batching for spec-string callers.
    resolved_specs: dict = {}
    backends = []
    for spec in _broadcast(backend, count, "backend"):
        if isinstance(spec, Backend):
            backends.append(spec)
            continue
        if spec not in resolved_specs:
            resolved_specs[spec] = resolve_backend(spec)
        backends.append(resolved_specs[spec])
    shots_list = [int(s) for s in _broadcast(shots, count, "shots")]
    seed_list = _broadcast(seed, count, "seed")
    # Validate everything before any job reaches the pool: a late failure
    # would leak already-submitted work with no Job handle to collect it.
    for s in shots_list:
        if s < 0:
            raise JobError(f"shots must be non-negative, got {s}")
    if chunk_shots is not None and chunk_shots < 1:
        raise JobError(f"chunk_shots must be positive, got {chunk_shots}")
    if max_workers is not None and max_workers < 1:
        raise JobError(f"max_workers must be positive, got {max_workers}")

    plan = plan_batches(circuit_list, backends, shots_list, seed_list, dedupe=dedupe)
    executor = ThreadPoolExecutor(
        max_workers=max_workers or _default_workers(),
        thread_name_prefix="repro-runtime",
    )
    jobs: List[Job] = []
    try:
        for job_plan in plan.jobs:
            index = job_plan.index
            primary = job_plan.role in (ROLE_PRIMARY, ROLE_INDEPENDENT)
            job = Job(
                circuit_list[index],
                backends[index],
                shots_list[index],
                seed_list[index],
                role=job_plan.role,
                source=None if primary else jobs[job_plan.source],
                chunk_shots=chunk_shots,
            )
            if primary:
                job._submit(executor)
            jobs.append(job)
    finally:
        # Queued work keeps running; the pool just tears down as it drains.
        executor.shutdown(wait=False)
    return jobs[0] if single else JobSet(jobs)


def execute_and_collect(
    circuits: CircuitInput,
    backend: BackendInput,
    shots: Union[int, Sequence[int]] = 1024,
    seed: Union[None, int, Sequence[Optional[int]]] = None,
    **options,
):
    """Blocking convenience: ``execute(...)`` then ``.result()`` immediately."""
    submitted = execute(circuits, backend, shots=shots, seed=seed, **options)
    return submitted.result()
