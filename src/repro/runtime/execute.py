"""``execute()`` — the batched, parallel front door of the runtime.

One call covers the paper's whole execution surface::

    from repro.runtime import execute, get_backend

    job = execute(circuit, "statevector", shots=4096, seed=7)
    result = job.result()

    jobs = execute(sweep_circuits, get_backend("noisy:ibmqx4"),
                   shots=8192, seed=2020, max_workers=4)
    for job in jobs.as_completed():
        ...

Semantics:

* **Batching** — a list of circuits becomes a :class:`~repro.runtime.job.JobSet`
  whose jobs fan out over a shared executor (see :mod:`repro.runtime.pool`):
  ``executor="thread"`` for the NumPy engines (their kernels release the
  GIL), ``"process"`` for the GIL-bound per-shot engines (stabilizer,
  trajectory), ``"serial"`` for inline execution.  Executors are
  process-wide and reused across calls — no per-call pool churn.
* **Deduplication** — with ``dedupe=True`` (default), jobs with the same
  ``(circuit.fingerprint(), backend)`` simulate the distribution once and
  share/re-sample it (see :mod:`repro.runtime.batching`), preserving the
  exact counts a dedicated run would have produced.
* **Cross-call distribution caching** — with ``distribution_cache`` set, a
  primary whose ``(circuit fingerprint, backend content hash)`` was already
  simulated by an *earlier* call re-samples the cached distribution instead
  of re-simulating (see :mod:`repro.runtime.distcache`) — same counts,
  none of the work.
* **Shot chunking** — ``chunk_shots=N`` splits each job into ≤N-shot chunks
  executed in parallel, with per-chunk seeds spawned deterministically from
  the caller's seed; worker count never changes the merged counts.
* **Priorities** — higher-priority jobs are submitted to the executor
  first (FIFO queues make that start-order; under ``executor="serial"`` it
  is the exact execution order).  Priorities never affect counts or the
  returned job order.
* **Determinism** — an unchunked, unbatched, uncached ``execute`` is
  bit-identical to the sequential ``backend.run`` loop it replaces, and
  every executor kind, chunking choice and cache state reproduces those
  same counts for the same seed.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Union

from repro.circuits.circuit import QuantumCircuit
from repro.devices.backend import Backend
from repro.exceptions import JobError
from repro.obs.trace import Span, tracing_enabled
from repro.runtime.batching import (
    ROLE_CACHED,
    ROLE_INDEPENDENT,
    ROLE_PRIMARY,
    plan_batches,
)
from repro.runtime.distcache import (
    DEFAULT_DISTRIBUTION_CACHE,
    DistributionCache,
    distribution_key,
)
from repro.runtime.job import Job, JobSet
from repro.runtime.pool import EXECUTOR_ENV_VAR, executor_kind, get_executor
from repro.runtime.profile import (
    DEFAULT_COST_MODEL,
    prepare_profile_key,
    profile_key,
)
from repro.runtime.provider import resolve_backend
from repro.runtime.retry import resolve_retry_policy
from repro.runtime.scheduler import (
    executor_kind_for,
    plan_chunk_shots,
    resolve_schedule_mode,
)

CircuitInput = Union[QuantumCircuit, Sequence[QuantumCircuit]]
BackendInput = Union[str, Backend, Sequence[Union[str, Backend]]]
DistCacheInput = Union[bool, DistributionCache, None]
ChunkInput = Union[None, int, str]


def _broadcast(value, count: int, name: str) -> list:
    """Expand a scalar to ``count`` entries or validate a sequence's length."""
    if isinstance(value, (list, tuple)):
        if len(value) != count:
            raise JobError(
                f"{name} list has {len(value)} entries for {count} circuit(s)"
            )
        return list(value)
    return [value] * count


def _resolve_distribution_cache(
    distribution_cache: DistCacheInput,
) -> Optional[DistributionCache]:
    """Map the ``distribution_cache`` argument to a cache instance or ``None``."""
    if distribution_cache is None or distribution_cache is False:
        return None
    if distribution_cache is True:
        return DEFAULT_DISTRIBUTION_CACHE
    if isinstance(distribution_cache, DistributionCache):
        return distribution_cache
    raise JobError(
        "distribution_cache must be a bool or a DistributionCache, "
        f"got {type(distribution_cache).__name__}"
    )


def execute(
    circuits: CircuitInput,
    backend: BackendInput,
    shots: Union[int, Sequence[int]] = 1024,
    seed: Union[None, int, Sequence[Optional[int]]] = None,
    max_workers: Optional[int] = None,
    chunk_shots: ChunkInput = None,
    dedupe: bool = True,
    executor: Optional[str] = None,
    priority: Union[int, Sequence[int]] = 0,
    distribution_cache: DistCacheInput = False,
    schedule: Optional[str] = None,
    trace_parent: Optional[Span] = None,
    retry=None,
    fault_plan=None,
) -> Union[Job, JobSet]:
    """Submit one circuit or a batch for (parallel) execution.

    Parameters
    ----------
    circuits:
        A :class:`~repro.circuits.circuit.QuantumCircuit` or a sequence of
        them.
    backend:
        A backend instance, a provider spec string (``"noisy:ibmqx4"``), or
        a per-circuit sequence of either.
    shots / seed:
        Scalars apply to every circuit; sequences must match the batch
        length.  A scalar seed replicates the sequential-loop convention of
        running every circuit with the *same* seed.
    max_workers:
        Pool width for the thread/process executors (default: CPU count,
        capped at 32).  Pools are shared process-wide per ``(kind, width)``
        and reused across calls.  Width never changes the merged counts.
    chunk_shots:
        Split each job into chunks of at most this many shots (parallel
        shot sharding for the per-shot Monte-Carlo engines).  ``"auto"``
        (adaptive schedule only) sizes chunks from the cost model's
        measured per-shot cost; the resolved size is recorded in
        ``job.plan`` and the counts equal an explicit ``chunk_shots`` of
        that same value.
    dedupe:
        Group identical ``(circuit, backend)`` jobs so the distribution is
        simulated once and re-sampled per job.
    executor:
        ``"serial"``, ``"thread"`` or ``"process"``; ``None`` reads
        ``$REPRO_EXECUTOR``.  With neither set, the adaptive schedule
        picks per backend — ``"process"`` for the GIL-bound per-shot
        engines (stabilizer, trajectory; work crosses the boundary by
        pickle, and device circuits are transpiled once in the parent
        before fan-out), ``"thread"`` for the NumPy engines — while
        ``schedule="fixed"`` keeps the flat ``"thread"`` default.
    priority:
        Scalar or per-circuit submission priority (default 0).  Higher
        priorities reach the executor queue first; job order in the
        returned :class:`JobSet` is unaffected.
    distribution_cache:
        Cross-call reuse policy: ``False`` (default) off, ``True`` the
        process-wide default :class:`~repro.runtime.distcache.DistributionCache`,
        or a cache instance.  Cached hits re-sample counts without
        simulating — bit-identical to a fresh run.  A missing entry is
        stored by a done-callback the moment the primary's simulation
        *completes* (nobody has to collect the result first), so an
        overlapping ``execute()`` call issued after that point is served
        from the cache instead of simulating again.  When the cache has a
        disk tier (``$REPRO_CACHE_DIR`` or ``cache_dir=``), entries also
        survive into future processes.
    schedule:
        ``"adaptive"`` or ``"fixed"``; ``None`` reads ``$REPRO_SCHEDULE``
        and falls back to ``"adaptive"``.  The adaptive schedule picks
        backend-aware executors and cost-model-driven chunk sizes — but
        only where counts cannot change: explicit ``chunk_shots`` /
        ``executor`` always win, and a seeded job keeps the fixed chunk
        plan unless it opts in with ``chunk_shots="auto"``.  For a fixed
        seed, counts are bit-identical under both modes (see
        :mod:`repro.runtime.scheduler`).  Both modes feed the cost model
        with every completed chunk's measured wall-clock.
    trace_parent:
        Optional :class:`~repro.obs.trace.Span` to hang the per-job trace
        spans off (the service layer passes its per-submission root).
        With ``None``, each job gets its own root span as long as
        process-wide tracing is enabled; job traces are read back via
        ``job.trace()`` / ``jobset.trace()``.
    retry:
        Chunk retry policy: ``None`` uses the defaults
        (``$REPRO_MAX_RETRIES``, falling back to 2 retries per chunk),
        ``False``/``0`` disables retries, an int sets ``max_retries``, a
        dict or :class:`~repro.runtime.retry.RetryPolicy` sets every knob
        (``max_retries``, job-wide ``retry_budget``, ``backoff_s``,
        ``max_backoff_s``).  Retried chunks resubmit with their original
        ``(seed, chunk index)``, so retries never change counts.
    fault_plan:
        A :class:`repro.faults.FaultPlan` (or spec dict/JSON) consulted
        per chunk attempt for chaos testing; ``None`` uses the ambient
        plan (``$REPRO_FAULT_PLAN`` / :func:`repro.faults.activate`), and
        with no ambient plan injection is completely off.

    Returns
    -------
    Job or JobSet
        A single :class:`Job` when ``circuits`` is a lone circuit, else a
        :class:`JobSet` in input order.  Submission returns immediately
        (``executor="serial"`` runs inline); call ``.result()`` or iterate
        ``.as_completed()`` to collect.
    """
    mode = resolve_schedule_mode(schedule)
    adaptive = mode == "adaptive"
    auto_chunks = isinstance(chunk_shots, str)
    if auto_chunks and chunk_shots != "auto":
        raise JobError(
            f"chunk_shots must be a positive int, None or 'auto', got {chunk_shots!r}"
        )
    if auto_chunks and not adaptive:
        raise JobError('chunk_shots="auto" requires schedule="adaptive"')
    single = isinstance(circuits, QuantumCircuit)
    circuit_list: List[QuantumCircuit] = [circuits] if single else list(circuits)
    if not circuit_list:
        return JobSet([])
    count = len(circuit_list)
    # Resolve each distinct spec string once so repeated specs share one
    # backend instance — dedup groups by backend identity, so per-circuit
    # resolution would silently disable batching for spec-string callers.
    resolved_specs: dict = {}
    backends = []
    for spec in _broadcast(backend, count, "backend"):
        if isinstance(spec, Backend):
            backends.append(spec)
            continue
        if spec not in resolved_specs:
            resolved_specs[spec] = resolve_backend(spec)
        backends.append(resolved_specs[spec])
    shots_list = [int(s) for s in _broadcast(shots, count, "shots")]
    seed_list = _broadcast(seed, count, "seed")
    priority_list = [int(p) for p in _broadcast(priority, count, "priority")]
    dist_cache = _resolve_distribution_cache(distribution_cache)
    # Validate everything before any job reaches the pool: a late failure
    # would leak already-submitted work with no Job handle to collect it.
    for s in shots_list:
        if s < 0:
            raise JobError(f"shots must be non-negative, got {s}")
    if chunk_shots is not None and not auto_chunks and chunk_shots < 1:
        raise JobError(f"chunk_shots must be positive, got {chunk_shots}")
    if max_workers is not None and max_workers < 1:
        raise JobError(f"max_workers must be positive, got {max_workers}")
    retry_policy = resolve_retry_policy(retry)
    if fault_plan is not None:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.from_spec(fault_plan)
    else:
        from repro.faults import active_plan

        fault_plan = active_plan()
    # Backend-aware executor selection: an explicit executor=, a
    # $REPRO_EXECUTOR override, or schedule="fixed" pin one shared pool for
    # the whole batch; otherwise the adaptive schedule routes each job to
    # its backend's natural pool kind (per-shot -> process, NumPy ->
    # thread).  Pool choice never touches counts.
    shared_pool = None
    if (
        executor is not None
        or not adaptive
        or os.environ.get(EXECUTOR_ENV_VAR, "").strip()
    ):
        shared_pool = get_executor(executor, max_workers)

    def pool_for(target: Backend):
        if shared_pool is not None:
            return shared_pool
        return get_executor(executor_kind_for(target), max_workers)

    # Adaptive chunk sizing, resolved once per (profile key, shots) so that
    # identical jobs inside one call (dedup groups, repeated sweep points)
    # always share a plan even while cost observations stream in.
    resolved_chunks: dict = {}

    def chunk_for(index: int) -> Optional[int]:
        if not auto_chunks and chunk_shots is not None:
            return chunk_shots  # explicit always wins
        if not adaptive:
            return None
        if not auto_chunks and seed_list[index] is not None:
            # A caller seed pins the chunk plan: adaptive splitting here
            # would change counts, so it only applies on explicit opt-in.
            return None
        key = (profile_key(backends[index], circuit_list[index]), shots_list[index])
        if key not in resolved_chunks:
            resolved_chunks[key] = plan_chunk_shots(
                backends[index],
                circuit_list[index],
                shots_list[index],
                width=max_workers,
                cost_model=DEFAULT_COST_MODEL,
            )
        return resolved_chunks[key]

    plan = plan_batches(circuit_list, backends, shots_list, seed_list, dedupe=dedupe)
    jobs: List[Job] = []
    to_submit: List[Job] = []
    for job_plan in plan.jobs:
        index = job_plan.index
        primary = job_plan.role in (ROLE_PRIMARY, ROLE_INDEPENDENT)
        distribution = None
        store = None
        if primary and dist_cache is not None:
            key = distribution_key(circuit_list[index], backends[index])
            if key is not None:
                distribution = dist_cache.lookup(key)
                if distribution is None:
                    store = (dist_cache, key)
        job_chunk = chunk_for(index)
        if distribution is not None:
            # Cross-call hit: the job re-samples the cached distribution
            # (and still serves as dedup source for this call's siblings).
            job = Job(
                circuit_list[index],
                backends[index],
                shots_list[index],
                seed_list[index],
                role=ROLE_CACHED,
                chunk_shots=job_chunk,
                priority=priority_list[index],
                distribution=distribution,
            )
        else:
            job = Job(
                circuit_list[index],
                backends[index],
                shots_list[index],
                seed_list[index],
                role=job_plan.role,
                source=None if primary else jobs[job_plan.source],
                chunk_shots=job_chunk,
                priority=priority_list[index],
            )
            job._dist_store = store
            job._retry_policy = retry_policy
            job._fault_plan = fault_plan
            if primary:
                job._cost_probe = (
                    DEFAULT_COST_MODEL,
                    profile_key(backends[index], circuit_list[index]),
                    prepare_profile_key(backends[index], circuit_list[index]),
                )
                to_submit.append(job)
        job.plan = {"schedule": mode, "chunk_shots": job_chunk, "executor": None}
        if trace_parent is not None or tracing_enabled():
            attrs = {
                "job_id": job.job_id,
                "circuit": getattr(circuit_list[index], "name", None),
                "backend": getattr(backends[index], "name", None),
                "shots": shots_list[index],
                "role": "cached" if job.cached else job_plan.role,
            }
            if trace_parent is not None:
                job._span = trace_parent.child("circuit", **attrs)
            else:
                job._span = Span("job", attrs)
        jobs.append(job)
    # Stable sort: equal ranks keep plan order, higher priorities go
    # first.  Under the adaptive schedule, ties are broken by the cost
    # model's measured prepare (transpile) estimate, most expensive first:
    # transpile-heavy jobs reach the pool while it is still filling, so
    # their parent-side lowering overlaps the cheap jobs' execution.
    # Dispatch order never changes counts or the returned job order.  The
    # shared pools outlive the call — no shutdown, no churn.
    def submit_rank(job: Job):
        prepare_estimate = 0.0
        if adaptive and getattr(job.backend, "transpile", False):
            prepare_estimate = (
                DEFAULT_COST_MODEL.per_prepare(
                    prepare_profile_key(job.backend, job.circuit)
                )
                or 0.0
            )
        return (-job.priority, -prepare_estimate)

    for job in sorted(to_submit, key=submit_rank):
        pool = pool_for(job.backend)
        job.plan["executor"] = executor_kind(pool)
        job._submit(pool)
    return jobs[0] if single else JobSet(jobs)


def execute_and_collect(
    circuits: CircuitInput,
    backend: BackendInput,
    shots: Union[int, Sequence[int]] = 1024,
    seed: Union[None, int, Sequence[Optional[int]]] = None,
    **options,
):
    """Blocking convenience: ``execute(...)`` then ``.result()`` immediately."""
    submitted = execute(circuits, backend, shots=shots, seed=seed, **options)
    return submitted.result()
