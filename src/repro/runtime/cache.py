"""Transpile caching keyed by canonical circuit fingerprints.

Transpiling for a device is the most expensive *classical* step of a noisy
run, and the paper's sweeps re-execute the same instrumented circuit at many
noise scales and shot counts.  :class:`TranspileCache` memoises
``transpile_for_device`` output keyed by
``(circuit.fingerprint(), device content fingerprint, layout, optimize)``
so a sweep pays the lowering cost once per distinct configuration — the
profile-guided "pay the analysis once, reuse it across runs" discipline.

The noise scale deliberately does **not** participate in the key: lowering
never sees it — ``transpile_for_device`` takes no noise argument and layout
selection reads the device's unscaled calibration — so a noise sweep's
per-scale backends all hit the same entry.

The cache is safe to share across threads (the runtime's job pool fans out
across a shared pool) and bounded LRU.  Cached circuits are returned as-is:
callers must treat them as immutable, which every engine in
:mod:`repro.simulators` already does.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.devices.device import DeviceModel
from repro.transpiler.layout import Layout

#: Cache key: (circuit fingerprint, device fingerprint, layout tuple, optimize).
CacheKey = Tuple[str, str, Optional[Tuple[int, ...]], bool]


def device_fingerprint(device: DeviceModel) -> str:
    """Return a content hash of everything lowering can depend on.

    Keying the cache on ``device.name`` alone would let two same-named
    devices with different coupling, basis gates or calibration silently
    share transpiled circuits, so the name, topology and calibration data
    all participate.  Device models are declarative and treated as
    immutable, so the digest is memoised on the instance.
    """
    cached = getattr(device, "_structure_fingerprint", None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    hasher.update(
        f"{device.name}|{device.num_qubits}|{device.basis_gates}".encode()
    )
    hasher.update(repr(sorted(device.coupling_map.directed_edges)).encode())
    for qcal in device.qubit_calibrations:
        hasher.update(
            repr(
                (
                    qcal.t1,
                    qcal.t2,
                    qcal.readout_p0_given_1,
                    qcal.readout_p1_given_0,
                    qcal.frequency_ghz,
                )
            ).encode()
        )
    for gcal in device.gate_calibrations:
        hasher.update(
            repr((gcal.name, gcal.qubits, gcal.error_rate, gcal.duration_ns)).encode()
        )
    digest = hasher.hexdigest()
    device._structure_fingerprint = digest
    return digest


def transpile_key(
    circuit: QuantumCircuit,
    device: DeviceModel,
    layout: Optional[Layout] = None,
    optimize: bool = True,
) -> CacheKey:
    """Build the canonical cache key for one transpile request."""
    layout_key = None if layout is None else tuple(layout.virtual_to_physical)
    return (
        circuit.fingerprint(),
        device_fingerprint(device),
        layout_key,
        bool(optimize),
    )


class TranspileCache:
    """A bounded, thread-safe LRU cache of transpiled circuits.

    Parameters
    ----------
    maxsize:
        Maximum number of cached circuits; ``0`` disables storage (every
        lookup misses), which is how benchmarks measure the uncached path.

    Attributes
    ----------
    hits / misses:
        Lifetime lookup statistics (survive :meth:`clear`).
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, QuantumCircuit]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __getstate__(self) -> dict:
        """Pickle policy, not contents (for process-pool workers).

        The lock cannot cross a process boundary and shipping every cached
        circuit with every task would dwarf the task itself, so the worker
        side of an explicit-cache backend re-transpiles per task (each task
        unpickles a fresh, empty cache with the same ``maxsize``).
        Transpilation is deterministic, so results are unaffected; backends
        with the default ``cache=None`` instead use the worker's own
        process-wide cache, which fork-started workers inherit warm.
        """
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_entries"] = OrderedDict()
        state["hits"] = 0
        state["misses"] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def lookup(self, key: CacheKey) -> Optional[QuantumCircuit]:
        """Return the cached circuit for ``key`` (marking a hit) or ``None``."""
        with self._lock:
            circuit = self._entries.get(key)
            if circuit is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return circuit

    def store(self, key: CacheKey, circuit: QuantumCircuit) -> None:
        """Insert a transpiled circuit, evicting the LRU entry when full."""
        if self.maxsize == 0:
            return
        with self._lock:
            self._entries[key] = circuit
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def transpile(
        self,
        circuit: QuantumCircuit,
        device: DeviceModel,
        layout: Optional[Layout] = None,
        optimize: bool = True,
    ) -> QuantumCircuit:
        """Return the device-lowered circuit, computing it on a miss."""
        key = transpile_key(circuit, device, layout, optimize)
        cached = self.lookup(key)
        if cached is not None:
            return cached
        from repro.transpiler.passes import transpile_for_device

        lowered = transpile_for_device(circuit, device, layout=layout, optimize=optimize)
        self.store(key, lowered)
        return lowered

    def clear(self) -> None:
        """Drop all entries (statistics are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Return ``{"entries", "hits", "misses", "hit_rate"}``."""
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"TranspileCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )


#: Process-wide default cache used by the device backends.
DEFAULT_CACHE = TranspileCache()


def transpile_cached(
    circuit: QuantumCircuit,
    device: DeviceModel,
    layout: Optional[Layout] = None,
    optimize: bool = True,
    cache: Optional[TranspileCache] = None,
) -> QuantumCircuit:
    """Transpile through ``cache`` (the process-wide default when ``None``)."""
    target = DEFAULT_CACHE if cache is None else cache
    return target.transpile(circuit, device, layout, optimize)


def transpile_cache_stats() -> dict:
    """Return the default cache's statistics."""
    return DEFAULT_CACHE.stats()


def clear_transpile_cache() -> None:
    """Empty the default cache (e.g. between benchmark rounds)."""
    DEFAULT_CACHE.clear()
