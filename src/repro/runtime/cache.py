"""Transpile caching keyed by canonical circuit fingerprints.

Transpiling for a device is the most expensive *classical* step of a noisy
run, and the paper's sweeps re-execute the same instrumented circuit at many
noise scales and shot counts.  :class:`TranspileCache` memoises
``transpile_for_device`` output keyed by
``(circuit.fingerprint(), device content fingerprint, layout, optimize)``
so a sweep pays the lowering cost once per distinct configuration — the
profile-guided "pay the analysis once, reuse it across runs" discipline.

The noise scale deliberately does **not** participate in the key: lowering
never sees it — ``transpile_for_device`` takes no noise argument and layout
selection reads the device's unscaled calibration — so a noise sweep's
per-scale backends all hit the same entry.

Storage lives in a shared :class:`~repro.runtime.store.CacheStore`
(thread-safe, bounded LRU) — the same machinery behind the distribution
cache.  Because the key is a pure content hash, entries also survive the
process when a disk tier is attached (``cache_dir=`` here, or
``$REPRO_CACHE_DIR`` for the process-wide default cache): a second CLI
invocation or CI shard running the same sweep skips every transpile.
Cached circuits are returned as-is: callers must treat them as immutable,
which every engine in :mod:`repro.simulators` already does.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.devices.device import DeviceModel
from repro.runtime.store import StoreBackedCache, default_cache_dir
from repro.transpiler.layout import Layout

#: Cache key: (circuit fingerprint, device fingerprint, layout tuple, optimize).
CacheKey = Tuple[str, str, Optional[Tuple[int, ...]], bool]


def device_fingerprint(device: DeviceModel) -> str:
    """Return a content hash of everything lowering can depend on.

    Keying the cache on ``device.name`` alone would let two same-named
    devices with different coupling, basis gates or calibration silently
    share transpiled circuits, so the name, topology and calibration data
    all participate.  Device models are declarative and treated as
    immutable, so the digest is memoised on the instance.
    """
    cached = getattr(device, "_structure_fingerprint", None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    hasher.update(
        f"{device.name}|{device.num_qubits}|{device.basis_gates}".encode()
    )
    hasher.update(repr(sorted(device.coupling_map.directed_edges)).encode())
    for qcal in device.qubit_calibrations:
        hasher.update(
            repr(
                (
                    qcal.t1,
                    qcal.t2,
                    qcal.readout_p0_given_1,
                    qcal.readout_p1_given_0,
                    qcal.frequency_ghz,
                )
            ).encode()
        )
    for gcal in device.gate_calibrations:
        hasher.update(
            repr((gcal.name, gcal.qubits, gcal.error_rate, gcal.duration_ns)).encode()
        )
    digest = hasher.hexdigest()
    device._structure_fingerprint = digest
    return digest


def transpile_key(
    circuit: QuantumCircuit,
    device: DeviceModel,
    layout: Optional[Layout] = None,
    optimize: bool = True,
) -> CacheKey:
    """Build the canonical cache key for one transpile request."""
    layout_key = None if layout is None else tuple(layout.virtual_to_physical)
    return (
        circuit.fingerprint(),
        device_fingerprint(device),
        layout_key,
        bool(optimize),
    )


class TranspileCache(StoreBackedCache):
    """Transpiled-circuit cache over the shared cache store.

    Parameters
    ----------
    maxsize:
        Maximum number of memory-tier entries; ``0`` disables the cache
        entirely (every lookup misses), which is how benchmarks measure
        the uncached path.
    cache_dir:
        Attach a persistent disk tier under ``<cache_dir>/transpile/``;
        ``None`` (default) keeps the cache memory-only.  The process-wide
        :data:`DEFAULT_CACHE` reads ``$REPRO_CACHE_DIR`` instead.

    Attributes
    ----------
    hits / misses:
        Lifetime lookup statistics (survive :meth:`clear`).  A disk-tier
        hit counts as a hit — per-tier detail lives in :meth:`stats`.

    Pickling ships configuration (bounds, disk directory), never contents:
    a process-pool worker unpickles an empty memory tier but shares the
    disk tier, so explicit-cache backends in spawn-started workers still
    reuse the parent's persisted transpiles (see
    :meth:`CacheStore.__getstate__`).
    """

    _namespace = "transpile"

    def __init__(self, maxsize: int = 1024, cache_dir: Optional[str] = None) -> None:
        super().__init__(maxsize, cache_dir)

    def lookup(self, key: CacheKey) -> Optional[QuantumCircuit]:
        """Return the cached circuit for ``key`` (marking a hit) or ``None``."""
        return self._store.lookup(key)

    def store(self, key: CacheKey, circuit: QuantumCircuit) -> None:
        """Insert a transpiled circuit, evicting the LRU entry when full."""
        self._store.store(key, circuit)

    def transpile(
        self,
        circuit: QuantumCircuit,
        device: DeviceModel,
        layout: Optional[Layout] = None,
        optimize: bool = True,
    ) -> QuantumCircuit:
        """Return the device-lowered circuit, computing it on a miss."""
        key = transpile_key(circuit, device, layout, optimize)
        cached = self.lookup(key)
        if cached is not None:
            return cached
        from repro.transpiler.passes import transpile_for_device

        lowered = transpile_for_device(circuit, device, layout=layout, optimize=optimize)
        self.store(key, lowered)
        return lowered


#: Process-wide default cache used by the device backends.  Attaches a disk
#: tier automatically when ``$REPRO_CACHE_DIR`` is set, so repeated CLI
#: invocations and CI shards share transpiles across processes.
DEFAULT_CACHE = TranspileCache(cache_dir=default_cache_dir())


def transpile_cached(
    circuit: QuantumCircuit,
    device: DeviceModel,
    layout: Optional[Layout] = None,
    optimize: bool = True,
    cache: Optional[TranspileCache] = None,
) -> QuantumCircuit:
    """Transpile through ``cache`` (the process-wide default when ``None``)."""
    target = DEFAULT_CACHE if cache is None else cache
    return target.transpile(circuit, device, layout, optimize)


def transpile_cache_stats() -> dict:
    """Return the default cache's statistics."""
    return DEFAULT_CACHE.stats()


def clear_transpile_cache() -> None:
    """Empty the default cache (e.g. between benchmark rounds)."""
    DEFAULT_CACHE.clear()
