"""Batched, cached, parallel job execution — the preferred run layer.

The paper's workflow is batch-shaped: every figure and table sweeps many
circuit variants (assertion points x noise scales x shot counts) across
interchangeable backends.  This package is the layer between the engines
(:mod:`repro.simulators`, :mod:`repro.devices`) and the drivers
(:mod:`repro.experiments`, benchmarks) that makes those sweeps cheap:

* :func:`~repro.runtime.execute.execute` — one entry point for a circuit
  or a batch, fanning out across circuits and shot chunks on a shared
  executor.
* :mod:`~repro.runtime.pool` — process-wide ``serial``/``thread``/
  ``process`` executors, lazily created and reused across calls (the
  process pool unlocks the GIL-bound per-shot engines).
* :class:`~repro.runtime.job.Job` / :class:`~repro.runtime.job.JobSet` —
  submit/status/result/cancel futures with priorities and streaming
  collection (:meth:`~repro.runtime.job.JobSet.as_completed`).
* :func:`~repro.runtime.provider.get_backend` — named backend registry
  (``"statevector"``, ``"noisy:ibmqx4"``, ...) replacing ad-hoc
  constructor calls.
* :class:`~repro.runtime.store.CacheStore` — the shared bounded-LRU store
  behind both caches, with an optional persistent disk tier
  (``$REPRO_CACHE_DIR`` / ``cache_dir=``) so entries survive the process.
* :class:`~repro.runtime.cache.TranspileCache` — fingerprint-keyed
  transpile memoisation wired into the device backends.
* :class:`~repro.runtime.distcache.DistributionCache` — cross-call
  distribution reuse: repeat runs of an exact-distribution backend
  re-sample cached probabilities instead of re-simulating, populated at
  job completion so overlapping calls share entries.
* :mod:`~repro.runtime.batching` — identical ``(circuit, backend)`` jobs
  simulate the distribution once and re-sample counts per job.
* :mod:`~repro.runtime.profile` / :mod:`~repro.runtime.scheduler` — the
  adaptive control layer: an online :class:`~repro.runtime.profile.CostModel`
  (EWMA per-shot/per-prepare estimates fed by every completed chunk,
  persisted through the cache store) drives backend-aware executor
  defaults and cost-sized shot chunks (``schedule="adaptive"``, the
  default), and :class:`~repro.runtime.scheduler.Scheduler` adds a
  fair-share multi-client submission queue with weighted round-robin
  dispatch and bounded in-flight admission control.

Everything is deterministic under a caller seed: serial, thread, process,
chunked, deduplicated, cached (memory- or disk-tier) and adaptively
scheduled execution all produce the same counts for the same seed.
"""

from repro.runtime.batching import BatchPlan, plan_batches
from repro.runtime.breaker import CircuitBreaker
from repro.runtime.cache import (
    DEFAULT_CACHE,
    TranspileCache,
    clear_transpile_cache,
    transpile_cache_stats,
    transpile_cached,
)
from repro.runtime.distcache import (
    DEFAULT_DISTRIBUTION_CACHE,
    DistributionCache,
    clear_distribution_cache,
    distribution_cache_stats,
    distribution_key,
)
from repro.runtime.execute import execute, execute_and_collect
from repro.runtime.job import Job, JobSet, JobStatus
from repro.runtime.pool import (
    EXECUTOR_KINDS,
    SerialExecutor,
    default_executor_kind,
    get_executor,
    pool_stats,
    shutdown_executors,
)
from repro.runtime.profile import (
    DEFAULT_COST_MODEL,
    CostModel,
    cost_model_stats,
    profile_key,
)
from repro.runtime.retry import (
    RetryPolicy,
    backoff_rng,
    next_backoff,
    resolve_retry_policy,
)
from repro.runtime.provider import (
    get_backend,
    list_backends,
    register_backend,
    register_device,
    resolve_backend,
)
from repro.runtime.scheduler import (
    DEADLINE_ACTIONS,
    SCHEDULE_MODES,
    ScheduledBatch,
    Scheduler,
    default_schedule_mode,
    executor_kind_for,
    is_per_shot_backend,
    plan_chunk_shots,
    plan_width,
)
from repro.runtime.store import (
    CacheStore,
    default_cache_dir,
    set_default_cache_dir,
)

# Register the runtime's stat sources (pools, both caches, the cost
# model) with the process-wide metrics registry.  Import-time is the
# right moment: anything that can run a job can be scraped.
from repro.obs.sources import register_runtime_sources as _register_runtime_sources

_register_runtime_sources()

__all__ = [
    "BatchPlan",
    "CacheStore",
    "CircuitBreaker",
    "CostModel",
    "DEADLINE_ACTIONS",
    "DEFAULT_CACHE",
    "DEFAULT_COST_MODEL",
    "DEFAULT_DISTRIBUTION_CACHE",
    "DistributionCache",
    "EXECUTOR_KINDS",
    "Job",
    "JobSet",
    "JobStatus",
    "RetryPolicy",
    "SCHEDULE_MODES",
    "ScheduledBatch",
    "Scheduler",
    "SerialExecutor",
    "TranspileCache",
    "backoff_rng",
    "clear_distribution_cache",
    "clear_transpile_cache",
    "cost_model_stats",
    "default_cache_dir",
    "default_executor_kind",
    "default_schedule_mode",
    "distribution_cache_stats",
    "distribution_key",
    "execute",
    "execute_and_collect",
    "executor_kind_for",
    "get_backend",
    "get_executor",
    "is_per_shot_backend",
    "list_backends",
    "next_backoff",
    "plan_batches",
    "plan_chunk_shots",
    "plan_width",
    "pool_stats",
    "profile_key",
    "register_backend",
    "register_device",
    "resolve_backend",
    "resolve_retry_policy",
    "set_default_cache_dir",
    "shutdown_executors",
    "transpile_cache_stats",
    "transpile_cached",
]
