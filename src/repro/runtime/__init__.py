"""Batched, cached, parallel job execution — the preferred run layer.

The paper's workflow is batch-shaped: every figure and table sweeps many
circuit variants (assertion points x noise scales x shot counts) across
interchangeable backends.  This package is the layer between the engines
(:mod:`repro.simulators`, :mod:`repro.devices`) and the drivers
(:mod:`repro.experiments`, benchmarks) that makes those sweeps cheap:

* :func:`~repro.runtime.execute.execute` — one entry point for a circuit
  or a batch, fanning out across circuits and shot chunks on a thread pool.
* :class:`~repro.runtime.job.Job` / :class:`~repro.runtime.job.JobSet` —
  submit/status/result/cancel futures over the pool.
* :func:`~repro.runtime.provider.get_backend` — named backend registry
  (``"statevector"``, ``"noisy:ibmqx4"``, ...) replacing ad-hoc
  constructor calls.
* :class:`~repro.runtime.cache.TranspileCache` — fingerprint-keyed
  transpile memoisation wired into the device backends.
* :mod:`~repro.runtime.batching` — identical ``(circuit, backend)`` jobs
  simulate the distribution once and re-sample counts per job.

Everything is deterministic under a caller seed: serial, parallel, chunked
and deduplicated execution all produce the same counts for the same seed.
"""

from repro.runtime.batching import BatchPlan, plan_batches
from repro.runtime.cache import (
    DEFAULT_CACHE,
    TranspileCache,
    clear_transpile_cache,
    transpile_cache_stats,
    transpile_cached,
)
from repro.runtime.execute import execute, execute_and_collect
from repro.runtime.job import Job, JobSet, JobStatus
from repro.runtime.provider import (
    get_backend,
    list_backends,
    register_backend,
    register_device,
    resolve_backend,
)

__all__ = [
    "BatchPlan",
    "DEFAULT_CACHE",
    "Job",
    "JobSet",
    "JobStatus",
    "TranspileCache",
    "clear_transpile_cache",
    "execute",
    "execute_and_collect",
    "get_backend",
    "list_backends",
    "plan_batches",
    "register_backend",
    "register_device",
    "resolve_backend",
    "transpile_cache_stats",
    "transpile_cached",
]
