"""Per-backend circuit breakers for the scheduler's admission path.

A backend that starts failing every batch — a sick device model, a bug in
an engine, a dependency gone missing in workers — would otherwise keep
consuming fair-share dispatch slots: each doomed batch occupies in-flight
capacity until its chunks exhaust their retries.  A
:class:`CircuitBreaker` watches per-backend-spec outcomes and, past a
failure-rate threshold, rejects new submissions for that spec up front
with a typed :class:`~repro.exceptions.CircuitOpen` carrying
``retry_after`` — the classic closed → open → half-open state machine:

``closed``
    Normal operation.  Outcomes stream into a sliding window; when the
    window holds at least ``min_samples`` outcomes and the failure rate
    reaches ``failure_threshold``, the breaker opens.
``open``
    Every submission is rejected with ``retry_after`` = time left until
    the cooldown expires.
``half_open``
    After ``cooldown_s``, up to ``probe_limit`` in-flight submissions are
    admitted as probes.  A probe failure reopens the breaker (fresh
    cooldown); ``probe_successes`` successful probes close it and clear
    the window.

Thread-safe; the scheduler holds one breaker per backend spec and calls
``allow()`` at submit time, ``record_success()``/``record_failure()`` at
settlement.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional, Tuple

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """One backend spec's failure-rate gate.

    Parameters
    ----------
    failure_threshold:
        Failure rate in ``(0, 1]`` that opens the breaker.
    min_samples:
        Outcomes the window must hold before the rate is trusted (a
        single failure must not open a cold breaker).
    window:
        Sliding-window length in outcomes.
    cooldown_s:
        Seconds an open breaker waits before probing.
    probe_limit:
        In-flight probes allowed while half-open.
    probe_successes:
        Consecutive probe successes required to close.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        failure_threshold: float = 0.5,
        min_samples: int = 8,
        window: int = 32,
        cooldown_s: float = 5.0,
        probe_limit: int = 1,
        probe_successes: int = 2,
        clock=time.monotonic,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold!r}"
            )
        if min_samples < 1 or window < min_samples:
            raise ValueError(
                f"need 1 <= min_samples <= window, got {min_samples}/{window}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s!r}")
        if probe_limit < 1 or probe_successes < 1:
            raise ValueError("probe_limit and probe_successes must be >= 1")
        self.failure_threshold = float(failure_threshold)
        self.min_samples = int(min_samples)
        self.window = int(window)
        self.cooldown_s = float(cooldown_s)
        self.probe_limit = int(probe_limit)
        self.probe_successes = int(probe_successes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._outcomes: deque = deque(maxlen=self.window)  # True = failure
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._probe_wins = 0
        self._transitions = 0
        self._rejections = 0

    # -- state machine (call with lock held) -----------------------------

    def _transition(self, state: str) -> None:
        if state != self._state:
            self._state = state
            self._transitions += 1

    def _failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def _maybe_half_open(self, now: float) -> None:
        if (
            self._state == "open"
            and self._opened_at is not None
            and now - self._opened_at >= self.cooldown_s
        ):
            self._transition("half_open")
            self._probes_in_flight = 0
            self._probe_wins = 0

    # -- public API ------------------------------------------------------

    def allow(self) -> Tuple[bool, float]:
        """Gate one submission: ``(admitted, retry_after_seconds)``.

        An admitted half-open submission is a *probe*: the breaker
        reserves one probe slot until the matching
        ``record_success``/``record_failure`` arrives.
        """
        now = self._clock()
        with self._lock:
            self._maybe_half_open(now)
            if self._state == "closed":
                return True, 0.0
            if self._state == "half_open":
                if self._probes_in_flight < self.probe_limit:
                    self._probes_in_flight += 1
                    return True, 0.0
                self._rejections += 1
                return False, self.cooldown_s
            remaining = self.cooldown_s
            if self._opened_at is not None:
                remaining = max(0.0, self.cooldown_s - (now - self._opened_at))
            self._rejections += 1
            return False, max(remaining, 1e-3)

    def record_success(self) -> None:
        with self._lock:
            self._outcomes.append(False)
            if self._state == "half_open":
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_wins += 1
                if self._probe_wins >= self.probe_successes:
                    self._transition("closed")
                    self._outcomes.clear()
                    self._opened_at = None

    def record_failure(self) -> None:
        now = self._clock()
        with self._lock:
            self._outcomes.append(True)
            if self._state == "half_open":
                # A failed probe: straight back to open, fresh cooldown.
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._transition("open")
                self._opened_at = now
                return
            if (
                self._state == "closed"
                and len(self._outcomes) >= self.min_samples
                and self._failure_rate() >= self.failure_threshold
            ):
                self._transition("open")
                self._opened_at = now

    @property
    def state(self) -> str:
        now = self._clock()
        with self._lock:
            self._maybe_half_open(now)
            return self._state

    def snapshot(self) -> dict:
        """JSON-safe view for ``stats()`` / ``/v1/health``."""
        now = self._clock()
        with self._lock:
            self._maybe_half_open(now)
            return {
                "state": self._state,
                "failure_rate": round(self._failure_rate(), 4),
                "window_count": len(self._outcomes),
                "transitions": self._transitions,
                "rejections": self._rejections,
                "probes_in_flight": self._probes_in_flight,
            }

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.state} rate={self._failure_rate():.2f}>"
