"""Online execution-cost profiles: measure every chunk, schedule the next.

The adaptive scheduler (see :mod:`repro.runtime.scheduler`) needs two
numbers to size work units and pick executors well: what one shot costs on
a given engine, and what preparing a circuit (transpilation) costs.  This
module owns those numbers as an **online cost model** — the measure-then-
decide loop of profile-guided optimisation applied to the runtime:

* Every completed chunk task reports its worker-side wall-clock back to the
  parent (the ``(result, elapsed)`` pair chunk tasks already return), and a
  done-callback feeds it into :meth:`CostModel.observe_run`.
* Estimates are exponentially-weighted moving averages keyed by
  ``(engine name, qubit count)`` — coarse enough to aggregate across a
  sweep's circuit variants, fine enough to separate a 2-qubit Bell batch
  from a 23-qubit GHZ batch on the same engine.
* Profiles persist through the same :class:`~repro.runtime.store.CacheStore`
  disk tier the transpile and distribution caches use
  (``$REPRO_CACHE_DIR``/``cache_dir=``, namespace ``profile/``), so a *warm
  process* schedules from measured costs on its very first call instead of
  re-learning them.

Observation is always on and always passive: ``schedule="fixed"`` runs
still feed the model (profiling costs one float per chunk), they just never
consult it.  Nothing in this module ever touches counts — estimates steer
chunk sizing and executor choice only where that is count-transparent (see
the scheduler's determinism contract).
"""

from __future__ import annotations

import atexit
import math
import threading
from typing import Dict, Hashable, Optional, Tuple

from repro.runtime.store import StoreBackedCache, default_cache_dir

#: Cost-model key: (engine/backend name, qubit count).
ProfileKey = Tuple[str, int]

#: EWMA smoothing factor: high enough to track a machine whose load
#: changes, low enough that one descheduled chunk does not whipsaw the
#: chunk planner.
EWMA_ALPHA = 0.3

#: Dirty observations per key before the entry is written through to the
#: store (and its disk tier) without an explicit :meth:`CostModel.flush`.
FLUSH_EVERY = 8


def profile_key(backend, circuit) -> ProfileKey:
    """Return the *run*-cost key for one ``(backend, circuit)`` pairing.

    The backend ``name`` already encodes the engine family and, for device
    backends, the device (``"noisy(ibmqx4)"``); the qubit count is the
    dominant cost driver within a family.  Backends whose per-shot cost
    depends on an execution mode expose a ``cost_tag`` (the trajectory
    engine's ``"batched"`` vs ``"loop"``, an order of magnitude apart) that
    is folded into the name so the modes never share one EWMA — which also
    means a mode switch starts from a cold per-shot estimate rather than a
    stale cross-mode one.  Seeds, shots and noise scale are deliberately
    excluded — they change *how much* work runs, not the per-shot unit
    cost the planner divides by.
    """
    name, qubits = prepare_profile_key(backend, circuit)
    tag = getattr(backend, "cost_tag", None)
    if tag:
        name = f"{name}+{tag}"
    return (name, qubits)


def prepare_profile_key(backend, circuit) -> ProfileKey:
    """Return the *prepare* (transpile) cost key — ``cost_tag``-free.

    Transpilation cost is a property of ``(device, circuit)`` only; the
    engine's execution mode never touches it, so all modes of one backend
    share a single ``per_prepare`` EWMA (and profiles persisted before the
    mode knob existed keep warming it).
    """
    return (str(getattr(backend, "name", type(backend).__name__)),
            int(getattr(circuit, "num_qubits", 0)))


def _fresh_entry() -> Dict[str, object]:
    return {
        "per_shot": None,
        "per_prepare": None,
        "shot_samples": 0,
        "prepare_samples": 0,
    }


def _valid_entry(value) -> bool:
    """Reject foreign/corrupt persisted payloads (treated as a fresh start)."""
    if not isinstance(value, dict):
        return False
    for field in ("per_shot", "per_prepare"):
        number = value.get(field)
        if number is not None and not (
            isinstance(number, float) and math.isfinite(number) and number >= 0
        ):
            return False
    for field in ("shot_samples", "prepare_samples"):
        if not isinstance(value.get(field), int) or value[field] < 0:
            return False
    return True


def _ewma(old: Optional[float], value: float) -> float:
    if old is None:
        return value
    return (1.0 - EWMA_ALPHA) * old + EWMA_ALPHA * value


class CostModel(StoreBackedCache):
    """EWMA per-shot / per-prepare cost estimates, persisted across processes.

    Parameters
    ----------
    maxsize:
        Memory-tier bound on distinct profile keys.
    cache_dir:
        Attach a persistent tier under ``<cache_dir>/profile/``; ``None``
        keeps profiles in-process only.  The process-wide
        :data:`DEFAULT_COST_MODEL` reads ``$REPRO_CACHE_DIR`` instead.

    Thread safety: observations arrive from executor done-callbacks on
    arbitrary threads; one lock covers the live-entry table.  Disk writes
    are batched (every :data:`FLUSH_EVERY` observations per key, plus
    :meth:`flush` and an ``atexit`` flush for the default model) so the
    chunk hot path never waits on file I/O per observation.
    """

    _namespace = "profile"

    def __init__(self, maxsize: int = 256, cache_dir: Optional[str] = None) -> None:
        super().__init__(maxsize, cache_dir)
        self._profile_lock = threading.Lock()
        self._live: Dict[Hashable, Dict[str, object]] = {}
        self._dirty: Dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def _entry(self, key: ProfileKey) -> Dict[str, object]:
        """Return the live entry for ``key``, warm-starting from the store.

        Caller holds the profile lock.  The first touch of a key consults
        the store (memory tier, then disk) — this is the warm-process path:
        a persisted profile is scheduling-ready before any job has run.
        """
        entry = self._live.get(key)
        if entry is None:
            loaded = self._store.lookup(key)
            entry = dict(loaded) if _valid_entry(loaded) else _fresh_entry()
            self._live[key] = entry
        return entry

    def observe_run(self, key: ProfileKey, shots: int, elapsed: float) -> None:
        """Fold one completed chunk's ``(shots, elapsed seconds)`` in."""
        if shots <= 0 or not math.isfinite(elapsed) or elapsed < 0:
            return
        with self._profile_lock:
            entry = self._entry(key)
            entry["per_shot"] = _ewma(entry["per_shot"], elapsed / shots)
            entry["shot_samples"] = int(entry["shot_samples"]) + 1
            self._mark_dirty(key, entry)

    def observe_prepare(self, key: ProfileKey, elapsed: float) -> None:
        """Fold one measured ``prepare()`` (transpile) wall-clock in."""
        if not math.isfinite(elapsed) or elapsed < 0:
            return
        with self._profile_lock:
            entry = self._entry(key)
            entry["per_prepare"] = _ewma(entry["per_prepare"], elapsed)
            entry["prepare_samples"] = int(entry["prepare_samples"]) + 1
            self._mark_dirty(key, entry)

    def _mark_dirty(self, key: ProfileKey, entry: Dict[str, object]) -> None:
        """Caller holds the profile lock; write through every FLUSH_EVERY."""
        pending = self._dirty.get(key, 0) + 1
        if pending >= FLUSH_EVERY:
            self._store.store(key, dict(entry))
            self._dirty[key] = 0
        else:
            self._dirty[key] = pending

    @staticmethod
    def _has_samples(entry: Dict[str, object]) -> bool:
        return bool(entry["shot_samples"] or entry["prepare_samples"])

    def flush(self, all_entries: bool = False) -> int:
        """Write dirty (or, with ``all_entries``, every live) profile through
        to the store; returns how many entries were written.

        Called automatically at interpreter exit for the process default,
        and by :func:`repro.runtime.store.set_default_cache_dir` after a
        disk tier is attached mid-process.  Sample-less entries (created by
        reading an unknown key) are never written: flushing them would
        overwrite a warmer persisted profile with an empty one.
        """
        with self._profile_lock:
            if all_entries:
                victims = [k for k, e in self._live.items() if self._has_samples(e)]
            else:
                victims = [
                    k
                    for k, n in self._dirty.items()
                    if n > 0 and self._has_samples(self._live[k])
                ]
            for key in victims:
                self._store.store(key, dict(self._live[key]))
                self._dirty[key] = 0
            return len(victims)

    def attach_disk(self, cache_dir) -> None:
        """Attach/detach the persistent tier (see the store's method).

        Sample-less live entries — artifacts of reading a key before the
        attach — are dropped first, so the next read consults the newly
        attached tier instead of being shadowed by an empty placeholder.
        """
        with self._profile_lock:
            for key in [
                k for k, e in self._live.items() if not self._has_samples(e)
            ]:
                del self._live[key]
                self._dirty.pop(key, None)
        super().attach_disk(cache_dir)

    def clear(self) -> None:
        """Drop every profile — live entries and both store tiers."""
        with self._profile_lock:
            self._live.clear()
            self._dirty.clear()
        super().clear()

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------

    def per_shot(self, key: ProfileKey) -> Optional[float]:
        """Return the estimated seconds per shot, or ``None`` when unknown."""
        with self._profile_lock:
            entry = self._entry(key)
            return entry["per_shot"] if entry["shot_samples"] else None

    def per_prepare(self, key: ProfileKey) -> Optional[float]:
        """Return the estimated prepare/transpile seconds, or ``None``."""
        with self._profile_lock:
            entry = self._entry(key)
            return entry["per_prepare"] if entry["prepare_samples"] else None

    def estimate_run(self, key: ProfileKey, shots: int) -> Optional[float]:
        """Return the estimated wall-clock of a ``shots``-shot run."""
        per_shot = self.per_shot(key)
        if per_shot is None:
            return None
        return per_shot * max(0, shots)

    def estimate_job(self, backend, circuit, shots: int) -> Optional[float]:
        """Estimate one job's total seconds: prepare (transpile) plus run.

        Components the model has never measured contribute nothing;
        ``None`` means *neither* component is known — the caller has no
        data to plan from and should fall back to its static default.
        """
        total = None
        run = self.estimate_run(profile_key(backend, circuit), shots)
        if run is not None:
            total = run
        if getattr(backend, "transpile", False):
            prepare = self.per_prepare(prepare_profile_key(backend, circuit))
            if prepare is not None:
                total = prepare if total is None else total + prepare
        return total

    def estimate_batch(self, backend, circuits, shots) -> Optional[float]:
        """Estimate a batch's total seconds across ``circuits``.

        ``shots`` is a scalar or a per-circuit sequence.  Used by the
        service layer's width planner to size ``max_workers`` per dispatch
        from measured cost instead of always taking the full shared pool.
        ``None`` when no circuit has any measured component.
        """
        circuits = list(circuits)
        if isinstance(shots, (list, tuple)):
            shot_list = [int(s) for s in shots]
        else:
            shot_list = [int(shots)] * len(circuits)
        total = None
        for circuit, n in zip(circuits, shot_list):
            estimate = self.estimate_job(backend, circuit, n)
            if estimate is not None:
                total = estimate if total is None else total + estimate
        return total

    def profile(self, key: ProfileKey) -> Optional[dict]:
        """Return a copy of the full entry for ``key``, or ``None``."""
        with self._profile_lock:
            entry = self._entry(key)
            if not entry["shot_samples"] and not entry["prepare_samples"]:
                return None
            return dict(entry)

    def keys(self) -> list:
        """Return every profiled key (live entries plus persisted ones)."""
        with self._profile_lock:
            live = list(self._live)
        seen = set(live)
        for key in self._store.keys():
            if key not in seen:
                seen.add(key)
                live.append(key)
        return live

    def summary(self) -> dict:
        """Return ``{key: entry}`` for every live profiled key (for stats)."""
        with self._profile_lock:
            return {
                key: dict(entry)
                for key, entry in self._live.items()
                if entry["shot_samples"] or entry["prepare_samples"]
            }


#: Process-wide default model: every execute() call observes into it, the
#: adaptive scheduler plans from it.  Attaches a disk tier automatically
#: when ``$REPRO_CACHE_DIR`` is set, so profiles survive the interpreter.
DEFAULT_COST_MODEL = CostModel(cache_dir=default_cache_dir())


def cost_model_stats() -> dict:
    """Return the default cost model's store statistics plus its profiles."""
    stats = DEFAULT_COST_MODEL.stats()
    stats["profiles"] = {
        f"{name}/q{qubits}": entry
        for (name, qubits), entry in sorted(DEFAULT_COST_MODEL.summary().items())
    }
    return stats


atexit.register(DEFAULT_COST_MODEL.flush)
