"""Cross-call distribution cache: simulate once, re-sample forever.

PR 1's batching layer already deduplicates *within* one ``execute()`` call:
identical ``(circuit, backend)`` jobs simulate the distribution once and
re-sample counts per job.  Sweeps, however, are usually *loops of calls* —
a noise scan re-runs the same instrumented circuit on the same backend in
every iteration and re-pays the full density-matrix evolution each time.

:class:`DistributionCache` extends the same trick across calls.  For
backends that report the exact classical-outcome distribution
(``returns_probabilities``), the primary job's distribution is stored under
``(circuit.fingerprint(), backend.content_fingerprint())`` the moment the
job *completes* (a done-callback — concurrent ``execute()`` calls share the
entry without waiting for anyone to collect results), and later calls
re-sample counts from the cached distribution with their own seed instead
of re-simulating.  Because every exact engine draws counts as the first use
of a fresh ``default_rng(seed)``, the re-sampled counts are bit-identical
to what a fresh simulation would have produced — the cache is a pure
speedup, never a statistics change (``tests/test_properties.py`` pins the
equivalence property).

Storage lives in the same :class:`~repro.runtime.store.CacheStore` the
transpile cache uses (one bounded-LRU implementation, not two).  Both keys
are stable content hashes, so attaching a disk tier (``cache_dir=`` here,
or ``$REPRO_CACHE_DIR`` for the process-wide default) lets a *second
process* running the same sweep skip every exact-distribution simulation
while producing bit-identical counts.

Keying discipline
-----------------
The backend key is a *content* hash (:meth:`Backend.content_fingerprint`),
not an object identity: two ``NoisyDeviceBackend`` instances built from the
same device calibration, noise scale, transpile flag and layout share
entries, while any content difference — a rescaled calibration, a pinned
layout — separates them.  Backends that cannot describe their content
(user-defined subclasses without a fingerprint) or that sample per shot
(stabilizer, trajectory) are never cached.

Invalidation is explicit: :meth:`DistributionCache.invalidate` drops the
entries for a circuit and/or backend (e.g. after mutating a device model
in place) from every tier, :meth:`DistributionCache.clear` drops
everything.  Lookups are opt-in per ``execute()`` call
(``distribution_cache=True`` or a cache instance), so job-introspection
fields like ``JobSet.num_executed`` stay predictable for callers that
never asked for cross-call reuse.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.results.result import Result
from repro.runtime.store import StoreBackedCache, default_cache_dir

#: Cache key: (circuit fingerprint, backend content fingerprint).
DistributionKey = Tuple[str, str]

#: Per-run metadata keys stripped from cached snapshots (they describe the
#: primary's draw, not the distribution).
_RUN_METADATA = ("seed", "chunks", "chunk_seeds", "resampled")


def backend_fingerprint(backend) -> Optional[str]:
    """Return ``backend.content_fingerprint()`` or ``None`` when absent."""
    method = getattr(backend, "content_fingerprint", None)
    if method is None:
        return None
    return method()


def distribution_key(circuit, backend) -> Optional[DistributionKey]:
    """Return the cache key for ``(circuit, backend)`` or ``None``.

    ``None`` means the pair is not cacheable: the backend samples per shot
    (no exact distribution to store) or cannot content-hash itself.
    """
    if not getattr(backend, "returns_probabilities", False):
        return None
    fingerprint = backend_fingerprint(backend)
    if fingerprint is None:
        return None
    return (circuit.fingerprint(), fingerprint)


def _snapshot(result: Result) -> Result:
    """Freeze a primary result into a distribution-only cache entry."""
    metadata = {
        k: v for k, v in result.metadata.items() if k not in _RUN_METADATA
    }
    return Result(
        shots=0,
        statevector=result.statevector,
        probabilities=dict(result.probabilities),
        metadata=metadata,
    )


class DistributionCache(StoreBackedCache):
    """Exact-outcome-distribution cache over the shared cache store.

    Parameters
    ----------
    maxsize:
        Maximum number of memory-tier entries; ``0`` disables the cache
        entirely (every lookup misses).
    cache_dir:
        Attach a persistent disk tier under ``<cache_dir>/distribution/``;
        ``None`` (default) keeps the cache memory-only.  The process-wide
        :data:`DEFAULT_DISTRIBUTION_CACHE` reads ``$REPRO_CACHE_DIR``
        instead.

    Attributes
    ----------
    hits / misses:
        Lifetime lookup statistics (survive :meth:`clear`).  A disk-tier
        hit counts as a hit — per-tier detail lives in :meth:`stats`.
    """

    _namespace = "distribution"

    def __init__(self, maxsize: int = 256, cache_dir: Optional[str] = None) -> None:
        super().__init__(maxsize, cache_dir)

    def lookup(self, key: DistributionKey) -> Optional[Result]:
        """Return the cached distribution for ``key`` (a hit) or ``None``.

        The returned :class:`Result` is the shared cache entry; callers
        must treat it as immutable (the runtime only re-samples from it,
        which copies on the way out).
        """
        return self._store.lookup(key)

    def store(self, key: DistributionKey, result: Result) -> None:
        """Snapshot ``result``'s distribution under ``key`` (LRU-evicting)."""
        if result.probabilities is None:
            return
        self._store.store(key, _snapshot(result))

    def invalidate(self, circuit=None, backend=None) -> int:
        """Drop entries matching ``circuit`` and/or ``backend``; return count.

        With both given, exactly that pair's entry is dropped; with one,
        every entry for that circuit (any backend) or backend (any
        circuit); with neither, everything (same as :meth:`clear`).  A
        backend without a content fingerprint matches nothing.  Matching
        entries are removed from the disk tier too.
        """
        circuit_fp = None if circuit is None else circuit.fingerprint()
        backend_fp = None if backend is None else backend_fingerprint(backend)
        if backend is not None and backend_fp is None:
            return 0
        victims = [
            key
            for key in self._store.keys()
            if (circuit_fp is None or key[0] == circuit_fp)
            and (backend_fp is None or key[1] == backend_fp)
        ]
        removed = 0
        for key in victims:
            if self._store.remove(key):
                removed += 1
        return removed


#: Process-wide default cache, used by ``execute(distribution_cache=True)``.
#: Attaches a disk tier automatically when ``$REPRO_CACHE_DIR`` is set.
DEFAULT_DISTRIBUTION_CACHE = DistributionCache(cache_dir=default_cache_dir())


def distribution_cache_stats() -> dict:
    """Return the default distribution cache's statistics."""
    return DEFAULT_DISTRIBUTION_CACHE.stats()


def clear_distribution_cache() -> None:
    """Empty the default distribution cache."""
    DEFAULT_DISTRIBUTION_CACHE.clear()
