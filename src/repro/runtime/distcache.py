"""Cross-call distribution cache: simulate once, re-sample forever.

PR 1's batching layer already deduplicates *within* one ``execute()`` call:
identical ``(circuit, backend)`` jobs simulate the distribution once and
re-sample counts per job.  Sweeps, however, are usually *loops of calls* —
a noise scan re-runs the same instrumented circuit on the same backend in
every iteration and re-pays the full density-matrix evolution each time.

:class:`DistributionCache` extends the same trick across calls.  For
backends that report the exact classical-outcome distribution
(``returns_probabilities``), the primary job's distribution is stored under
``(circuit.fingerprint(), backend.content_fingerprint())`` and later calls
re-sample counts from the cached distribution with their own seed instead
of re-simulating.  Because every exact engine draws counts as the first use
of a fresh ``default_rng(seed)``, the re-sampled counts are bit-identical
to what a fresh simulation would have produced — the cache is a pure
speedup, never a statistics change (``tests/test_properties.py`` pins the
equivalence property).

Keying discipline
-----------------
The backend key is a *content* hash (:meth:`Backend.content_fingerprint`),
not an object identity: two ``NoisyDeviceBackend`` instances built from the
same device calibration, noise scale, transpile flag and layout share
entries, while any content difference — a rescaled calibration, a pinned
layout — separates them.  Backends that cannot describe their content
(user-defined subclasses without a fingerprint) or that sample per shot
(stabilizer, trajectory) are never cached.

Invalidation is explicit: :meth:`DistributionCache.invalidate` drops the
entries for a circuit and/or backend (e.g. after mutating a device model
in place), :meth:`DistributionCache.clear` drops everything.  Lookups are
opt-in per ``execute()`` call (``distribution_cache=True`` or a cache
instance), so job-introspection fields like ``JobSet.num_executed`` stay
predictable for callers that never asked for cross-call reuse.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

from repro.results.result import Result

#: Cache key: (circuit fingerprint, backend content fingerprint).
DistributionKey = Tuple[str, str]

#: Per-run metadata keys stripped from cached snapshots (they describe the
#: primary's draw, not the distribution).
_RUN_METADATA = ("seed", "chunks", "chunk_seeds", "resampled")


def backend_fingerprint(backend) -> Optional[str]:
    """Return ``backend.content_fingerprint()`` or ``None`` when absent."""
    method = getattr(backend, "content_fingerprint", None)
    if method is None:
        return None
    return method()


def distribution_key(circuit, backend) -> Optional[DistributionKey]:
    """Return the cache key for ``(circuit, backend)`` or ``None``.

    ``None`` means the pair is not cacheable: the backend samples per shot
    (no exact distribution to store) or cannot content-hash itself.
    """
    if not getattr(backend, "returns_probabilities", False):
        return None
    fingerprint = backend_fingerprint(backend)
    if fingerprint is None:
        return None
    return (circuit.fingerprint(), fingerprint)


def _snapshot(result: Result) -> Result:
    """Freeze a primary result into a distribution-only cache entry."""
    metadata = {
        k: v for k, v in result.metadata.items() if k not in _RUN_METADATA
    }
    return Result(
        shots=0,
        statevector=result.statevector,
        probabilities=dict(result.probabilities),
        metadata=metadata,
    )


class DistributionCache:
    """A bounded, thread-safe LRU cache of exact outcome distributions.

    Parameters
    ----------
    maxsize:
        Maximum number of cached distributions; ``0`` disables storage
        (every lookup misses).

    Attributes
    ----------
    hits / misses:
        Lifetime lookup statistics (survive :meth:`clear`).
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[DistributionKey, Result]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: DistributionKey) -> Optional[Result]:
        """Return the cached distribution for ``key`` (a hit) or ``None``.

        The returned :class:`Result` is the shared cache entry; callers
        must treat it as immutable (the runtime only re-samples from it,
        which copies on the way out).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: DistributionKey, result: Result) -> None:
        """Snapshot ``result``'s distribution under ``key`` (LRU-evicting)."""
        if self.maxsize == 0 or result.probabilities is None:
            return
        entry = _snapshot(result)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def invalidate(self, circuit=None, backend=None) -> int:
        """Drop entries matching ``circuit`` and/or ``backend``; return count.

        With both given, exactly that pair's entry is dropped; with one,
        every entry for that circuit (any backend) or backend (any
        circuit); with neither, everything (same as :meth:`clear`).  A
        backend without a content fingerprint matches nothing.
        """
        circuit_fp = None if circuit is None else circuit.fingerprint()
        backend_fp = None if backend is None else backend_fingerprint(backend)
        if backend is not None and backend_fp is None:
            return 0
        with self._lock:
            victims = [
                key
                for key in self._entries
                if (circuit_fp is None or key[0] == circuit_fp)
                and (backend_fp is None or key[1] == backend_fp)
            ]
            for key in victims:
                del self._entries[key]
        return len(victims)

    def clear(self) -> None:
        """Drop all entries (statistics are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Return ``{"entries", "hits", "misses", "hit_rate"}``."""
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"DistributionCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


#: Process-wide default cache, used by ``execute(distribution_cache=True)``.
DEFAULT_DISTRIBUTION_CACHE = DistributionCache()


def distribution_cache_stats() -> dict:
    """Return the default distribution cache's statistics."""
    return DEFAULT_DISTRIBUTION_CACHE.stats()


def clear_distribution_cache() -> None:
    """Empty the default distribution cache."""
    DEFAULT_DISTRIBUTION_CACHE.clear()
