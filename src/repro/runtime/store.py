"""The shared cache store behind every runtime cache: one LRU, two tiers.

Before this module existed, :class:`~repro.runtime.cache.TranspileCache`
and :class:`~repro.runtime.distcache.DistributionCache` each carried their
own copy of the same ``OrderedDict``-plus-lock bounded-LRU machinery, and
both died with the interpreter — every new process (CLI invocation, CI
shard, process-pool worker) re-paid transpilation and exact-distribution
simulation from scratch.  :class:`CacheStore` folds that duplication into
one implementation and adds an optional persistent tier:

``memory``
    Today's behaviour: a bounded, thread-safe, in-process LRU.
``disk``
    A directory of one-file-per-entry serialized values keyed by the same
    content fingerprints the memory tier uses.  Fingerprints are stable
    content hashes, so a *second process* running the same sweep finds the
    first process's entries and skips the work entirely.

Disk-tier discipline
--------------------
* **Versioned schema** — every entry file starts with :data:`MAGIC`
  (which embeds the schema version) followed by a SHA-256 digest of the
  body; an incompatible future format simply misses.
* **Atomic writes** — entries are written to a temporary file in the same
  directory and ``os.replace``'d into place, so concurrent readers (and
  concurrent *processes*) only ever see complete entries.
* **Corruption tolerance** — a truncated, bit-flipped or otherwise
  unreadable entry is a **miss, never an error**: the digest check rejects
  it and the file is quarantined (unlinked) so it cannot mis-serve again.
  The same degrade-don't-break rule covers the directory itself: an
  unusable ``cache_dir`` (unwritable, not a directory, ...) disables the
  disk tier with a warning instead of raising.
* **Key verification** — the full key is serialized *separately from the
  value* inside the entry and compared on load, so a filename-hash
  collision can never alias entries (and :meth:`DiskTier.keys` can list
  keys without deserializing a single value).
* **Recency** — disk hits refresh the entry's mtime, and stores evict the
  stalest files once the tier exceeds ``disk_maxsize``, giving the disk
  tier the same LRU semantics as the memory tier.

Values are serialized with :mod:`pickle` by default (a ``serializer``
object with ``dumps``/``loads`` can be plugged in).  Cache directories are
trusted local state — never point ``REPRO_CACHE_DIR`` at a directory an
untrusted party can write.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import time
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Hashable, Iterator, List, Optional

#: On-disk entry header; bump the embedded version for incompatible schema
#: changes and every old entry becomes a clean miss.
MAGIC = b"repro-cache-store/v1\n"

#: Filename suffix of disk-tier entries (anything else in the directory is
#: ignored, including in-flight temporary files).
ENTRY_SUFFIX = ".entry"

#: Suffix of in-flight atomic-write temporaries; stale ones (a crashed
#: writer's leftovers) are swept opportunistically.
TEMP_SUFFIX = ENTRY_SUFFIX + ".part"

#: Age in seconds after which an orphaned temporary is assumed dead.
_STALE_TEMP_SECONDS = 3600.0

#: Environment variable that attaches a disk tier to the process-default
#: runtime caches.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Optional[str]:
    """Return ``$REPRO_CACHE_DIR`` (stripped) or ``None`` when unset/empty."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return value or None


def set_default_cache_dir(cache_dir: Optional[str]) -> None:
    """Attach (or, with ``None``, detach) disk tiers on the default caches.

    Reconfigures the process-wide
    :data:`~repro.runtime.cache.DEFAULT_CACHE`,
    :data:`~repro.runtime.distcache.DEFAULT_DISTRIBUTION_CACHE` and
    :data:`~repro.runtime.profile.DEFAULT_COST_MODEL` in place — the hook
    behind the experiments CLI's ``--cache-dir`` flag.  Memory tiers and
    statistics are untouched; cost profiles learned before the attach are
    flushed through to the new disk tier so they persist too.
    """
    from repro.runtime.cache import DEFAULT_CACHE
    from repro.runtime.distcache import DEFAULT_DISTRIBUTION_CACHE
    from repro.runtime.profile import DEFAULT_COST_MODEL

    DEFAULT_CACHE.attach_disk(cache_dir)
    DEFAULT_DISTRIBUTION_CACHE.attach_disk(cache_dir)
    DEFAULT_COST_MODEL.attach_disk(cache_dir)
    if cache_dir:
        DEFAULT_COST_MODEL.flush(all_entries=True)


class TierStats:
    """Mutable per-tier lookup/store/evict counters."""

    __slots__ = ("hits", "misses", "stores", "evictions", "errors")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        #: Entries that could not be serialized/deserialized or written
        #: (skipped, not raised — the corruption-tolerance contract).
        self.errors = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "errors": self.errors,
        }


class MemoryTier:
    """The in-process LRU tier: an ``OrderedDict`` bounded at ``maxsize``.

    Not independently locked — :class:`CacheStore` serializes all access.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        self.maxsize = maxsize
        self.stats = TierStats()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable) -> Optional[Any]:
        value = self._entries.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def store(self, key: Hashable, value: Any) -> None:
        if self.maxsize == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        self.stats.stores += 1
        self.trim()

    def trim(self) -> None:
        """Evict LRU entries until the tier fits ``maxsize``."""
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def remove(self, key: Hashable) -> bool:
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    def keys(self) -> List[Hashable]:
        return list(self._entries)

    def items(self) -> List[tuple]:
        return list(self._entries.items())


class _CorruptEntry(Exception):
    """Internal: an on-disk entry failed the magic/digest/decode checks."""


class _KeyMismatch(Exception):
    """Internal: a valid entry stores a different key (filename-hash alias)."""


class DiskTier:
    """The persistent tier: one serialized file per entry under a directory.

    See the module docstring for the write/read discipline.  The tier
    carries its own lock, so slow file I/O never blocks users of the
    owning store's memory tier.  All methods tolerate concurrent processes
    mutating the same directory — a vanished file is a miss, a racing
    eviction is idempotent.

    Entry layout (after :data:`MAGIC` and the body digest line): a decimal
    key-pickle length, newline, the pickled key, then the pickled value —
    so key listing and verification never deserialize values.
    """

    def __init__(
        self,
        directory,
        maxsize: Optional[int] = 4096,
        serializer=pickle,
    ) -> None:
        if maxsize is not None and maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.maxsize = maxsize
        self.serializer = serializer
        self.stats = TierStats()
        self._lock = threading.Lock()
        self._sweep_stale_temps()
        #: Maintained incrementally so stores don't rescan the directory;
        #: resynchronized by every over-budget eviction pass.
        self._approx_count = sum(1 for _ in self._entry_paths())

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def _entry_paths(self) -> Iterator[Path]:
        try:
            yield from self.directory.glob(f"*{ENTRY_SUFFIX}")
        except OSError:
            return

    def _sweep_stale_temps(self) -> None:
        """Unlink atomic-write temporaries orphaned by a crashed writer."""
        cutoff = time.time() - _STALE_TEMP_SECONDS
        try:
            candidates = list(self.directory.glob(f".tmp-*{TEMP_SUFFIX}"))
        except OSError:
            return
        for path in candidates:
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
            except OSError:
                pass

    def _path(self, key: Hashable) -> Path:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()
        return self.directory / f"{digest[:48]}{ENTRY_SUFFIX}"

    # -- entry encoding -------------------------------------------------

    def _encode(self, key: Hashable, value: Any) -> bytes:
        key_blob = self.serializer.dumps(key)
        value_blob = self.serializer.dumps(value)
        body = str(len(key_blob)).encode() + b"\n" + key_blob + value_blob
        digest = hashlib.sha256(body).hexdigest().encode()
        return MAGIC + digest + b"\n" + body

    def _split(self, blob: bytes) -> tuple:
        """Return ``(key_blob, value_blob)`` or raise :class:`_CorruptEntry`."""
        if not blob.startswith(MAGIC):
            raise _CorruptEntry("bad magic")
        digest, sep, body = blob[len(MAGIC):].partition(b"\n")
        if not sep or hashlib.sha256(body).hexdigest().encode() != digest:
            raise _CorruptEntry("digest mismatch")
        key_len_raw, sep, tail = body.partition(b"\n")
        try:
            key_len = int(key_len_raw)
        except ValueError:
            raise _CorruptEntry("bad key length") from None
        if key_len < 0 or key_len > len(tail):
            raise _CorruptEntry("bad key length")
        return tail[:key_len], tail[key_len:]

    def _decode_key(self, blob: bytes) -> Hashable:
        key_blob, _value_blob = self._split(blob)
        try:
            return self.serializer.loads(key_blob)
        except Exception as exc:
            raise _CorruptEntry(str(exc)) from None

    def _decode(self, blob: bytes, key: Hashable) -> Any:
        key_blob, value_blob = self._split(blob)
        try:
            stored_key = self.serializer.loads(key_blob)
        except Exception as exc:
            raise _CorruptEntry(str(exc)) from None
        if stored_key != key:
            raise _KeyMismatch(f"{stored_key!r} != {key!r}")
        try:
            return self.serializer.loads(value_blob)
        except Exception as exc:
            raise _CorruptEntry(str(exc)) from None

    # -- operations -----------------------------------------------------

    def lookup(self, key: Hashable) -> Optional[Any]:
        path = self._path(key)
        with self._lock:
            try:
                blob = path.read_bytes()
            except OSError:
                self.stats.misses += 1
                return None
            try:
                value = self._decode(blob, key)
            except _KeyMismatch:
                self.stats.misses += 1
                return None
            except _CorruptEntry:
                # Quarantine: a corrupt entry must never be consulted again.
                self.stats.misses += 1
                self.stats.errors += 1
                try:
                    path.unlink()
                    self._approx_count = max(0, self._approx_count - 1)
                except OSError:
                    pass
                return None
            self.stats.hits += 1
            try:
                os.utime(path)  # refresh recency for LRU eviction
            except OSError:
                pass
            return value

    def store(self, key: Hashable, value: Any) -> None:
        try:
            blob = self._encode(key, value)  # CPU-bound: outside the lock
        except Exception:
            with self._lock:
                self.stats.errors += 1  # unpicklable value: skip the tier
            return
        path = self._path(key)
        with self._lock:
            try:
                fd, tmp_name = tempfile.mkstemp(
                    dir=self.directory, prefix=".tmp-", suffix=TEMP_SUFFIX
                )
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(blob)
                    replaced = path.exists()
                    os.replace(tmp_name, path)
                except BaseException:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass
                    raise
            except OSError:
                self.stats.errors += 1  # full/read-only disk: cache, not storage
                return
            self.stats.stores += 1
            if not replaced:
                self._approx_count += 1
            if self.maxsize is not None and self._approx_count > self.maxsize:
                self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        """Unlink the stalest entries beyond ``maxsize`` (caller holds lock).

        This is the one full-directory scan, amortized: it only runs when
        the incrementally-tracked count crosses the budget, and it
        resynchronizes that count (other processes may share the
        directory).  Stale temporaries are swept on the way.
        """
        self._sweep_stale_temps()
        entries = []
        for path in self._entry_paths():
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue  # raced with another process's eviction
        entries.sort()
        excess = 0 if self.maxsize is None else len(entries) - self.maxsize
        for _mtime, path in entries[: max(0, excess)]:
            try:
                path.unlink()
                self.stats.evictions += 1
            except OSError:
                pass
        self._approx_count = len(entries) - max(0, excess)

    def remove(self, key: Hashable) -> bool:
        with self._lock:
            try:
                self._path(key).unlink()
            except OSError:
                return False
            self._approx_count = max(0, self._approx_count - 1)
            return True

    def clear(self) -> None:
        with self._lock:
            for path in self._entry_paths():
                try:
                    path.unlink()
                except OSError:
                    pass
            self._approx_count = 0

    def keys(self) -> List[Hashable]:
        """Return the stored keys (corrupt entries are skipped silently).

        Only the key region of each entry is deserialized — values, which
        can embed large distributions or statevectors, are never touched.
        """
        found = []
        for path in self._entry_paths():
            try:
                blob = path.read_bytes()
            except OSError:
                continue
            try:
                found.append(self._decode_key(blob))
            except _CorruptEntry:
                continue
        return found

    def items(self) -> List[tuple]:
        """Return ``(key, value)`` pairs for every readable entry.

        One read per file — bulk loaders (the service journal's recovery
        scan) would otherwise pay :meth:`keys` plus a :meth:`lookup` per
        key, reading every entry twice.  Corrupt entries are skipped
        silently, exactly like :meth:`keys`.
        """
        found = []
        for path in self._entry_paths():
            try:
                blob = path.read_bytes()
            except OSError:
                continue
            try:
                key_blob, value_blob = self._split(blob)
                found.append(
                    (self.serializer.loads(key_blob),
                     self.serializer.loads(value_blob))
                )
            except Exception:
                continue
        return found


def _build_disk_tier(directory, maxsize, serializer) -> Optional[DiskTier]:
    """Construct a :class:`DiskTier`, degrading to ``None`` on OS errors.

    A bad cache directory (unwritable, not a directory, ...) must disable
    persistence with a warning — never break imports or callers, since the
    process-default caches are built at module import from
    ``$REPRO_CACHE_DIR``.
    """
    try:
        return DiskTier(directory, maxsize=maxsize, serializer=serializer)
    except OSError as exc:
        warnings.warn(
            f"disk cache tier disabled: cannot use {str(directory)!r} ({exc})",
            RuntimeWarning,
            stacklevel=3,
        )
        return None


class CacheStore:
    """A thread-safe bounded-LRU cache with memory and optional disk tiers.

    Lookups consult the memory tier first, then the disk tier; a disk hit
    is promoted into memory so later lookups stay in-process.  Stores write
    through to both tiers.  ``maxsize == 0`` disables the store entirely
    (every lookup misses, stores are dropped) — how benchmarks and the
    ``--no-transpile-cache`` CLI flag measure the uncached path.

    Locking: the store's lock covers only the memory tier and the overall
    counters; disk I/O happens under the :class:`DiskTier`'s own lock, so
    a slow disk read never blocks memory-tier users.

    Parameters
    ----------
    maxsize:
        Memory-tier entry bound (assignable later via :attr:`maxsize`).
    cache_dir:
        Parent directory for the disk tier, or ``None`` for memory-only.
        The tier lives in ``<cache_dir>/<namespace>/`` so several stores
        can share one directory.  An unusable directory disables the tier
        with a :class:`RuntimeWarning` instead of raising.
    namespace:
        Disk subdirectory name; also keeps unrelated stores' entries apart.
    disk_maxsize:
        Disk-tier entry bound (``None`` = unbounded).
    serializer:
        ``dumps``/``loads`` provider for disk entries (default *pickle*).

    Attributes
    ----------
    hits / misses:
        Overall lookup outcomes (a disk hit counts as a hit); per-tier
        counters live in :meth:`stats`.  Lifetime — they survive
        :meth:`clear`.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        cache_dir: Optional[str] = None,
        namespace: str = "store",
        disk_maxsize: Optional[int] = 4096,
        serializer=pickle,
    ) -> None:
        self.namespace = namespace
        self.hits = 0
        self.misses = 0
        self._disk_maxsize = disk_maxsize
        self._serializer = serializer
        self._lock = threading.Lock()
        self.memory = MemoryTier(maxsize)
        self.disk: Optional[DiskTier] = None
        if cache_dir:
            self.disk = _build_disk_tier(
                Path(cache_dir) / namespace, disk_maxsize, serializer
            )

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    @property
    def maxsize(self) -> int:
        """Memory-tier bound; assigning trims immediately (0 disables)."""
        return self.memory.maxsize

    @maxsize.setter
    def maxsize(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"maxsize must be non-negative, got {value}")
        with self._lock:
            self.memory.maxsize = value
            self.memory.trim()

    def attach_disk(self, cache_dir: Optional[str]) -> None:
        """Attach a disk tier under ``<cache_dir>/<namespace>/`` (or detach
        with ``None``).  Memory entries and statistics are untouched."""
        tier = None
        if cache_dir:
            tier = _build_disk_tier(
                Path(cache_dir) / self.namespace,
                self._disk_maxsize,
                self._serializer,
            )
        with self._lock:
            self.disk = tier

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Return the memory-tier entry count (the hot working set)."""
        return len(self.memory)

    def lookup(self, key: Hashable) -> Optional[Any]:
        """Return the cached value for ``key`` or ``None`` (both tiers)."""
        with self._lock:
            if self.memory.maxsize == 0:
                self.misses += 1
                return None
            value = self.memory.lookup(key)
            if value is not None:
                self.hits += 1
                return value
            disk = self.disk
            if disk is None:
                self.misses += 1
                return None
        value = disk.lookup(key)  # I/O outside the store lock
        with self._lock:
            if value is None:
                self.misses += 1
            else:
                self.memory.store(key, value)  # promote the disk hit
                self.hits += 1
        return value

    def store(self, key: Hashable, value: Any) -> None:
        """Write ``key -> value`` through to every enabled tier."""
        with self._lock:
            if self.memory.maxsize == 0:
                return
            self.memory.store(key, value)
            disk = self.disk
        if disk is not None:
            disk.store(key, value)

    def remove(self, key: Hashable) -> bool:
        """Drop ``key`` from both tiers; ``True`` if either held it."""
        with self._lock:
            in_memory = self.memory.remove(key)
            disk = self.disk
        on_disk = disk.remove(key) if disk is not None else False
        return in_memory or on_disk

    def clear(self) -> None:
        """Drop all entries from both tiers (statistics are preserved)."""
        with self._lock:
            self.memory.clear()
            disk = self.disk
        if disk is not None:
            disk.clear()

    def keys(self) -> List[Hashable]:
        """Return the distinct keys across both tiers (for invalidation)."""
        with self._lock:
            found = self.memory.keys()
            disk = self.disk
        if disk is not None:
            seen = set(found)
            for key in disk.keys():
                if key not in seen:
                    seen.add(key)
                    found.append(key)
        return found

    def items(self) -> List[tuple]:
        """Return distinct ``(key, value)`` pairs across both tiers.

        Memory-tier entries win (they are at least as fresh as their disk
        copies); disk-only entries are read once each rather than once for
        the key listing and once per lookup.  Corrupt disk entries are
        skipped, never raised — the bulk-load counterpart of the
        corruption-is-a-miss lookup contract.
        """
        with self._lock:
            found = self.memory.items()
            disk = self.disk
        if disk is not None:
            seen = {key for key, _value in found}
            for key, value in disk.items():
                if key not in seen:
                    seen.add(key)
                    found.append((key, value))
        return found

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Return overall and per-tier statistics.

        The top-level ``entries``/``hits``/``misses``/``hit_rate`` keys keep
        the pre-unification cache-stats shape; ``memory`` and ``disk`` add
        per-tier detail (``disk`` is ``None`` for memory-only stores).
        """
        total = self.hits + self.misses
        memory = self.memory.stats.as_dict()
        memory["entries"] = len(self.memory)
        disk = None
        if self.disk is not None:
            disk = self.disk.stats.as_dict()
            disk["entries"] = len(self.disk)
            disk["directory"] = str(self.disk.directory)
        return {
            "entries": len(self.memory),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
            "memory": memory,
            "disk": disk,
        }

    def __repr__(self) -> str:
        tiers = "memory+disk" if self.disk is not None else "memory"
        return (
            f"CacheStore({self.namespace!r}, {tiers}, entries={len(self.memory)}, "
            f"hits={self.hits}, misses={self.misses})"
        )

    # ------------------------------------------------------------------
    # Pickling (process-pool workers)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Ship configuration, not contents.

        The lock cannot cross a process boundary and shipping every memory
        entry with every task would dwarf the task itself, so a worker
        unpickles a fresh store with the same bounds and — crucially — the
        same disk-tier directory: fork- *and* spawn-started workers read
        the parent's persisted entries instead of recomputing.  Statistics
        restart at zero on the worker side.  A custom ``serializer`` is not
        shipped; workers fall back to pickle.
        """
        return {
            "namespace": self.namespace,
            "maxsize": self.memory.maxsize,
            "disk_dir": None if self.disk is None else str(self.disk.directory),
            "disk_maxsize": self._disk_maxsize,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            maxsize=state["maxsize"],
            cache_dir=None,
            namespace=state["namespace"],
            disk_maxsize=state["disk_maxsize"],
        )
        if state["disk_dir"]:
            self.disk = _build_disk_tier(
                state["disk_dir"], state["disk_maxsize"], self._serializer
            )


class StoreBackedCache:
    """Shared surface of the caches built on :class:`CacheStore`.

    Holds the store delegation — bounds, statistics, tier management —
    once, so :class:`~repro.runtime.cache.TranspileCache` and
    :class:`~repro.runtime.distcache.DistributionCache` cannot drift apart
    again.  Subclasses set :attr:`_namespace` and add their typed
    ``lookup``/``store`` surfaces.
    """

    _namespace = "store"

    def __init__(self, maxsize: int, cache_dir: Optional[str] = None) -> None:
        self._store = CacheStore(
            maxsize=maxsize, cache_dir=cache_dir, namespace=self._namespace
        )

    @property
    def maxsize(self) -> int:
        return self._store.maxsize

    @maxsize.setter
    def maxsize(self, value: int) -> None:
        self._store.maxsize = value

    @property
    def hits(self) -> int:
        return self._store.hits

    @property
    def misses(self) -> int:
        return self._store.misses

    def __len__(self) -> int:
        return len(self._store)

    def attach_disk(self, cache_dir: Optional[str]) -> None:
        """Attach/detach the persistent tier (see :meth:`CacheStore.attach_disk`)."""
        self._store.attach_disk(cache_dir)

    def clear(self) -> None:
        """Drop all entries — both tiers (statistics are preserved)."""
        self._store.clear()

    def stats(self) -> dict:
        """Return overall + per-tier statistics (see :meth:`CacheStore.stats`)."""
        return self._store.stats()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(entries={len(self._store)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
