"""Subprocess sweep harness: run a paper-shaped sweep in a fresh process.

Cross-process cache behaviour can only be tested honestly with real
interpreter processes, and both ``tests/runtime/test_persistence.py`` and
``benchmarks/bench_runtime.py`` need the same machinery: build a batch of
instrumented sweep variants, run it through ``execute()`` with the
distribution cache on, and report counts plus cache statistics as JSON.
This module is the single owner of that driver so the test suite and the
benchmarks cannot drift onto different contracts.

The driver process resolves its cache configuration exactly like any user
process would — from ``$REPRO_CACHE_DIR`` — so what the harness measures is
the real zero-configuration persistence path, not a test-only hook.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence, Tuple

#: The sweep variants a driver can build, by name.  Instrumented with the
#: paper's assertion types so the workload matches the reproduction's
#: actual sweep shape (distinct circuits, each repeated many times).
VARIANT_NAMES = ("bell-classical", "bell-entangled", "ghz-pairwise", "ghz-single")

#: Source of the driver process.  It prints a single JSON object:
#: ``counts`` (one sorted dict per job), ``executed``/``cached`` (job
#: tallies), and ``transpile``/``distribution`` (cache store statistics).
#: The explicit ``prepare()`` loop forces transpile-cache traffic even when
#: every job is served from the distribution cache, so "zero transpile
#: misses" is a meaningful assertion in a warm process.
_DRIVER_SOURCE = """
import json, sys
from repro.circuits import library
from repro.core.injector import AssertionInjector
from repro.runtime import (
    DEFAULT_COST_MODEL, distribution_cache_stats, execute, get_backend,
    plan_chunk_shots, profile_key, transpile_cache_stats,
)

def _instrument(program, assertion, *args, **kwargs):
    injector = AssertionInjector(program)
    getattr(injector, assertion)(*args, **kwargs)
    injector.measure_program()
    return injector.circuit

BUILDERS = {
    "bell-classical": lambda: _instrument(library.bell_pair(), "assert_classical", 0, 0),
    "bell-entangled": lambda: _instrument(library.bell_pair(), "assert_entangled", [0, 1]),
    "ghz-pairwise": lambda: _instrument(
        library.ghz_state(3), "assert_entangled", [0, 1, 2], mode="pairwise"),
    "ghz-single": lambda: _instrument(
        library.ghz_state(3), "assert_entangled", [0, 1, 2], mode="single"),
}

spec = json.loads(sys.argv[1])
variants = [BUILDERS[name]() for name in spec["variants"]]
circuits = variants * spec["repeats"]
backend = get_backend(spec.get("backend", "noisy:ibmqx4"))
# The cost model's warm-process claim, probed before any job runs: a
# persisted profile makes per-shot cost known (and the adaptive chunk
# planner data-driven) from the very first call of a fresh interpreter.
key = profile_key(backend, variants[0])
warm_estimate = DEFAULT_COST_MODEL.per_shot(key)
warm_plan = plan_chunk_shots(backend, variants[0], spec["shots"], width=4)
for circuit in variants:
    backend.prepare(circuit)
jobs = execute(
    circuits, backend, shots=spec["shots"], seed=list(range(len(circuits))),
    distribution_cache=True,
)
counts = [dict(sorted(c.items())) for c in jobs.counts()]
DEFAULT_COST_MODEL.flush()
print(json.dumps({
    "counts": counts,
    "executed": jobs.num_executed,
    "cached": jobs.num_cached,
    "transpile": transpile_cache_stats(),
    "distribution": distribution_cache_stats(),
    "profile": {
        "warm_estimate": warm_estimate,
        "warm_plan": warm_plan,
        "per_shot_after": DEFAULT_COST_MODEL.per_shot(key),
        "samples_after": (DEFAULT_COST_MODEL.profile(key) or {}).get(
            "shot_samples", 0),
    },
}))
"""


def run_driver_process(
    source: str,
    spec: Optional[dict] = None,
    cache_dir: Optional[os.PathLike] = None,
    timeout: float = 600.0,
) -> Tuple[dict, float]:
    """Run an arbitrary driver source in a fresh interpreter.

    The shared machinery under :func:`run_sweep_process`, exposed so other
    cross-process suites (service restart-recovery, journal corruption)
    reuse one contract instead of growing their own subprocess plumbing:
    the child gets ``src`` on ``PYTHONPATH``, ``$REPRO_CACHE_DIR`` set to
    ``cache_dir`` (or removed when ``None``), ``spec`` as a JSON argv, and
    must print a single JSON object on stdout.

    The child's stdout/stderr are captured through temporary *files*, not
    pipes, so the parent only ever waits on process exit.  With pipes, any
    other process that inherited the write end — say a fork-mode pool
    worker forked while the pipe existed — keeps ``communicate()`` blocked
    on EOF long after the child exited; crash-style drivers (``os._exit``
    mid-flight, exactly what the restart-recovery suite does) make that a
    deadlock, while a file is simply read back once the child is gone.

    Returns ``(report, elapsed_seconds)``; raises ``RuntimeError`` with
    the child's stderr on a non-zero exit.
    """
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if cache_dir is None:
        env.pop("REPRO_CACHE_DIR", None)
    else:
        env["REPRO_CACHE_DIR"] = str(cache_dir)
    start = time.perf_counter()
    with tempfile.TemporaryFile() as stdout, tempfile.TemporaryFile() as stderr:
        proc = subprocess.Popen(
            [sys.executable, "-c", source, json.dumps(spec or {})],
            env=env, stdin=subprocess.DEVNULL, stdout=stdout, stderr=stderr,
        )
        try:
            returncode = proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            raise
        elapsed = time.perf_counter() - start
        stdout.seek(0)
        out = stdout.read().decode()
        stderr.seek(0)
        err = stderr.read().decode()
    if returncode != 0:
        raise RuntimeError(f"driver process failed:\n{err}")
    return json.loads(out), elapsed


def run_sweep_process(
    cache_dir: Optional[os.PathLike] = None,
    variants: Sequence[str] = ("bell-entangled", "ghz-pairwise"),
    shots: int = 1024,
    repeats: int = 3,
    timeout: float = 600.0,
    backend: str = "noisy:ibmqx4",
) -> Tuple[dict, float]:
    """Run the sweep driver in a fresh interpreter.

    Parameters
    ----------
    cache_dir:
        Value for the child's ``$REPRO_CACHE_DIR``; ``None`` removes the
        variable so the child runs memory-only (the cache-disabled
        baseline).
    variants / shots / repeats:
        Workload shape: which :data:`VARIANT_NAMES` to build and how the
        batch fans out (``len(variants) * repeats`` jobs).
    backend:
        Provider spec the driver executes on (default the paper's noisy
        device model; ``"trajectory:ibmqx4"`` exercises the per-shot
        path, which is what the cost-profile persistence smoke measures).

    Returns
    -------
    (report, elapsed):
        The driver's parsed JSON report and its wall-clock seconds
        (including interpreter startup — both cold and warm runs pay it,
        so cold-vs-warm comparisons stay honest).
    """
    unknown = [name for name in variants if name not in VARIANT_NAMES]
    if unknown:
        raise ValueError(f"unknown sweep variants {unknown}; pick from {VARIANT_NAMES}")
    spec = {
        "variants": list(variants),
        "shots": int(shots),
        "repeats": int(repeats),
        "backend": str(backend),
    }
    return run_driver_process(
        _DRIVER_SOURCE, spec, cache_dir=cache_dir, timeout=timeout
    )
