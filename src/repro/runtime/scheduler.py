"""Cost-model-driven adaptive scheduling: chunk sizing, executor choice,
and a fair-share multi-client submission queue.

PR 2 gave the runtime shared pools and PR 3 persistent caches, but every
``execute()`` call still picked ``chunk_shots``, executor kind and worker
width by hand.  This module closes that loop with the measure-then-decide
discipline of profile-guided optimisation:

* :func:`plan_chunk_shots` sizes shot chunks for the per-shot Monte-Carlo
  engines from the :class:`~repro.runtime.profile.CostModel`'s measured
  per-shot cost — enough chunks to saturate the pool, never so many that
  scheduling overhead dominates.  Exact-distribution engines are never
  chunked (their simulation cost is shots-independent).
* :func:`executor_kind_for` maps a backend to its natural executor:
  ``"process"`` for the GIL-bound per-shot engines (stabilizer,
  trajectory), ``"thread"`` for the NumPy engines whose kernels release
  the GIL.  ``$REPRO_EXECUTOR`` and an explicit ``executor=`` always win.
* :class:`Scheduler` is a submission front door for *many clients*:
  weighted round-robin dispatch across per-client queues, priority order
  within a client, and bounded in-flight admission control layered on the
  existing ``execute()``/:class:`~repro.runtime.job.JobSet` machinery.

Determinism contract
--------------------
Adaptive decisions never change counts for a seeded call.  Counts are a
pure function of ``(circuit, backend, shots, seed, chunk_shots)``; the
adaptive scheduler therefore only varies the pieces outside that tuple —
executor kind, pool width, dispatch order — and applies cost-driven chunk
sizing exactly where it is count-transparent or explicitly requested:

* ``seed=None`` jobs (no reproducibility contract — every run draws fresh
  entropy) are chunked freely;
* ``chunk_shots="auto"`` is an explicit opt-in for seeded jobs: the
  resolved size is deterministic given the model state, recorded in the
  job's plan, and the counts equal ``schedule="fixed"`` with that same
  explicit ``chunk_shots`` (``tests/runtime/test_schedule_determinism.py``
  pins both halves of the contract);
* everything else runs the fixed plan's chunk schedule verbatim, so
  ``schedule="adaptive"`` is bit-identical to ``schedule="fixed"`` for a
  fixed seed on every backend family and executor kind.
"""

from __future__ import annotations

import math
import os
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.exceptions import CircuitOpen, JobError, QueueTimeout
from repro.obs.trace import Span, tracing_enabled
from repro.runtime.breaker import CircuitBreaker
from repro.runtime.profile import DEFAULT_COST_MODEL, CostModel, profile_key
from repro.runtime.pool import default_max_workers

#: The selectable scheduling modes.
SCHEDULE_MODES = ("adaptive", "fixed")

#: Environment variable naming the default scheduling mode.
SCHEDULE_ENV_VAR = "REPRO_SCHEDULE"

#: Adaptive chunks aim for roughly this much work per pool task: large
#: enough that per-task submit/pickle overhead stays in the noise, small
#: enough that a long job streams progress through the pool.
TARGET_CHUNK_SECONDS = 0.2

#: Estimated job cost below which splitting is pure overhead.
SPLIT_THRESHOLD_SECONDS = 0.05

#: Never emit chunks smaller than this many shots.
MIN_CHUNK_SHOTS = 16

#: At most this many chunks per pool worker (bounded oversubscription
#: keeps the tail short without flooding the queue).
OVERSUBSCRIBE = 4

#: Chunk-size multiplier for batch-axis (``vectorized_shots``) engines:
#: their per-shot cost *falls* with chunk size (kernel dispatch and
#: substream setup amortise over the tile), so bigger chunks pay off and
#: fine slicing is pure overhead.
VECTORIZED_CHUNK_FACTOR = 8


def default_schedule_mode() -> str:
    """Return the default mode: ``$REPRO_SCHEDULE`` or ``"adaptive"``."""
    mode = os.environ.get(SCHEDULE_ENV_VAR, "").strip().lower()
    if not mode:
        return "adaptive"
    if mode not in SCHEDULE_MODES:
        raise JobError(
            f"{SCHEDULE_ENV_VAR}={mode!r} is not a valid schedule mode; "
            f"choose from {list(SCHEDULE_MODES)}"
        )
    return mode


def resolve_schedule_mode(schedule: Optional[str]) -> str:
    """Map an ``execute(schedule=...)`` argument to a concrete mode."""
    if schedule is None:
        return default_schedule_mode()
    if schedule not in SCHEDULE_MODES:
        raise JobError(
            f"unknown schedule mode {schedule!r}; choose from {list(SCHEDULE_MODES)}"
        )
    return schedule


def is_per_shot_backend(backend) -> bool:
    """Return ``True`` for engines that sample shot by shot.

    Backends that report exact distributions (``returns_probabilities``)
    simulate once and draw counts in a single multinomial — shots cost
    next to nothing, so neither chunking nor process fan-out helps them.
    Everything else (stabilizer, trajectory, arbitrary user engines) pays
    per shot and is worth sharding.
    """
    return not getattr(backend, "returns_probabilities", False)


def executor_kind_for(backend) -> str:
    """Return the backend's natural executor kind (no overrides applied).

    The per-shot engines are pure Python, so only worker *processes* can
    overlap their shots; the NumPy engines release the GIL inside their
    kernels and run cheaper on threads (no pickling, shared caches).
    Per-shot engines that simulate along a batch axis
    (``vectorized_shots``, e.g. the batched trajectory engine) count as
    NumPy engines for this purpose.
    """
    if not is_per_shot_backend(backend):
        return "thread"
    return "thread" if getattr(backend, "vectorized_shots", False) else "process"


def plan_chunk_shots(
    backend,
    circuit,
    shots: int,
    width: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
) -> Optional[int]:
    """Pick an adaptive ``chunk_shots`` for one job, or ``None`` (unchunked).

    Deterministic given the model state: the same ``(backend, circuit,
    shots, width)`` against the same profile always plans the same split.

    * Exact-distribution backends and single-worker pools never chunk.
    * With no measured cost yet (cold model), the bootstrap plan splits
      into one chunk per worker — saturating the pool is the best guess
      available — subject to the :data:`MIN_CHUNK_SHOTS` floor.
    * With a measured per-shot cost, jobs cheaper than
      :data:`SPLIT_THRESHOLD_SECONDS` stay whole, and everything else is
      cut into roughly :data:`TARGET_CHUNK_SECONDS` pieces, at least one
      per worker when the job is big enough and at most
      :data:`OVERSUBSCRIBE` per worker.
    * Batch-axis engines (``vectorized_shots``) aim for chunks
      :data:`VECTORIZED_CHUNK_FACTOR` times fatter: their kernel dispatch
      amortises over the tile, so many small chunks would re-pay the
      per-chunk setup the batching just removed.
    """
    if shots <= MIN_CHUNK_SHOTS or not is_per_shot_backend(backend):
        return None
    width = width if width is not None else default_max_workers()
    if width <= 1:
        return None
    model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    per_shot = model.per_shot(profile_key(backend, circuit))
    if per_shot is None:
        chunk = max(MIN_CHUNK_SHOTS, math.ceil(shots / width))
        return chunk if chunk < shots else None
    target = TARGET_CHUNK_SECONDS
    if getattr(backend, "vectorized_shots", False):
        target *= VECTORIZED_CHUNK_FACTOR
    total = per_shot * shots
    if total < SPLIT_THRESHOLD_SECONDS:
        return None
    chunks = min(width * OVERSUBSCRIBE, max(1, math.ceil(total / target)))
    if total >= width * SPLIT_THRESHOLD_SECONDS:
        chunks = max(chunks, width)  # enough pieces to saturate the pool
    chunks = min(chunks, shots // MIN_CHUNK_SHOTS)
    if chunks <= 1:
        return None
    chunk = math.ceil(shots / chunks)
    return chunk if chunk < shots else None


def plan_width(
    backend,
    circuits,
    shots,
    max_width: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
) -> Optional[int]:
    """Size one dispatch's ``max_workers`` from estimated total cost.

    The shared pools default to the full machine width, so every dispatch
    historically competed for (and fragmented) the same maximal pool even
    when the batch was milliseconds of work.  With a measured cost
    profile, grant roughly one worker per :data:`TARGET_CHUNK_SECONDS` of
    estimated total cost (prepare + run across the batch), clamped to
    ``[1, max_width]`` — tiny batches take one worker and leave the rest
    of the machine to concurrent clients, huge batches still get the full
    pool.  Returns ``None`` (no opinion — take the default width) when
    the model has no measured data for any circuit in the batch.

    Width never changes counts (the runtime's determinism contract), so
    the planner is always count-transparent.
    """
    cap = max_width if max_width is not None else default_max_workers()
    if cap <= 1:
        return None
    model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    if isinstance(backend, str):
        try:
            from repro.runtime.provider import resolve_backend

            backend = resolve_backend(backend)
        except Exception:
            return None  # unknown spec: dispatch will surface the error
    total = model.estimate_batch(backend, circuits, shots)
    if total is None:
        return None
    return max(1, min(cap, math.ceil(total / TARGET_CHUNK_SECONDS)))


# ----------------------------------------------------------------------
# Fair-share multi-client submission queue
# ----------------------------------------------------------------------


_BATCH_QUEUED = "queued"
_BATCH_RUNNING = "running"
_BATCH_DONE = "done"
_BATCH_FAILED = "failed"
_BATCH_DROPPED = "dropped"
_BATCH_CANCELLED = "cancelled"

#: Deadline actions for batches that overstay their queue deadline.
DEADLINE_ACTIONS = ("drop", "reprioritize")

#: Rank that sorts a boosted (reprioritized/preempted) batch ahead of any
#: regular priority while keeping submission order among boosted peers.
_URGENT_RANK = -math.inf


class ScheduledBatch:
    """One client's submission, in the scheduler's hands.

    Returned immediately by :meth:`Scheduler.submit`; the underlying
    :class:`~repro.runtime.job.JobSet` exists only once the fair-share
    dispatcher admits the batch.  Collection blocks until then.
    """

    def __init__(
        self,
        client: str,
        priority: int,
        size: int,
        scheduler: Optional["Scheduler"] = None,
        deadline: Optional[float] = None,
        deadline_action: str = "drop",
        trace_span: Optional[Span] = None,
    ) -> None:
        self.client = client
        self.priority = int(priority)
        self.size = size
        #: Queue deadline in seconds from submission; ``None`` waits forever.
        self.deadline = deadline
        self.deadline_action = deadline_action
        #: Pool width the scheduler's width planner chose for this
        #: dispatch, or ``None`` (default width / planning off).
        self.planned_width: Optional[int] = None
        #: Root trace span the queue/dispatch/per-circuit spans hang off.
        #: A front-end (the service) passes its own; standalone batches
        #: get a fresh root when process-wide tracing is on.
        if trace_span is None and tracing_enabled():
            trace_span = Span(
                "batch", {"client": client, "size": size, "priority": int(priority)}
            )
        self.trace_span = trace_span
        self._trace_queue_span = (
            trace_span.child("queue") if trace_span is not None else None
        )
        self.submitted_at = time.monotonic()
        self.dispatched_at: Optional[float] = None
        self._scheduler = scheduler
        #: Breaker key this batch's outcome reports to (``None`` = ungated).
        self._breaker_key: Optional[str] = None
        self._dispatched = threading.Event()
        self._jobset = None
        self._error: Optional[BaseException] = None
        self._cancelled = False
        self._boosted = False
        self._callback_lock = threading.Lock()
        self._callbacks: List[Callable] = []
        self._settled = False

    # -- scheduler-internal ---------------------------------------------

    def _mark_dispatched(self, jobset) -> None:
        self.dispatched_at = time.monotonic()
        self._finish_queue_span()
        self._jobset = jobset
        self._dispatched.set()
        self._fire_callbacks()

    def _mark_failed(self, error: BaseException) -> None:
        self._error = error
        self._finish_queue_span(outcome=type(error).__name__)
        self._dispatched.set()
        self._fire_callbacks()

    def _mark_cancelled(self) -> None:
        self._cancelled = True
        self._finish_queue_span(outcome="cancelled")
        self._dispatched.set()
        self._fire_callbacks()

    def _finish_queue_span(self, outcome: Optional[str] = None) -> None:
        span = self._trace_queue_span
        if span is not None:
            if span.end_s is None and outcome is not None:
                span.set(outcome=outcome)
            span.finish()

    def _fire_callbacks(self) -> None:
        with self._callback_lock:
            self._settled = True
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    # -- client surface -------------------------------------------------

    def add_dispatch_callback(self, fn: Callable) -> None:
        """Call ``fn(batch)`` once the batch leaves the queue.

        Fires exactly once on any of dispatch, dispatch failure, deadline
        drop or queue-side cancel — or immediately when the batch already
        left the queue.  Callbacks may run on the dispatcher thread with
        the scheduler lock held, so they must be quick and must not call
        back into the scheduler (an async front-end typically just
        schedules a loop callback; see :mod:`repro.service`).
        """
        with self._callback_lock:
            if not self._settled:
                self._callbacks.append(fn)
                return
        fn(self)

    @property
    def dispatched(self) -> bool:
        """Return ``True`` once the batch has left the queue (or failed)."""
        return self._dispatched.is_set()

    def wait_time(self) -> float:
        """Return seconds spent in the queue (so far, or until dispatch)."""
        end = self.dispatched_at if self.dispatched_at is not None else time.monotonic()
        return max(0.0, end - self.submitted_at)

    def trace(self) -> Optional[dict]:
        """Return the batch's trace span tree (``None`` when untraced)."""
        return None if self.trace_span is None else self.trace_span.to_dict()

    def status(self) -> str:
        """Return ``"queued"``, ``"running"``, ``"done"``, ``"failed"``,
        ``"dropped"`` (queue deadline expired) or ``"cancelled"``."""
        if self._cancelled:
            return _BATCH_CANCELLED
        if not self._dispatched.is_set():
            return _BATCH_QUEUED
        if self._error is not None:
            return (
                _BATCH_DROPPED
                if isinstance(self._error, QueueTimeout)
                else _BATCH_FAILED
            )
        return _BATCH_DONE if self._jobset.done() else _BATCH_RUNNING

    def cancel(self) -> bool:
        """Cancel the batch: dequeue it while queued, else cancel its jobs.

        Returns ``True`` when the batch (still queued) or at least one of
        its jobs (already dispatched) will not run.  A cancelled queued
        batch settles immediately — ``status()`` reports ``"cancelled"``
        and collection raises :class:`~repro.exceptions.JobError`.
        """
        if self._scheduler is not None and self._scheduler._cancel_queued(self):
            return True
        jobset = self._jobset
        if jobset is not None:
            return any(jobset.cancel())
        return False

    def jobs(self, timeout: Optional[float] = None):
        """Block until dispatch and return the batch's :class:`JobSet`.

        Raises
        ------
        QueueTimeout
            When ``timeout`` expires with the batch still *queued* (never
            dispatched).  The exception carries the batch's queue position
            and wait time so callers can retry or abandon with context.
        JobError
            When the batch was cancelled or failed to dispatch.
        """
        if not self._dispatched.wait(timeout):
            waited = self.wait_time()
            position, queued = None, 0
            if self._scheduler is not None:
                position, queued = self._scheduler._queue_snapshot(self)
            where = (
                f", position {position + 1} of {queued} queued batch(es)"
                if position is not None
                else ""
            )
            raise QueueTimeout(
                f"batch for client {self.client!r} still queued after "
                f"{waited:.3f}s (timeout {timeout}s{where})",
                client=self.client,
                waited=waited,
                queue_position=position,
                queued_batches=queued,
            )
        if self._cancelled:
            raise JobError(f"batch for client {self.client!r} was cancelled")
        if self._error is not None:
            if isinstance(self._error, QueueTimeout):
                raise self._error  # deadline drop: surface the typed error
            raise JobError(
                f"batch for client {self.client!r} failed to dispatch: {self._error}"
            ) from self._error
        return self._jobset

    def result(self, timeout: Optional[float] = None):
        """Block for dispatch *and* completion; return the results in order.

        ``timeout`` is one deadline covering both waits — time spent in
        the queue is not granted again to collection.
        """
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        jobset = self.jobs(timeout)
        remaining = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        return jobset.result(timeout=remaining)

    def counts(self, timeout: Optional[float] = None):
        """Shorthand for ``[r.counts for r in batch.result()]`` (one shared
        deadline, exactly like :meth:`result`)."""
        return [result.counts for result in self.result(timeout=timeout)]

    def done(self) -> bool:
        """Return ``True`` once the batch is settled: every job finished,
        or the batch failed, was dropped, or was cancelled in the queue."""
        return self.status() in (
            _BATCH_DONE,
            _BATCH_FAILED,
            _BATCH_DROPPED,
            _BATCH_CANCELLED,
        )

    def __repr__(self) -> str:
        return (
            f"<ScheduledBatch client={self.client!r} size={self.size} "
            f"priority={self.priority} status={self.status()}>"
        )


class _ClientState:
    """Per-client queue and statistics (scheduler lock guards everything)."""

    __slots__ = ("name", "weight", "pending", "stats")

    def __init__(self, name: str, weight: int) -> None:
        self.name = name
        self.weight = weight
        #: Pending (batch, entry) kept sorted: higher priority first,
        #: submission order within a priority.
        self.pending: List[tuple] = []
        self.stats = {
            "submitted_batches": 0,
            "dispatched_batches": 0,
            "completed_batches": 0,
            "failed_batches": 0,
            "dropped_batches": 0,
            "cancelled_batches": 0,
            "reprioritized_batches": 0,
            "preempted_batches": 0,
            "submitted_jobs": 0,
            "completed_jobs": 0,
        }

    def _retire(self, batch: "ScheduledBatch") -> None:
        """Jobs that will never run still count as settled — submitted vs
        completed must keep reconciling."""
        self.stats["completed_batches"] += 1
        self.stats["completed_jobs"] += batch.size

    def record_failure(self, batch: "ScheduledBatch", error) -> None:
        """Retire ``batch`` as failed (dispatch error)."""
        self._retire(batch)
        self.stats["failed_batches"] += 1
        batch._mark_failed(error)

    def record_dropped(self, batch: "ScheduledBatch", error: QueueTimeout) -> None:
        """Retire ``batch`` as dropped (queue deadline expired)."""
        self._retire(batch)
        self.stats["dropped_batches"] += 1
        batch._mark_failed(error)

    def record_cancelled(self, batch: "ScheduledBatch") -> None:
        """Retire ``batch`` as cancelled while still queued."""
        self._retire(batch)
        self.stats["cancelled_batches"] += 1
        batch._mark_cancelled()


class Scheduler:
    """Fair-share submission queue over the runtime's execution stack.

    Many clients — sweep drivers, CI shards, interactive sessions —
    ``submit()`` batches concurrently; a dispatcher thread admits them
    into ``execute()`` under two policies:

    * **Weighted round-robin** across clients: each scheduling round
      grants every client with pending work ``weight`` dispatch slots, so
      a weight-3 client drains three batches for every one of a weight-1
      client, and no client starves.  Within one client, higher
      ``priority`` batches go first (submission order breaks ties).
    * **Bounded admission**: at most ``max_in_flight`` *jobs* (circuits)
      are in the execution stack at once; further batches wait in the
      queue.  A batch larger than the whole bound is admitted alone — it
      could never run otherwise.

    Scheduling policy affects *when* work starts, never what it computes:
    every batch flows through the same ``execute()`` the caller would have
    used, so counts keep the runtime's seed-determinism contract.

    Queue policies (the service layer's knobs) layer on top:

    * **Deadlines** — a batch submitted with ``deadline=`` that is still
      queued after that many seconds is retired per its
      ``deadline_action``: ``"drop"`` fails it with a typed
      :class:`~repro.exceptions.QueueTimeout` (queue position and wait
      time attached), ``"reprioritize"`` boosts it ahead of every
      regular-priority batch instead.
    * **Preemption** — with ``preempt_after=`` set, any batch waiting
      longer than that is boosted to the front of its client's queue and
      the client jumps the round-robin order once, so long-waiting
      low-priority work preempts a steady stream of high-priority
      submissions instead of starving behind it.
    * **Width planning** — with ``width_planning=True``, each dispatch's
      ``max_workers`` is sized by :func:`plan_width` from the cost
      model's estimated total batch cost instead of always taking the
      full shared pool (an explicit per-batch or scheduler-level
      ``max_workers`` always wins).

    Parameters
    ----------
    max_in_flight:
        In-flight job bound (default: ``4 * default_max_workers()``).
    executor / max_workers / schedule:
        Forwarded to every ``execute()`` call (per-batch ``**options``
        override them).
    require_registration:
        When ``True``, :meth:`submit` rejects client names that were not
        :meth:`client`-registered first (the multi-tenant service's
        admission discipline).  Default ``False`` keeps the library
        behaviour of auto-registering at weight 1.
    preempt_after:
        Seconds a queued batch may wait before it is boosted (see above);
        ``None`` disables preemption.
    width_planning:
        Enable cost-model-driven ``max_workers`` sizing per dispatch.
    cost_model:
        Model the width planner consults (default: the process default).
    breaker:
        Per-backend-spec circuit breaking: ``None``/``True`` enables the
        default :class:`~repro.runtime.breaker.CircuitBreaker` knobs, a
        dict overrides them (``failure_threshold``, ``min_samples``,
        ``window``, ``cooldown_s``, ``probe_limit``, ``probe_successes``),
        ``False`` disables breaking entirely.  A spec whose breaker is
        open has :meth:`submit` raise a typed
        :class:`~repro.exceptions.CircuitOpen` (with ``retry_after``)
        instead of queueing doomed work.  Breakers key on the backend
        spec string (or the instance's ``name``); per-circuit backend
        lists are never gated.
    """

    def __init__(
        self,
        max_in_flight: Optional[int] = None,
        executor: Optional[str] = None,
        max_workers: Optional[int] = None,
        schedule: Optional[str] = None,
        poll_interval: float = 0.002,
        require_registration: bool = False,
        preempt_after: Optional[float] = None,
        width_planning: bool = False,
        cost_model: Optional[CostModel] = None,
        breaker=None,
    ) -> None:
        if max_in_flight is None:
            max_in_flight = 4 * default_max_workers()
        if max_in_flight < 1:
            raise JobError(f"max_in_flight must be positive, got {max_in_flight}")
        if preempt_after is not None and preempt_after <= 0:
            raise JobError(
                f"preempt_after must be positive seconds, got {preempt_after}"
            )
        self.max_in_flight = int(max_in_flight)
        self.executor = executor
        self.max_workers = max_workers
        self.schedule = schedule
        self.require_registration = bool(require_registration)
        self.preempt_after = preempt_after
        self.width_planning = bool(width_planning)
        self.cost_model = cost_model
        if breaker is False:
            self._breaker_config = None
        elif breaker is None or breaker is True:
            self._breaker_config = {}
        elif isinstance(breaker, dict):
            self._breaker_config = dict(breaker)
        else:
            raise JobError(
                f"breaker must be None, a bool or a dict of CircuitBreaker "
                f"knobs, got {breaker!r}"
            )
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._poll_interval = float(poll_interval)
        self._lock = threading.Condition()
        self._clients: Dict[str, _ClientState] = {}
        self._round: List[str] = []  # remaining WRR slots of the current round
        self._in_flight: List[ScheduledBatch] = []
        self._in_flight_jobs = 0
        self._sequence = 0
        self._dispatched_total = 0
        self._queue_waits: List[float] = []  # recent dispatch wait samples
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        # Publish the scheduler's counters through the process-wide
        # metrics registry.  The collector holds only a weak reference —
        # short-lived schedulers (tests, embedded uses) are collectable —
        # and the fixed "scheduler" slot means the newest instance owns
        # the exposition, matching the one-service-per-process deployment.
        self._register_metrics()

    def _register_metrics(self) -> None:
        import weakref

        from repro.obs.metrics import DEFAULT_REGISTRY

        ref = weakref.ref(self)

        def collect():
            scheduler = ref()
            if scheduler is None or scheduler._closed:
                return []
            stats = scheduler.stats()
            samples = [
                ("repro_scheduler_in_flight_jobs", None, stats["in_flight_jobs"]),
                ("repro_scheduler_in_flight_batches", None, stats["in_flight_batches"]),
                ("repro_scheduler_queued_batches", None, stats["queued_batches"]),
                ("repro_scheduler_max_in_flight", None, stats["max_in_flight"]),
                (
                    "repro_scheduler_dispatched_batches_total",
                    None,
                    stats["dispatched_batches"],
                    "counter",
                ),
            ]
            if stats["queue_wait_mean_s"] is not None:
                samples.append(
                    ("repro_scheduler_queue_wait_mean_seconds", None, stats["queue_wait_mean_s"])
                )
            for name, client in stats["clients"].items():
                labels = {"client": name}
                samples.append(("repro_scheduler_client_weight", labels, client["weight"]))
                for field in ("submitted_jobs", "completed_jobs", "dispatched_batches"):
                    samples.append(
                        (f"repro_scheduler_client_{field}_total", labels, client[field], "counter")
                    )
            state_codes = {"closed": 0, "open": 1, "half_open": 2}
            for key, snap in stats.get("breakers", {}).items():
                labels = {"backend": key}
                samples.append(
                    ("repro_breaker_state", labels, state_codes.get(snap["state"], -1))
                )
                samples.append(
                    ("repro_breaker_rejections_total", labels, snap["rejections"], "counter")
                )
                samples.append(
                    ("repro_breaker_transitions_total", labels, snap["transitions"], "counter")
                )
            return samples

        DEFAULT_REGISTRY.register_collector("scheduler", collect)

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def client(self, name: str, weight: int = 1) -> None:
        """Register ``name`` (or update its ``weight``; default 1).

        Weight updates apply from the *next* round-robin round: the
        service layer's cost-accounting feedback calls this continuously
        to rebalance fair-share against measured per-tenant spend.
        """
        if weight < 1:
            raise JobError(f"client weight must be positive, got {weight}")
        with self._lock:
            state = self._clients.get(name)
            if state is None:
                self._clients[name] = _ClientState(name, int(weight))
            else:
                state.weight = int(weight)

    # -- circuit breaking ------------------------------------------------

    def _breaker_key_for(self, backend) -> Optional[str]:
        """Map a submission's backend argument to its breaker key.

        Spec strings key directly; backend instances key on their
        ``name``.  Per-circuit backend sequences are never gated (their
        outcome would be ambiguous across specs).
        """
        if self._breaker_config is None:
            return None
        if isinstance(backend, str):
            return backend
        if isinstance(backend, (list, tuple)):
            return None
        name = getattr(backend, "name", None)
        if isinstance(name, str) and name:
            return name
        return None

    def _breaker_for(self, key: str) -> CircuitBreaker:
        """Get-or-create the breaker for ``key`` (caller holds the lock)."""
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(**self._breaker_config)
            self._breakers[key] = breaker
        return breaker

    def _record_breaker_outcome(self, batch: ScheduledBatch,
                                success: bool) -> None:
        """Report a settled batch's outcome (caller holds the lock)."""
        key = batch._breaker_key
        if key is None:
            return
        breaker = self._breakers.get(key)
        if breaker is None:
            return
        before = breaker.state
        if success:
            breaker.record_success()
        else:
            breaker.record_failure()
        after = breaker.state
        if after != before and batch.trace_span is not None:
            batch.trace_span.event(
                "breaker_transition", backend=key, state=after
            )

    def breakers(self) -> Dict[str, dict]:
        """Snapshot every backend spec's breaker state."""
        with self._lock:
            items = list(self._breakers.items())
        return {key: breaker.snapshot() for key, breaker in items}

    def client_weights(self) -> Dict[str, int]:
        """Snapshot ``{client name: current round-robin weight}``.

        The live dispatch weights — after any cost-accounting rebalance —
        as opposed to the base weights clients registered with.
        """
        with self._lock:
            return {name: state.weight for name, state in self._clients.items()}

    def submit(
        self,
        circuits,
        backend,
        shots=1024,
        seed=None,
        client: str = "default",
        priority: int = 0,
        deadline: Optional[float] = None,
        deadline_action: str = "drop",
        trace_span: Optional[Span] = None,
        **options,
    ) -> ScheduledBatch:
        """Queue a batch for ``client`` and return its handle immediately.

        ``circuits``/``backend``/``shots``/``seed`` and ``**options`` are
        exactly :func:`repro.runtime.execute.execute`'s arguments; the
        scheduler's ``executor``/``max_workers``/``schedule`` defaults
        apply unless the batch overrides them.  ``priority`` orders
        batches *within* this client's queue (cross-client order is the
        weighted round-robin's business); it must be a non-negative
        integer — anything else raises ``ValueError`` instead of being
        silently coerced.  ``deadline`` bounds the batch's *queue* wait in
        seconds; once expired, ``deadline_action="drop"`` retires it with
        a :class:`~repro.exceptions.QueueTimeout` and ``"reprioritize"``
        boosts it ahead of all regular-priority batches.
        """
        from repro.circuits.circuit import QuantumCircuit

        if not isinstance(client, str) or not client:
            raise ValueError(
                f"client name must be a non-empty string, got {client!r}"
            )
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ValueError(
                "priority must be a non-negative int, got "
                f"{type(priority).__name__} {priority!r}"
            )
        if priority < 0:
            raise ValueError(f"priority must be non-negative, got {priority}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive seconds, got {deadline}")
        if deadline_action not in DEADLINE_ACTIONS:
            raise ValueError(
                f"unknown deadline_action {deadline_action!r}; "
                f"choose from {list(DEADLINE_ACTIONS)}"
            )
        circuit_list = (
            [circuits] if isinstance(circuits, QuantumCircuit) else list(circuits)
        )
        batch = ScheduledBatch(
            client,
            priority,
            len(circuit_list),
            scheduler=self,
            deadline=deadline,
            deadline_action=deadline_action,
            trace_span=trace_span,
        )
        spec = {
            "circuits": circuit_list,
            "backend": backend,
            "shots": shots,
            "seed": seed,
            "options": options,
        }
        with self._lock:
            if self._closed:
                raise JobError("scheduler is shut down")
            state = self._clients.get(client)
            if state is None:
                if self.require_registration:
                    raise ValueError(
                        f"client {client!r} is not registered with this "
                        "scheduler; register it first with "
                        f"Scheduler.client({client!r}) "
                        f"(registered: {sorted(self._clients) or 'none'})"
                    )
                state = _ClientState(client, 1)
                self._clients[client] = state
            breaker_key = self._breaker_key_for(backend)
            if breaker_key is not None:
                admitted, retry_after = self._breaker_for(breaker_key).allow()
                if not admitted:
                    raise CircuitOpen(
                        f"circuit breaker open for backend "
                        f"{breaker_key!r}; retry in {retry_after:.3f}s",
                        backend=breaker_key,
                        retry_after=retry_after,
                    )
                batch._breaker_key = breaker_key
            self._sequence += 1
            entry = (-batch.priority, self._sequence, spec)
            # Insertion sort keeps the queue ordered without re-sorting on
            # every dispatch; queues are short relative to batch cost.
            position = len(state.pending)
            for i, (existing, _b) in enumerate(state.pending):
                if entry[:2] < existing[:2]:
                    position = i
                    break
            state.pending.insert(position, (entry, batch))
            state.stats["submitted_batches"] += 1
            state.stats["submitted_jobs"] += batch.size
            self._ensure_thread()
            self._lock.notify_all()
        return batch

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _ensure_thread(self) -> None:
        """Start the dispatcher lazily (caller holds the lock)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="repro-scheduler", daemon=True
            )
            self._thread.start()

    def _admits(self, batch: ScheduledBatch) -> bool:
        """Admission control (caller holds the lock)."""
        if not self._in_flight:
            return True  # never deadlock on an over-sized batch
        return self._in_flight_jobs + batch.size <= self.max_in_flight

    def _next_slot(self) -> Optional[_ClientState]:
        """Return the next WRR client with pending work (holds the lock).

        The round list grants each client ``weight`` consecutive slots per
        round, rebuilt from the live registrations whenever it runs dry.
        Empty-handed slots (client drained mid-round) are skipped.
        """
        for _ in range(2):  # current round, then at most one rebuild
            while self._round:
                name = self._round.pop(0)
                state = self._clients.get(name)
                if state is not None and state.pending:
                    return state
            self._round = [
                name
                for name, state in self._clients.items()
                for _slot in range(state.weight)
                if state.pending
            ]
            if not self._round:
                return None
        return None

    def _dispatch_one(self, state: _ClientState) -> None:
        """Pop and execute ``state``'s head batch (caller holds the lock)."""
        _entry, batch = state.pending.pop(0)
        spec = _entry[2]
        options = dict(spec["options"])
        options.setdefault("executor", self.executor)
        options.setdefault("schedule", self.schedule)
        if (
            self.width_planning
            and options.get("max_workers") is None
            and self.max_workers is None
        ):
            batch.planned_width = plan_width(
                spec["backend"],
                spec["circuits"],
                spec["shots"],
                cost_model=self.cost_model,
            )
            options["max_workers"] = batch.planned_width
        else:
            options.setdefault("max_workers", self.max_workers)
        self._in_flight.append(batch)
        self._in_flight_jobs += batch.size
        state.stats["dispatched_batches"] += 1
        self._dispatched_total += 1
        self._queue_waits.append(time.monotonic() - batch.submitted_at)
        if len(self._queue_waits) > 4096:
            del self._queue_waits[:2048]
        batch._finish_queue_span()
        dispatch_span = (
            batch.trace_span.child("dispatch") if batch.trace_span is not None else None
        )
        if batch.trace_span is not None:
            options["trace_parent"] = batch.trace_span
        self._lock.release()
        # execute() outside the lock: submission may pay pool creation,
        # transpiles and (serial executor) the entire simulation.
        try:
            from repro.runtime.execute import execute

            jobset = execute(
                spec["circuits"],
                spec["backend"],
                shots=spec["shots"],
                seed=spec["seed"],
                **options,
            )
        except BaseException as exc:
            if dispatch_span is not None:
                dispatch_span.finish().set(error=type(exc).__name__)
            self._lock.acquire()
            self._in_flight.remove(batch)
            self._in_flight_jobs -= batch.size
            self._record_breaker_outcome(batch, success=False)
            state.record_failure(batch, exc)
            return
        if dispatch_span is not None:
            dispatch_span.finish().set(
                planned_width=batch.planned_width,
                executor=options.get("executor"),
            )
        self._lock.acquire()
        batch._mark_dispatched(jobset)

    def _reap_completed(self) -> bool:
        """Retire finished in-flight batches (caller holds the lock)."""
        finished = [
            b for b in self._in_flight if b._jobset is not None and b._jobset.done()
        ]
        for batch in finished:
            self._in_flight.remove(batch)
            self._in_flight_jobs -= batch.size
            state = self._clients[batch.client]
            state.stats["completed_batches"] += 1
            state.stats["completed_jobs"] += batch.size
            if batch._breaker_key is not None:
                from repro.runtime.job import JobStatus

                statuses = batch._jobset.statuses()
                success = not any(s is JobStatus.ERROR for s in statuses)
                self._record_breaker_outcome(batch, success)
        return bool(finished)

    def _apply_queue_policies(self) -> bool:
        """Enforce deadlines and preemption on queued batches (holds lock).

        Deadline-expired batches are dropped (typed
        :class:`~repro.exceptions.QueueTimeout`) or boosted per their
        ``deadline_action``; batches waiting longer than ``preempt_after``
        are boosted and their client jumps the round order once.  Boosted
        entries take :data:`_URGENT_RANK`, which outranks every regular
        priority while preserving submission order among boosted peers.
        """
        now = time.monotonic()
        changed = False
        for state in self._clients.values():
            if not state.pending:
                continue
            retained = []
            resort = False
            for entry, batch in state.pending:
                waited = now - batch.submitted_at
                if batch.deadline is not None and waited > batch.deadline:
                    if batch.deadline_action == "drop":
                        position = len(retained)
                        queued = self._queued_batches()
                        state.record_dropped(
                            batch,
                            QueueTimeout(
                                f"batch for client {batch.client!r} dropped: "
                                f"queued {waited:.3f}s past its "
                                f"{batch.deadline}s deadline",
                                client=batch.client,
                                waited=waited,
                                queue_position=position,
                                queued_batches=queued,
                            ),
                        )
                        changed = True
                        continue
                    if not batch._boosted:
                        entry = (_URGENT_RANK, entry[1], entry[2])
                        batch._boosted = True
                        state.stats["reprioritized_batches"] += 1
                        resort = changed = True
                elif (
                    self.preempt_after is not None
                    and waited > self.preempt_after
                    and not batch._boosted
                ):
                    entry = (_URGENT_RANK, entry[1], entry[2])
                    batch._boosted = True
                    state.stats["preempted_batches"] += 1
                    # The aged client takes the very next dispatch slot.
                    self._round.insert(0, state.name)
                    resort = changed = True
                retained.append((entry, batch))
            if resort:
                retained.sort(key=lambda item: item[0][:2])
            state.pending[:] = retained
        return changed

    def _dispatch_loop(self) -> None:
        with self._lock:
            while True:
                progressed = self._reap_completed()
                progressed |= self._apply_queue_policies()
                while True:
                    state = self._next_slot()
                    if state is None:
                        break
                    _entry, head = state.pending[0]
                    if not self._admits(head):
                        # Head-of-line blocks the round: credits are spent
                        # in order, so fairness is preserved across waits.
                        self._round.insert(0, state.name)
                        break
                    self._dispatch_one(state)
                    progressed = True
                if progressed:
                    self._lock.notify_all()
                if self._closed and not self._in_flight and not self._has_pending():
                    return
                if self._in_flight:
                    # Completion has no callback that covers derived jobs;
                    # poll like JobSet.as_completed does.
                    self._lock.wait(self._poll_interval)
                else:
                    self._lock.wait(0.2 if self._closed else None)

    def _has_pending(self) -> bool:
        return any(state.pending for state in self._clients.values())

    def _queued_batches(self) -> int:
        """Total queued batches across clients (caller holds the lock)."""
        return sum(len(state.pending) for state in self._clients.values())

    def _queue_snapshot(self, batch: ScheduledBatch):
        """Return ``(position within its client's queue, total queued)``.

        Position is ``None`` when the batch already left the queue (the
        caller lost a race with the dispatcher).
        """
        with self._lock:
            total = self._queued_batches()
            state = self._clients.get(batch.client)
            if state is not None:
                for index, (_entry, queued) in enumerate(state.pending):
                    if queued is batch:
                        return index, total
            return None, total

    def queue_position(self, batch: ScheduledBatch) -> Optional[int]:
        """Return ``batch``'s position in its client's queue (0 = next),
        or ``None`` once it has left the queue."""
        position, _total = self._queue_snapshot(batch)
        return position

    def queue_depth(self) -> int:
        """Total queued batches across clients.

        A cheap accessor for admission-control callers (the service's
        load-shedding watermark) that must not pay for the full
        :meth:`stats` snapshot on every submission.
        """
        with self._lock:
            return self._queued_batches()

    def _cancel_queued(self, batch: ScheduledBatch) -> bool:
        """Dequeue and retire ``batch`` if it is still queued."""
        with self._lock:
            state = self._clients.get(batch.client)
            if state is None:
                return False
            for index, (_entry, queued) in enumerate(state.pending):
                if queued is batch:
                    del state.pending[index]
                    state.record_cancelled(batch)
                    self._lock.notify_all()
                    return True
            return False

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Return queue depth, in-flight load, and per-client counters."""
        with self._lock:
            waits = list(self._queue_waits)
            breakers = list(self._breakers.items())
            snapshot = {
                "max_in_flight": self.max_in_flight,
                "in_flight_jobs": self._in_flight_jobs,
                "in_flight_batches": len(self._in_flight),
                "queued_batches": self._queued_batches(),
                "dispatched_batches": self._dispatched_total,
                "queue_wait_samples": len(waits),
                "queue_wait_mean_s": (
                    sum(waits) / len(waits) if waits else None
                ),
                "clients": {
                    name: dict(state.stats, weight=state.weight)
                    for name, state in self._clients.items()
                },
            }
        snapshot["breakers"] = {
            key: breaker.snapshot() for key, breaker in breakers
        }
        return snapshot

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is queued or in flight; ``False`` on timeout."""
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._has_pending() or self._in_flight:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._lock.wait(
                    self._poll_interval
                    if self._in_flight
                    else remaining
                )
            return True

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; drain (``wait=True``) or cancel the queue.

        With ``wait=False`` every still-queued batch is failed so no
        caller blocks forever on a handle that will never dispatch.
        """
        with self._lock:
            self._closed = True
            if not wait:
                for state in self._clients.values():
                    for _entry, batch in state.pending:
                        state.record_failure(
                            batch, JobError("scheduler was shut down")
                        )
                    state.pending.clear()
            thread = self._thread
            self._lock.notify_all()
        if thread is not None and thread.is_alive():
            thread.join()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=exc_info[0] is None)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"<Scheduler clients={len(stats['clients'])} "
            f"queued={stats['queued_batches']} "
            f"in_flight={stats['in_flight_jobs']}/{self.max_in_flight}>"
        )
