"""Cost-model-driven adaptive scheduling: chunk sizing, executor choice,
and a fair-share multi-client submission queue.

PR 2 gave the runtime shared pools and PR 3 persistent caches, but every
``execute()`` call still picked ``chunk_shots``, executor kind and worker
width by hand.  This module closes that loop with the measure-then-decide
discipline of profile-guided optimisation:

* :func:`plan_chunk_shots` sizes shot chunks for the per-shot Monte-Carlo
  engines from the :class:`~repro.runtime.profile.CostModel`'s measured
  per-shot cost — enough chunks to saturate the pool, never so many that
  scheduling overhead dominates.  Exact-distribution engines are never
  chunked (their simulation cost is shots-independent).
* :func:`executor_kind_for` maps a backend to its natural executor:
  ``"process"`` for the GIL-bound per-shot engines (stabilizer,
  trajectory), ``"thread"`` for the NumPy engines whose kernels release
  the GIL.  ``$REPRO_EXECUTOR`` and an explicit ``executor=`` always win.
* :class:`Scheduler` is a submission front door for *many clients*:
  weighted round-robin dispatch across per-client queues, priority order
  within a client, and bounded in-flight admission control layered on the
  existing ``execute()``/:class:`~repro.runtime.job.JobSet` machinery.

Determinism contract
--------------------
Adaptive decisions never change counts for a seeded call.  Counts are a
pure function of ``(circuit, backend, shots, seed, chunk_shots)``; the
adaptive scheduler therefore only varies the pieces outside that tuple —
executor kind, pool width, dispatch order — and applies cost-driven chunk
sizing exactly where it is count-transparent or explicitly requested:

* ``seed=None`` jobs (no reproducibility contract — every run draws fresh
  entropy) are chunked freely;
* ``chunk_shots="auto"`` is an explicit opt-in for seeded jobs: the
  resolved size is deterministic given the model state, recorded in the
  job's plan, and the counts equal ``schedule="fixed"`` with that same
  explicit ``chunk_shots`` (``tests/runtime/test_schedule_determinism.py``
  pins both halves of the contract);
* everything else runs the fixed plan's chunk schedule verbatim, so
  ``schedule="adaptive"`` is bit-identical to ``schedule="fixed"`` for a
  fixed seed on every backend family and executor kind.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Dict, List, Optional

from repro.exceptions import JobError
from repro.runtime.profile import DEFAULT_COST_MODEL, CostModel, profile_key
from repro.runtime.pool import default_max_workers

#: The selectable scheduling modes.
SCHEDULE_MODES = ("adaptive", "fixed")

#: Environment variable naming the default scheduling mode.
SCHEDULE_ENV_VAR = "REPRO_SCHEDULE"

#: Adaptive chunks aim for roughly this much work per pool task: large
#: enough that per-task submit/pickle overhead stays in the noise, small
#: enough that a long job streams progress through the pool.
TARGET_CHUNK_SECONDS = 0.2

#: Estimated job cost below which splitting is pure overhead.
SPLIT_THRESHOLD_SECONDS = 0.05

#: Never emit chunks smaller than this many shots.
MIN_CHUNK_SHOTS = 16

#: At most this many chunks per pool worker (bounded oversubscription
#: keeps the tail short without flooding the queue).
OVERSUBSCRIBE = 4

#: Chunk-size multiplier for batch-axis (``vectorized_shots``) engines:
#: their per-shot cost *falls* with chunk size (kernel dispatch and
#: substream setup amortise over the tile), so bigger chunks pay off and
#: fine slicing is pure overhead.
VECTORIZED_CHUNK_FACTOR = 8


def default_schedule_mode() -> str:
    """Return the default mode: ``$REPRO_SCHEDULE`` or ``"adaptive"``."""
    mode = os.environ.get(SCHEDULE_ENV_VAR, "").strip().lower()
    if not mode:
        return "adaptive"
    if mode not in SCHEDULE_MODES:
        raise JobError(
            f"{SCHEDULE_ENV_VAR}={mode!r} is not a valid schedule mode; "
            f"choose from {list(SCHEDULE_MODES)}"
        )
    return mode


def resolve_schedule_mode(schedule: Optional[str]) -> str:
    """Map an ``execute(schedule=...)`` argument to a concrete mode."""
    if schedule is None:
        return default_schedule_mode()
    if schedule not in SCHEDULE_MODES:
        raise JobError(
            f"unknown schedule mode {schedule!r}; choose from {list(SCHEDULE_MODES)}"
        )
    return schedule


def is_per_shot_backend(backend) -> bool:
    """Return ``True`` for engines that sample shot by shot.

    Backends that report exact distributions (``returns_probabilities``)
    simulate once and draw counts in a single multinomial — shots cost
    next to nothing, so neither chunking nor process fan-out helps them.
    Everything else (stabilizer, trajectory, arbitrary user engines) pays
    per shot and is worth sharding.
    """
    return not getattr(backend, "returns_probabilities", False)


def executor_kind_for(backend) -> str:
    """Return the backend's natural executor kind (no overrides applied).

    The per-shot engines are pure Python, so only worker *processes* can
    overlap their shots; the NumPy engines release the GIL inside their
    kernels and run cheaper on threads (no pickling, shared caches).
    Per-shot engines that simulate along a batch axis
    (``vectorized_shots``, e.g. the batched trajectory engine) count as
    NumPy engines for this purpose.
    """
    if not is_per_shot_backend(backend):
        return "thread"
    return "thread" if getattr(backend, "vectorized_shots", False) else "process"


def plan_chunk_shots(
    backend,
    circuit,
    shots: int,
    width: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
) -> Optional[int]:
    """Pick an adaptive ``chunk_shots`` for one job, or ``None`` (unchunked).

    Deterministic given the model state: the same ``(backend, circuit,
    shots, width)`` against the same profile always plans the same split.

    * Exact-distribution backends and single-worker pools never chunk.
    * With no measured cost yet (cold model), the bootstrap plan splits
      into one chunk per worker — saturating the pool is the best guess
      available — subject to the :data:`MIN_CHUNK_SHOTS` floor.
    * With a measured per-shot cost, jobs cheaper than
      :data:`SPLIT_THRESHOLD_SECONDS` stay whole, and everything else is
      cut into roughly :data:`TARGET_CHUNK_SECONDS` pieces, at least one
      per worker when the job is big enough and at most
      :data:`OVERSUBSCRIBE` per worker.
    * Batch-axis engines (``vectorized_shots``) aim for chunks
      :data:`VECTORIZED_CHUNK_FACTOR` times fatter: their kernel dispatch
      amortises over the tile, so many small chunks would re-pay the
      per-chunk setup the batching just removed.
    """
    if shots <= MIN_CHUNK_SHOTS or not is_per_shot_backend(backend):
        return None
    width = width if width is not None else default_max_workers()
    if width <= 1:
        return None
    model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    per_shot = model.per_shot(profile_key(backend, circuit))
    if per_shot is None:
        chunk = max(MIN_CHUNK_SHOTS, math.ceil(shots / width))
        return chunk if chunk < shots else None
    target = TARGET_CHUNK_SECONDS
    if getattr(backend, "vectorized_shots", False):
        target *= VECTORIZED_CHUNK_FACTOR
    total = per_shot * shots
    if total < SPLIT_THRESHOLD_SECONDS:
        return None
    chunks = min(width * OVERSUBSCRIBE, max(1, math.ceil(total / target)))
    if total >= width * SPLIT_THRESHOLD_SECONDS:
        chunks = max(chunks, width)  # enough pieces to saturate the pool
    chunks = min(chunks, shots // MIN_CHUNK_SHOTS)
    if chunks <= 1:
        return None
    chunk = math.ceil(shots / chunks)
    return chunk if chunk < shots else None


# ----------------------------------------------------------------------
# Fair-share multi-client submission queue
# ----------------------------------------------------------------------


_BATCH_QUEUED = "queued"
_BATCH_RUNNING = "running"
_BATCH_DONE = "done"
_BATCH_FAILED = "failed"


class ScheduledBatch:
    """One client's submission, in the scheduler's hands.

    Returned immediately by :meth:`Scheduler.submit`; the underlying
    :class:`~repro.runtime.job.JobSet` exists only once the fair-share
    dispatcher admits the batch.  Collection blocks until then.
    """

    def __init__(self, client: str, priority: int, size: int) -> None:
        self.client = client
        self.priority = int(priority)
        self.size = size
        self._dispatched = threading.Event()
        self._jobset = None
        self._error: Optional[BaseException] = None

    # -- scheduler-internal ---------------------------------------------

    def _mark_dispatched(self, jobset) -> None:
        self._jobset = jobset
        self._dispatched.set()

    def _mark_failed(self, error: BaseException) -> None:
        self._error = error
        self._dispatched.set()

    # -- client surface -------------------------------------------------

    @property
    def dispatched(self) -> bool:
        """Return ``True`` once the batch has left the queue (or failed)."""
        return self._dispatched.is_set()

    def status(self) -> str:
        """Return ``"queued"``, ``"running"``, ``"done"`` or ``"failed"``."""
        if not self._dispatched.is_set():
            return _BATCH_QUEUED
        if self._error is not None:
            return _BATCH_FAILED
        return _BATCH_DONE if self._jobset.done() else _BATCH_RUNNING

    def jobs(self, timeout: Optional[float] = None):
        """Block until dispatch and return the batch's :class:`JobSet`."""
        if not self._dispatched.wait(timeout):
            raise JobError(
                f"batch for client {self.client!r} not dispatched within {timeout}s"
            )
        if self._error is not None:
            raise JobError(
                f"batch for client {self.client!r} failed to dispatch: {self._error}"
            ) from self._error
        return self._jobset

    def result(self, timeout: Optional[float] = None):
        """Block for dispatch *and* completion; return the results in order.

        ``timeout`` is one deadline covering both waits — time spent in
        the queue is not granted again to collection.
        """
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        jobset = self.jobs(timeout)
        remaining = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        return jobset.result(timeout=remaining)

    def counts(self, timeout: Optional[float] = None):
        """Shorthand for ``[r.counts for r in batch.result()]`` (one shared
        deadline, exactly like :meth:`result`)."""
        return [result.counts for result in self.result(timeout=timeout)]

    def done(self) -> bool:
        """Return ``True`` once every job finished (or dispatch failed)."""
        return self.status() in (_BATCH_DONE, _BATCH_FAILED)

    def __repr__(self) -> str:
        return (
            f"<ScheduledBatch client={self.client!r} size={self.size} "
            f"priority={self.priority} status={self.status()}>"
        )


class _ClientState:
    """Per-client queue and statistics (scheduler lock guards everything)."""

    __slots__ = ("name", "weight", "pending", "stats")

    def __init__(self, name: str, weight: int) -> None:
        self.name = name
        self.weight = weight
        #: Pending (batch, entry) kept sorted: higher priority first,
        #: submission order within a priority.
        self.pending: List[tuple] = []
        self.stats = {
            "submitted_batches": 0,
            "dispatched_batches": 0,
            "completed_batches": 0,
            "failed_batches": 0,
            "submitted_jobs": 0,
            "completed_jobs": 0,
        }

    def record_failure(self, batch: "ScheduledBatch", error) -> None:
        """Retire ``batch`` as failed: its jobs will never run, so they
        count as settled — submitted vs completed must keep reconciling."""
        self.stats["completed_batches"] += 1
        self.stats["failed_batches"] += 1
        self.stats["completed_jobs"] += batch.size
        batch._mark_failed(error)


class Scheduler:
    """Fair-share submission queue over the runtime's execution stack.

    Many clients — sweep drivers, CI shards, interactive sessions —
    ``submit()`` batches concurrently; a dispatcher thread admits them
    into ``execute()`` under two policies:

    * **Weighted round-robin** across clients: each scheduling round
      grants every client with pending work ``weight`` dispatch slots, so
      a weight-3 client drains three batches for every one of a weight-1
      client, and no client starves.  Within one client, higher
      ``priority`` batches go first (submission order breaks ties).
    * **Bounded admission**: at most ``max_in_flight`` *jobs* (circuits)
      are in the execution stack at once; further batches wait in the
      queue.  A batch larger than the whole bound is admitted alone — it
      could never run otherwise.

    Scheduling policy affects *when* work starts, never what it computes:
    every batch flows through the same ``execute()`` the caller would have
    used, so counts keep the runtime's seed-determinism contract.

    Parameters
    ----------
    max_in_flight:
        In-flight job bound (default: ``4 * default_max_workers()``).
    executor / max_workers / schedule:
        Forwarded to every ``execute()`` call (per-batch ``**options``
        override them).
    """

    def __init__(
        self,
        max_in_flight: Optional[int] = None,
        executor: Optional[str] = None,
        max_workers: Optional[int] = None,
        schedule: Optional[str] = None,
        poll_interval: float = 0.002,
    ) -> None:
        if max_in_flight is None:
            max_in_flight = 4 * default_max_workers()
        if max_in_flight < 1:
            raise JobError(f"max_in_flight must be positive, got {max_in_flight}")
        self.max_in_flight = int(max_in_flight)
        self.executor = executor
        self.max_workers = max_workers
        self.schedule = schedule
        self._poll_interval = float(poll_interval)
        self._lock = threading.Condition()
        self._clients: Dict[str, _ClientState] = {}
        self._round: List[str] = []  # remaining WRR slots of the current round
        self._in_flight: List[ScheduledBatch] = []
        self._in_flight_jobs = 0
        self._sequence = 0
        self._dispatched_total = 0
        self._closed = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def client(self, name: str, weight: int = 1) -> None:
        """Register ``name`` (or update its ``weight``; default 1)."""
        if weight < 1:
            raise JobError(f"client weight must be positive, got {weight}")
        with self._lock:
            state = self._clients.get(name)
            if state is None:
                self._clients[name] = _ClientState(name, int(weight))
            else:
                state.weight = int(weight)

    def submit(
        self,
        circuits,
        backend,
        shots=1024,
        seed=None,
        client: str = "default",
        priority: int = 0,
        **options,
    ) -> ScheduledBatch:
        """Queue a batch for ``client`` and return its handle immediately.

        ``circuits``/``backend``/``shots``/``seed`` and ``**options`` are
        exactly :func:`repro.runtime.execute.execute`'s arguments; the
        scheduler's ``executor``/``max_workers``/``schedule`` defaults
        apply unless the batch overrides them.  ``priority`` orders
        batches *within* this client's queue (cross-client order is the
        weighted round-robin's business).
        """
        from repro.circuits.circuit import QuantumCircuit

        circuit_list = (
            [circuits] if isinstance(circuits, QuantumCircuit) else list(circuits)
        )
        batch = ScheduledBatch(client, priority, len(circuit_list))
        spec = {
            "circuits": circuit_list,
            "backend": backend,
            "shots": shots,
            "seed": seed,
            "options": options,
        }
        with self._lock:
            if self._closed:
                raise JobError("scheduler is shut down")
            state = self._clients.get(client)
            if state is None:
                state = _ClientState(client, 1)
                self._clients[client] = state
            self._sequence += 1
            entry = (-batch.priority, self._sequence, spec)
            # Insertion sort keeps the queue ordered without re-sorting on
            # every dispatch; queues are short relative to batch cost.
            position = len(state.pending)
            for i, (existing, _b) in enumerate(state.pending):
                if entry[:2] < existing[:2]:
                    position = i
                    break
            state.pending.insert(position, (entry, batch))
            state.stats["submitted_batches"] += 1
            state.stats["submitted_jobs"] += batch.size
            self._ensure_thread()
            self._lock.notify_all()
        return batch

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _ensure_thread(self) -> None:
        """Start the dispatcher lazily (caller holds the lock)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="repro-scheduler", daemon=True
            )
            self._thread.start()

    def _admits(self, batch: ScheduledBatch) -> bool:
        """Admission control (caller holds the lock)."""
        if not self._in_flight:
            return True  # never deadlock on an over-sized batch
        return self._in_flight_jobs + batch.size <= self.max_in_flight

    def _next_slot(self) -> Optional[_ClientState]:
        """Return the next WRR client with pending work (holds the lock).

        The round list grants each client ``weight`` consecutive slots per
        round, rebuilt from the live registrations whenever it runs dry.
        Empty-handed slots (client drained mid-round) are skipped.
        """
        for _ in range(2):  # current round, then at most one rebuild
            while self._round:
                name = self._round.pop(0)
                state = self._clients.get(name)
                if state is not None and state.pending:
                    return state
            self._round = [
                name
                for name, state in self._clients.items()
                for _slot in range(state.weight)
                if state.pending
            ]
            if not self._round:
                return None
        return None

    def _dispatch_one(self, state: _ClientState) -> None:
        """Pop and execute ``state``'s head batch (caller holds the lock)."""
        _entry, batch = state.pending.pop(0)
        spec = _entry[2]
        options = dict(spec["options"])
        options.setdefault("executor", self.executor)
        options.setdefault("max_workers", self.max_workers)
        options.setdefault("schedule", self.schedule)
        self._in_flight.append(batch)
        self._in_flight_jobs += batch.size
        state.stats["dispatched_batches"] += 1
        self._dispatched_total += 1
        self._lock.release()
        # execute() outside the lock: submission may pay pool creation,
        # transpiles and (serial executor) the entire simulation.
        try:
            from repro.runtime.execute import execute

            jobset = execute(
                spec["circuits"],
                spec["backend"],
                shots=spec["shots"],
                seed=spec["seed"],
                **options,
            )
        except BaseException as exc:
            self._lock.acquire()
            self._in_flight.remove(batch)
            self._in_flight_jobs -= batch.size
            state.record_failure(batch, exc)
            return
        self._lock.acquire()
        batch._mark_dispatched(jobset)

    def _reap_completed(self) -> bool:
        """Retire finished in-flight batches (caller holds the lock)."""
        finished = [
            b for b in self._in_flight if b._jobset is not None and b._jobset.done()
        ]
        for batch in finished:
            self._in_flight.remove(batch)
            self._in_flight_jobs -= batch.size
            state = self._clients[batch.client]
            state.stats["completed_batches"] += 1
            state.stats["completed_jobs"] += batch.size
        return bool(finished)

    def _dispatch_loop(self) -> None:
        with self._lock:
            while True:
                progressed = self._reap_completed()
                while True:
                    state = self._next_slot()
                    if state is None:
                        break
                    _entry, head = state.pending[0]
                    if not self._admits(head):
                        # Head-of-line blocks the round: credits are spent
                        # in order, so fairness is preserved across waits.
                        self._round.insert(0, state.name)
                        break
                    self._dispatch_one(state)
                    progressed = True
                if progressed:
                    self._lock.notify_all()
                if self._closed and not self._in_flight and not self._has_pending():
                    return
                if self._in_flight:
                    # Completion has no callback that covers derived jobs;
                    # poll like JobSet.as_completed does.
                    self._lock.wait(self._poll_interval)
                else:
                    self._lock.wait(0.2 if self._closed else None)

    def _has_pending(self) -> bool:
        return any(state.pending for state in self._clients.values())

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Return queue depth, in-flight load, and per-client counters."""
        with self._lock:
            return {
                "max_in_flight": self.max_in_flight,
                "in_flight_jobs": self._in_flight_jobs,
                "in_flight_batches": len(self._in_flight),
                "queued_batches": sum(
                    len(state.pending) for state in self._clients.values()
                ),
                "dispatched_batches": self._dispatched_total,
                "clients": {
                    name: dict(state.stats, weight=state.weight)
                    for name, state in self._clients.items()
                },
            }

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is queued or in flight; ``False`` on timeout."""
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._has_pending() or self._in_flight:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._lock.wait(
                    self._poll_interval
                    if self._in_flight
                    else remaining
                )
            return True

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; drain (``wait=True``) or cancel the queue.

        With ``wait=False`` every still-queued batch is failed so no
        caller blocks forever on a handle that will never dispatch.
        """
        with self._lock:
            self._closed = True
            if not wait:
                for state in self._clients.values():
                    for _entry, batch in state.pending:
                        state.record_failure(
                            batch, JobError("scheduler was shut down")
                        )
                    state.pending.clear()
            thread = self._thread
            self._lock.notify_all()
        if thread is not None and thread.is_alive():
            thread.join()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=exc_info[0] is None)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"<Scheduler clients={len(stats['clients'])} "
            f"queued={stats['queued_batches']} "
            f"in_flight={stats['in_flight_jobs']}/{self.max_in_flight}>"
        )
