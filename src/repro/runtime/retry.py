"""Chunk retry policy: bounded attempts with decorrelated-jitter backoff.

A chunk that raises no longer fails its job outright — the job retries it
up to :attr:`RetryPolicy.max_retries` times (optionally capped across the
whole job by :attr:`RetryPolicy.retry_budget`), re-submitting with the
chunk's *original* ``(seed, chunk index)`` so a retried chunk's counts
are bit-identical to a fault-free run by construction: determinism lives
in the arguments, not the attempt number.

Backoff is "decorrelated jitter" (Brooker): each sleep is drawn uniformly
from ``[base, prev * 3]``, clamped to ``max_backoff_s`` — spreading
retries without the synchronized thundering herd of plain exponential
backoff.  The jitter RNG is itself seeded from ``(job seed, chunk index,
attempt)``, so even the *timing* of a chaos run is reproducible.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "RetryPolicy",
    "DEFAULT_MAX_RETRIES",
    "RETRY_ENV_VAR",
    "resolve_retry_policy",
    "next_backoff",
]

RETRY_ENV_VAR = "REPRO_MAX_RETRIES"

#: Retries per chunk when nothing overrides — small enough that a
#: deterministic failure still fails fast, big enough to ride out a
#: transient fault or a worker crash.
DEFAULT_MAX_RETRIES = 2


@dataclass(frozen=True)
class RetryPolicy:
    """Per-job chunk retry knobs.

    Attributes
    ----------
    max_retries:
        Retries allowed per chunk (0 = fail on first error).
    retry_budget:
        Total retries allowed across all chunks of one job
        (``None`` = unlimited; per-chunk cap still applies).
    backoff_s:
        Base sleep before the first retry.
    max_backoff_s:
        Clamp on any single backoff sleep.
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    retry_budget: Optional[int] = None
    backoff_s: float = 0.02
    max_backoff_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries!r}"
            )
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be >= 0, got {self.retry_budget!r}"
            )
        if self.backoff_s < 0 or self.max_backoff_s < self.backoff_s:
            raise ValueError(
                "need 0 <= backoff_s <= max_backoff_s, got "
                f"{self.backoff_s!r}/{self.max_backoff_s!r}"
            )


def next_backoff(policy: RetryPolicy, previous: float,
                 rng: random.Random) -> float:
    """Next decorrelated-jitter sleep given the previous one (0 initially)."""
    base = policy.backoff_s
    prev = previous if previous > 0 else base
    return min(policy.max_backoff_s, rng.uniform(base, max(base, prev * 3.0)))


def backoff_rng(seed: Optional[int], chunk_index: int,
                attempt: int) -> random.Random:
    """Jitter RNG seeded so retry *timing* replays deterministically."""
    return random.Random((seed or 0, chunk_index, attempt).__repr__())


def resolve_retry_policy(retry=None) -> Optional[RetryPolicy]:
    """Normalise the ``retry=`` argument accepted by ``execute()``.

    ``None``
        Defaults: ``$REPRO_MAX_RETRIES`` if set, else
        :data:`DEFAULT_MAX_RETRIES`.  ``REPRO_MAX_RETRIES=0`` disables.
    ``False`` or ``0``
        Retries off (chunk errors fail the job immediately, the
        pre-PR-10 behaviour).
    ``int``
        ``RetryPolicy(max_retries=...)``.
    ``dict``
        ``RetryPolicy(**retry)``.
    :class:`RetryPolicy`
        Used as-is.

    Returns ``None`` when retries are disabled.
    """
    if retry is None:
        env = os.environ.get(RETRY_ENV_VAR)
        if env is not None:
            try:
                count = int(env)
            except ValueError:
                raise ValueError(
                    f"${RETRY_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            count = DEFAULT_MAX_RETRIES
        return RetryPolicy(max_retries=count) if count > 0 else None
    if retry is False:
        return None
    if isinstance(retry, RetryPolicy):
        return retry if retry.max_retries > 0 else None
    if isinstance(retry, bool):  # True: explicit "defaults please"
        return RetryPolicy()
    if isinstance(retry, int):
        return RetryPolicy(max_retries=retry) if retry > 0 else None
    if isinstance(retry, dict):
        policy = RetryPolicy(**retry)
        return policy if policy.max_retries > 0 else None
    raise TypeError(
        "retry must be None, a bool, an int, a dict of RetryPolicy "
        f"fields, or a RetryPolicy, got {retry!r}"
    )
