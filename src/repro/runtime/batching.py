"""Job grouping: simulate a distribution once, resample per job.

The paper's sweeps repeatedly execute the *same* instrumented circuit —
across noise scales, shot counts and assertion points — so an N-job batch
frequently contains only a handful of distinct ``(circuit, backend)``
pairs.  :func:`plan_batches` groups jobs by
``(circuit.fingerprint(), backend identity)`` and assigns each member a
role:

``primary``
    The first job of a group; it actually executes on the backend.
``share``
    Identical ``(shots, seed)`` to the primary with a concrete seed: the
    backend is deterministic given a seed, so the primary's result *is*
    this job's result and is cloned without re-simulating.
``resample``
    Same distribution but different shots/seed, on a backend that reports
    exact probabilities (``returns_probabilities``): the primary's
    distribution is re-sampled with this job's own seeded generator,
    replaying the job's own chunk plan — bit-identical to what a dedicated
    (possibly chunked) ``backend.run`` schedule would have produced,
    because the engines draw counts as the first use of a fresh
    ``default_rng(seed)``.
``independent``
    Everything else (per-shot Monte-Carlo engines with a distinct seed):
    runs on its own, exactly as without batching.

Chunk-merge helpers for shot-sharded jobs also live here; chunk seeds are
spawned deterministically from the caller's seed so serial and parallel
chunked execution agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.results.counts import Counts, counts_from_probabilities
from repro.results.result import Result

#: Group key: (circuit fingerprint, backend object id).
GroupKey = Tuple[str, int]

ROLE_PRIMARY = "primary"
ROLE_SHARE = "share"
ROLE_RESAMPLE = "resample"
ROLE_INDEPENDENT = "independent"
#: Assigned by execute() when a would-be primary hits the cross-call
#: distribution cache (see :mod:`repro.runtime.distcache`): the job
#: re-samples the cached distribution instead of touching the backend.
ROLE_CACHED = "cached"


@dataclass
class JobPlan:
    """Planned execution for one circuit of a batch."""

    index: int
    role: str
    #: Index of the group primary this job derives from (itself for
    #: primaries and independents).
    source: int


@dataclass
class BatchPlan:
    """The dedupe plan for a whole batch.

    Attributes
    ----------
    jobs:
        One :class:`JobPlan` per input circuit, in input order.
    groups:
        ``group key -> member indices`` (diagnostics / tests).
    """

    jobs: List[JobPlan] = field(default_factory=list)
    groups: Dict[GroupKey, List[int]] = field(default_factory=dict)

    @property
    def num_executed(self) -> int:
        """Return how many jobs actually hit a backend."""
        return sum(1 for j in self.jobs if j.role in (ROLE_PRIMARY, ROLE_INDEPENDENT))


def plan_batches(
    circuits: Sequence,
    backends: Sequence,
    shots: Sequence[int],
    seeds: Sequence[Optional[int]],
    dedupe: bool = True,
) -> BatchPlan:
    """Group an aligned batch of job specs into a :class:`BatchPlan`."""
    plan = BatchPlan()
    primaries: Dict[GroupKey, int] = {}
    for index, (circuit, backend) in enumerate(zip(circuits, backends)):
        if not dedupe:
            plan.jobs.append(JobPlan(index, ROLE_INDEPENDENT, index))
            continue
        key: GroupKey = (circuit.fingerprint(), id(backend))
        plan.groups.setdefault(key, []).append(index)
        primary = primaries.get(key)
        if primary is None:
            primaries[key] = index
            plan.jobs.append(JobPlan(index, ROLE_PRIMARY, index))
        elif (
            shots[index] == shots[primary]
            and seeds[index] == seeds[primary]
            and seeds[index] is not None
        ):
            plan.jobs.append(JobPlan(index, ROLE_SHARE, primary))
        elif getattr(backend, "returns_probabilities", False):
            plan.jobs.append(JobPlan(index, ROLE_RESAMPLE, primary))
        else:
            plan.jobs.append(JobPlan(index, ROLE_INDEPENDENT, index))
    return plan


# ----------------------------------------------------------------------
# Deterministic shot sharding
# ----------------------------------------------------------------------


def split_shots(shots: int, chunk_shots: Optional[int]) -> List[int]:
    """Split ``shots`` into chunks of at most ``chunk_shots`` (``None`` = one)."""
    if shots < 0:
        raise ValueError(f"shots must be non-negative, got {shots}")
    if chunk_shots is None or chunk_shots >= shots or shots == 0:
        return [shots]
    if chunk_shots < 1:
        raise ValueError(f"chunk_shots must be positive, got {chunk_shots}")
    full, rest = divmod(shots, chunk_shots)
    return [chunk_shots] * full + ([rest] if rest else [])


def chunk_seed(seed: Optional[int], chunk_index: int) -> Optional[int]:
    """Derive a stable, independent sub-seed for one shot chunk.

    ``None`` stays ``None`` (unseeded runs stay unseeded); otherwise the
    chunk seed comes from ``np.random.SeedSequence`` spawning, so chunk
    streams are independent yet fully reproducible from the caller's seed
    regardless of scheduling order or worker count.
    """
    if seed is None:
        return None
    entropy = np.random.SeedSequence(entropy=seed, spawn_key=(chunk_index,))
    return int(entropy.generate_state(1, dtype=np.uint64)[0])


def merge_chunk_results(
    chunks: Sequence[Result], shots: int, seed: Optional[int]
) -> Result:
    """Merge per-chunk results (in chunk order) into one job result."""
    if not chunks:
        return Result(shots=shots)
    if len(chunks) == 1:
        return chunks[0]
    counts = Counts()
    for chunk in chunks:
        counts = counts.merged_with(chunk.counts)
    first = chunks[0]
    metadata = dict(first.metadata)
    metadata.update(
        seed=seed,
        chunks=len(chunks),
        chunk_seeds=[c.metadata.get("seed") for c in chunks],
    )
    return Result(
        counts=counts,
        shots=shots,
        statevector=first.statevector,
        probabilities=first.probabilities,
        metadata=metadata,
    )


# ----------------------------------------------------------------------
# Result derivation for deduplicated jobs
# ----------------------------------------------------------------------


def clone_result(source: Result, seed: Optional[int]) -> Result:
    """Return an independent copy of ``source`` for a ``share`` job."""
    metadata = dict(source.metadata)
    metadata["seed"] = seed
    return Result(
        counts=Counts(dict(source.counts)),
        shots=source.shots,
        statevector=source.statevector,
        probabilities=dict(source.probabilities) if source.probabilities else None,
        metadata=metadata,
    )


def resample_result(
    source: Result, shots: int, seed: Optional[int]
) -> Optional[Result]:
    """Re-sample a primary's exact distribution for a ``resample`` job.

    Returns ``None`` when the primary carries no exact distribution (e.g.
    the statevector engine fell back to per-shot mode); the caller must
    then execute the job independently.
    """
    if source.probabilities is None:
        return None
    rng = np.random.default_rng(seed)
    counts = counts_from_probabilities(source.probabilities, shots, rng)
    metadata = dict(source.metadata)
    metadata.update(seed=seed, resampled=True)
    return Result(
        counts=counts,
        shots=shots,
        statevector=source.statevector,
        probabilities=dict(source.probabilities),
        metadata=metadata,
    )
