"""Backend registry: named lookup instead of ad-hoc constructor calls.

Experiments, benchmarks and user code name backends by spec string::

    get_backend("statevector")            # ideal engines
    get_backend("density_matrix")
    get_backend("stabilizer")
    get_backend("noisy:ibmqx4")           # device-model backends
    get_backend("trajectory:ibmqx4", noise_scale=2.0)

Device-model specs are ``<family>:<device>`` where ``<family>`` is
``noisy`` (density-matrix engine) or ``trajectory`` (Monte-Carlo engine)
and ``<device>`` is a registered device factory.  Keyword options are
forwarded to the backend constructor (``noise_scale``, ``layout``,
``transpile``, ``cache`` ...).

Both registries are extensible at runtime via :func:`register_backend` /
:func:`register_device`, so downstream code can plug in new engines without
touching this module.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from repro.devices.backend import (
    Backend,
    DensityMatrixBackend,
    NoisyDeviceBackend,
    StabilizerBackend,
    StatevectorBackend,
    TrajectoryDeviceBackend,
)
from repro.devices.generic import fully_connected_device, grid_device, linear_device
from repro.devices.ibmqx4 import ibmqx4
from repro.exceptions import ProviderError

BackendFactory = Callable[..., Backend]
DeviceFactory = Callable[[], "object"]

#: Simple (device-free) backend factories, keyed by spec name.
_BACKEND_FACTORIES: Dict[str, BackendFactory] = {
    "statevector": StatevectorBackend,
    "density_matrix": DensityMatrixBackend,
    "stabilizer": StabilizerBackend,
}

#: Device-model families usable as ``<family>:<device>``.
_DEVICE_BACKEND_FAMILIES: Dict[str, BackendFactory] = {
    "noisy": NoisyDeviceBackend,
    "trajectory": TrajectoryDeviceBackend,
}

#: Named device factories for the ``<family>:<device>`` form.
_DEVICE_FACTORIES: Dict[str, DeviceFactory] = {
    "ibmqx4": ibmqx4,
    "linear5": lambda: linear_device(5),
    "grid9": lambda: grid_device(3, 3),
    "full5": lambda: fully_connected_device(5),
}


def register_backend(
    name: str, factory: BackendFactory, overwrite: bool = False
) -> None:
    """Register a device-free backend factory under ``name``."""
    if ":" in name:
        raise ProviderError(f"backend name {name!r} must not contain ':'")
    if name in _BACKEND_FACTORIES and not overwrite:
        raise ProviderError(f"backend {name!r} is already registered")
    _BACKEND_FACTORIES[name] = factory


def register_device(
    name: str, factory: DeviceFactory, overwrite: bool = False
) -> None:
    """Register a device factory for the ``<family>:<device>`` spec form."""
    if ":" in name:
        raise ProviderError(f"device name {name!r} must not contain ':'")
    if name in _DEVICE_FACTORIES and not overwrite:
        raise ProviderError(f"device {name!r} is already registered")
    _DEVICE_FACTORIES[name] = factory


def list_backends() -> List[str]:
    """Return every valid spec string (device forms fully expanded)."""
    specs = list(_BACKEND_FACTORIES)
    for family in _DEVICE_BACKEND_FAMILIES:
        specs.extend(f"{family}:{device}" for device in _DEVICE_FACTORIES)
    return sorted(specs)


def _spec_forms() -> str:
    """Describe the valid spec grammar with the live registry contents.

    Shared by every lookup error so a failed ``get_backend("densitymatrix")``
    or ``get_backend("noisy-ibmqx4")`` tells the caller both *what the
    registered names are* and *what shape a spec takes*, instead of a bare
    rejection.
    """
    return (
        "valid spec forms: '<backend>' with backend in "
        f"{sorted(_BACKEND_FACTORIES)}, or '<family>:<device>' with family in "
        f"{sorted(_DEVICE_BACKEND_FAMILIES)} and device in "
        f"{sorted(_DEVICE_FACTORIES)}"
    )


def get_backend(spec: str, **options) -> Backend:
    """Instantiate a backend from its spec string.

    Parameters
    ----------
    spec:
        A name from :func:`list_backends`.
    **options:
        Forwarded to the backend constructor (e.g. ``noise_scale=2.0``,
        ``layout=Layout(...)``, ``transpile=False``).

    Raises
    ------
    ProviderError
        On an unknown spec or malformed device form; the message always
        lists the registered providers and the valid spec forms.
    """
    if not isinstance(spec, str) or not spec:
        raise ProviderError(
            f"backend spec must be a non-empty string, got {spec!r}; "
            f"{_spec_forms()}"
        )
    if ":" not in spec:
        factory = _BACKEND_FACTORIES.get(spec)
        if factory is None:
            raise ProviderError(
                f"unknown backend {spec!r}; registered specs: {list_backends()}; "
                f"{_spec_forms()}"
            )
        return factory(**options)
    family, _, device_name = spec.partition(":")
    backend_factory = _DEVICE_BACKEND_FAMILIES.get(family)
    if backend_factory is None:
        raise ProviderError(
            f"unknown backend family {family!r} in {spec!r}; registered "
            f"families: {sorted(_DEVICE_BACKEND_FAMILIES)}; {_spec_forms()}"
        )
    device_factory = _DEVICE_FACTORIES.get(device_name)
    if device_factory is None:
        raise ProviderError(
            f"unknown device {device_name!r} in {spec!r}; registered "
            f"devices: {sorted(_DEVICE_FACTORIES)}; {_spec_forms()}"
        )
    return backend_factory(device_factory(), **options)


def resolve_backend(backend: Union[str, Backend], **options) -> Backend:
    """Return ``backend`` itself, or look a spec string up via the registry."""
    if isinstance(backend, Backend):
        if options:
            raise ProviderError(
                "backend options are only valid with a spec string, "
                f"not a {type(backend).__name__} instance"
            )
        return backend
    return get_backend(backend, **options)
