"""Coupling maps: which qubit pairs support a native CX, and in which
direction.

``ibmqx4``'s CNOTs are *directed* (cross-resonance gates have a fixed
control/target orientation), which is why the paper had to pick q2 as the
ancilla for the Table 1 experiment.  The transpiler uses this class for
layout, routing and direction fixing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import DeviceError


class CouplingMap:
    """A directed graph of native two-qubit interactions.

    Parameters
    ----------
    edges:
        Iterable of ``(control, target)`` pairs.
    num_qubits:
        Total device size; inferred from the edges when omitted.
    """

    def __init__(
        self,
        edges: Iterable[Tuple[int, int]],
        num_qubits: Optional[int] = None,
    ) -> None:
        edge_list = [(int(a), int(b)) for a, b in edges]
        for a, b in edge_list:
            if a == b:
                raise DeviceError(f"self-loop edge ({a}, {b}) is not allowed")
            if a < 0 or b < 0:
                raise DeviceError(f"negative qubit index in edge ({a}, {b})")
        inferred = 1 + max((max(a, b) for a, b in edge_list), default=-1)
        self.num_qubits = num_qubits if num_qubits is not None else inferred
        if self.num_qubits < inferred:
            raise DeviceError(
                f"num_qubits={num_qubits} is smaller than the largest edge index"
            )
        self._directed = nx.DiGraph()
        self._directed.add_nodes_from(range(self.num_qubits))
        self._directed.add_edges_from(edge_list)
        self._undirected = self._directed.to_undirected(as_view=False)

    # ------------------------------------------------------------------

    @property
    def directed_edges(self) -> List[Tuple[int, int]]:
        """Return the native ``(control, target)`` pairs."""
        return sorted(self._directed.edges())

    @property
    def undirected_edges(self) -> List[Tuple[int, int]]:
        """Return connected pairs regardless of direction."""
        return sorted(tuple(sorted(e)) for e in self._undirected.edges())

    def supports(self, control: int, target: int) -> bool:
        """Return True if a native CX exists with this exact orientation."""
        return self._directed.has_edge(control, target)

    def connected(self, a: int, b: int) -> bool:
        """Return True if the pair interacts in either direction."""
        return self._undirected.has_edge(a, b)

    def neighbors(self, qubit: int) -> List[int]:
        """Return qubits connected to ``qubit`` (either direction)."""
        self._check(qubit)
        return sorted(self._undirected.neighbors(qubit))

    def distance(self, a: int, b: int) -> int:
        """Return the undirected shortest-path distance between two qubits."""
        self._check(a)
        self._check(b)
        try:
            return nx.shortest_path_length(self._undirected, a, b)
        except nx.NetworkXNoPath:
            raise DeviceError(f"qubits {a} and {b} are disconnected") from None

    def shortest_path(self, a: int, b: int) -> List[int]:
        """Return an undirected shortest path between two qubits."""
        self._check(a)
        self._check(b)
        try:
            return nx.shortest_path(self._undirected, a, b)
        except nx.NetworkXNoPath:
            raise DeviceError(f"qubits {a} and {b} are disconnected") from None

    def is_connected(self) -> bool:
        """Return True if every qubit can reach every other."""
        if self.num_qubits <= 1:
            return True
        return nx.is_connected(self._undirected)

    def distance_matrix(self) -> Dict[Tuple[int, int], int]:
        """Return all-pairs undirected distances."""
        out: Dict[Tuple[int, int], int] = {}
        for source, lengths in nx.all_pairs_shortest_path_length(self._undirected):
            for target, dist in lengths.items():
                out[(source, target)] = dist
        return out

    def _check(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise DeviceError(
                f"qubit {qubit} out of range for a {self.num_qubits}-qubit device"
            )

    def __repr__(self) -> str:
        return (
            f"CouplingMap(num_qubits={self.num_qubits}, "
            f"edges={self.directed_edges})"
        )
