"""Calibration data: per-qubit coherence/readout and per-gate error/duration.

These records mirror the fields IBM published for its early devices and feed
:meth:`DeviceModel.noise_model`, which turns them into Kraus channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import DeviceError


@dataclass(frozen=True)
class QubitCalibration:
    """Calibration of one physical qubit.

    Attributes
    ----------
    t1, t2:
        Relaxation / dephasing times in nanoseconds (``t2 <= 2 t1``).
    readout_p0_given_1:
        Probability of recording 0 when the qubit was 1.
    readout_p1_given_0:
        Probability of recording 1 when the qubit was 0.
    frequency_ghz:
        Qubit transition frequency (informational).
    """

    t1: float
    t2: float
    readout_p0_given_1: float
    readout_p1_given_0: float
    frequency_ghz: float = 5.0

    def __post_init__(self) -> None:
        if self.t1 <= 0 or self.t2 <= 0:
            raise DeviceError("T1 and T2 must be positive")
        if self.t2 > 2 * self.t1 + 1e-9:
            raise DeviceError(
                f"T2={self.t2} exceeds the physical bound 2*T1={2 * self.t1}"
            )
        for p in (self.readout_p0_given_1, self.readout_p1_given_0):
            if not 0.0 <= p <= 1.0:
                raise DeviceError(f"readout probability {p} outside [0, 1]")

    @property
    def readout_error_rate(self) -> float:
        """Return the average misassignment probability."""
        return 0.5 * (self.readout_p0_given_1 + self.readout_p1_given_0)


@dataclass(frozen=True)
class GateCalibration:
    """Calibration of one native gate.

    Attributes
    ----------
    name:
        Gate name (``"u2"``, ``"u3"``, ``"cx"``...).
    qubits:
        Physical qubit tuple, in operand order.
    error_rate:
        Depolarizing-equivalent error probability (randomized-benchmarking
        style number).
    duration_ns:
        Gate duration; drives thermal-relaxation noise.
    """

    name: str
    qubits: Tuple[int, ...]
    error_rate: float
    duration_ns: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise DeviceError(f"error rate {self.error_rate} outside [0, 1]")
        if self.duration_ns < 0:
            raise DeviceError("gate duration must be non-negative")
        object.__setattr__(self, "name", self.name.lower())
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
