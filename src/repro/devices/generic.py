"""Generic parametric device models (linear chain, grid, all-to-all).

Used by the scaling and noise-sweep ablations to study the assertion
circuits on topologies beyond the 5-qubit ibmqx4.
"""

from __future__ import annotations

from typing import Tuple

from repro.devices.calibration import GateCalibration, QubitCalibration
from repro.devices.device import DeviceModel
from repro.devices.topology import CouplingMap
from repro.exceptions import DeviceError

_DEFAULT_QUBIT = dict(
    t1=60_000.0,
    t2=50_000.0,
    readout_p0_given_1=0.03,
    readout_p1_given_0=0.015,
)


def _default_calibrations(
    num_qubits: int,
    edges: Tuple[Tuple[int, int], ...],
    single_qubit_error: float,
    cx_error: float,
) -> Tuple[Tuple[QubitCalibration, ...], Tuple[GateCalibration, ...]]:
    qubits = tuple(QubitCalibration(**_DEFAULT_QUBIT) for _ in range(num_qubits))
    gates = []
    for q in range(num_qubits):
        for name in ("u1", "u2", "u3"):
            error = 0.0 if name == "u1" else single_qubit_error
            duration = 0.0 if name == "u1" else 50.0
            gates.append(GateCalibration(name, (q,), error, duration))
    for edge in edges:
        gates.append(GateCalibration("cx", edge, cx_error, 300.0))
    return qubits, tuple(gates)


def linear_device(
    num_qubits: int,
    single_qubit_error: float = 5e-4,
    cx_error: float = 1e-2,
    name: str = "",
) -> DeviceModel:
    """Return a linear-chain device with bidirectional CX edges."""
    if num_qubits < 2:
        raise DeviceError("a linear device needs at least 2 qubits")
    edges = tuple(
        edge
        for q in range(num_qubits - 1)
        for edge in ((q, q + 1), (q + 1, q))
    )
    coupling = CouplingMap(edges, num_qubits=num_qubits)
    qubits, gates = _default_calibrations(
        num_qubits, edges, single_qubit_error, cx_error
    )
    return DeviceModel(
        name=name or f"linear_{num_qubits}",
        coupling_map=coupling,
        basis_gates=("u1", "u2", "u3", "cx"),
        qubit_calibrations=qubits,
        gate_calibrations=gates,
    )


def grid_device(
    rows: int,
    cols: int,
    single_qubit_error: float = 5e-4,
    cx_error: float = 1e-2,
    name: str = "",
) -> DeviceModel:
    """Return a ``rows x cols`` nearest-neighbour grid device."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise DeviceError("grid must contain at least 2 qubits")
    num_qubits = rows * cols

    def index(r: int, c: int) -> int:
        return r * cols + c

    edge_set = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edge_set += [(index(r, c), index(r, c + 1)), (index(r, c + 1), index(r, c))]
            if r + 1 < rows:
                edge_set += [(index(r, c), index(r + 1, c)), (index(r + 1, c), index(r, c))]
    edges = tuple(edge_set)
    coupling = CouplingMap(edges, num_qubits=num_qubits)
    qubits, gates = _default_calibrations(
        num_qubits, edges, single_qubit_error, cx_error
    )
    return DeviceModel(
        name=name or f"grid_{rows}x{cols}",
        coupling_map=coupling,
        basis_gates=("u1", "u2", "u3", "cx"),
        qubit_calibrations=qubits,
        gate_calibrations=gates,
    )


def fully_connected_device(
    num_qubits: int,
    single_qubit_error: float = 5e-4,
    cx_error: float = 1e-2,
    name: str = "",
) -> DeviceModel:
    """Return an all-to-all device (routing-free baseline)."""
    if num_qubits < 2:
        raise DeviceError("need at least 2 qubits")
    edges = tuple(
        (a, b) for a in range(num_qubits) for b in range(num_qubits) if a != b
    )
    coupling = CouplingMap(edges, num_qubits=num_qubits)
    qubits, gates = _default_calibrations(
        num_qubits, edges, single_qubit_error, cx_error
    )
    return DeviceModel(
        name=name or f"full_{num_qubits}",
        coupling_map=coupling,
        basis_gates=("u1", "u2", "u3", "cx"),
        qubit_calibrations=qubits,
        gate_calibrations=gates,
    )
