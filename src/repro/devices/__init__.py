"""Device models and execution backends.

The paper's hardware experiments ran on the 5-qubit IBM Q ``ibmqx4`` machine;
:func:`~repro.devices.ibmqx4.ibmqx4` rebuilds that device as a
:class:`DeviceModel` (directed coupling map + historical calibration data),
and :class:`NoisyDeviceBackend` executes circuits against it through the
transpiler and the density-matrix engine.
"""

from repro.devices.topology import CouplingMap
from repro.devices.calibration import GateCalibration, QubitCalibration
from repro.devices.device import DeviceModel
from repro.devices.ibmqx4 import ibmqx4
from repro.devices.generic import linear_device, grid_device, fully_connected_device
from repro.devices.backend import (
    Backend,
    DensityMatrixBackend,
    DeviceBackend,
    NoisyDeviceBackend,
    StabilizerBackend,
    StatevectorBackend,
    TrajectoryDeviceBackend,
)

__all__ = [
    "Backend",
    "CouplingMap",
    "DensityMatrixBackend",
    "DeviceBackend",
    "DeviceModel",
    "GateCalibration",
    "NoisyDeviceBackend",
    "QubitCalibration",
    "StabilizerBackend",
    "StatevectorBackend",
    "TrajectoryDeviceBackend",
    "fully_connected_device",
    "grid_device",
    "ibmqx4",
    "linear_device",
]
