"""The :class:`DeviceModel`: topology + basis gates + calibration.

A device model is a declarative description; :meth:`DeviceModel.noise_model`
compiles its calibration into a :class:`~repro.noise.model.NoiseModel` of
depolarizing + thermal-relaxation channels and readout confusion matrices,
which the noisy backends feed to the simulation engines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.devices.calibration import GateCalibration, QubitCalibration
from repro.devices.topology import CouplingMap
from repro.exceptions import DeviceError
from repro.noise.channels import (
    depolarizing,
    thermal_relaxation,
    two_qubit_depolarizing,
)
from repro.noise.model import NoiseModel
from repro.noise.readout import ReadoutError


class DeviceModel:
    """A quantum device: size, connectivity, native gates, calibration.

    Parameters
    ----------
    name:
        Device name (e.g. ``"ibmqx4"``).
    coupling_map:
        Directed native-CX connectivity.
    basis_gates:
        Lower-case native gate names (single-qubit ones plus ``"cx"``).
    qubit_calibrations:
        One :class:`QubitCalibration` per physical qubit.
    gate_calibrations:
        Error/duration records; 1-qubit records may use an empty qubit tuple
        to serve as the device-wide default.
    """

    def __init__(
        self,
        name: str,
        coupling_map: CouplingMap,
        basis_gates: Sequence[str],
        qubit_calibrations: Sequence[QubitCalibration],
        gate_calibrations: Sequence[GateCalibration] = (),
    ) -> None:
        self.name = name
        self.coupling_map = coupling_map
        self.basis_gates = tuple(g.lower() for g in basis_gates)
        if len(qubit_calibrations) != coupling_map.num_qubits:
            raise DeviceError(
                f"{len(qubit_calibrations)} qubit calibrations for a "
                f"{coupling_map.num_qubits}-qubit coupling map"
            )
        self.qubit_calibrations = tuple(qubit_calibrations)
        self.gate_calibrations = tuple(gate_calibrations)
        self._calibration_index: Dict[Tuple[str, Tuple[int, ...]], GateCalibration] = {
            (cal.name, cal.qubits): cal for cal in gate_calibrations
        }

    # ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Return the device size."""
        return self.coupling_map.num_qubits

    def gate_calibration(
        self, name: str, qubits: Sequence[int]
    ) -> Optional[GateCalibration]:
        """Return the calibration for a gate instance (or its default)."""
        key = (name.lower(), tuple(int(q) for q in qubits))
        if key in self._calibration_index:
            return self._calibration_index[key]
        return self._calibration_index.get((name.lower(), ()))

    def noise_model(self, scale: float = 1.0) -> NoiseModel:
        """Compile the calibration into a :class:`NoiseModel`.

        Parameters
        ----------
        scale:
            Multiplier on every error rate and readout flip probability —
            the knob used by the noise-sweep ablation (DESIGN.md A4).
            ``scale=0`` yields an ideal model.
        """
        if scale < 0:
            raise DeviceError("noise scale must be non-negative")
        model = NoiseModel(name=f"{self.name}(x{scale:g})")
        if scale == 0:
            return model
        for cal in self.gate_calibrations:
            rate = min(1.0, cal.error_rate * scale)
            if cal.name == "cx" or len(cal.qubits) == 2:
                channel = two_qubit_depolarizing(rate)
            else:
                channel = depolarizing(rate)
            if cal.qubits:
                model.add_gate_error(cal.name, cal.qubits, channel)
                self._attach_relaxation(model, cal, scale)
            else:
                model.add_all_qubit_gate_error([cal.name], channel)
        for qubit, qcal in enumerate(self.qubit_calibrations):
            model.add_readout_error(
                ReadoutError(
                    min(1.0, qcal.readout_p0_given_1 * scale),
                    min(1.0, qcal.readout_p1_given_0 * scale),
                ),
                qubit=qubit,
            )
        return model

    def _attach_relaxation(
        self, model: NoiseModel, cal: GateCalibration, scale: float
    ) -> None:
        """Attach per-qubit thermal relaxation for the gate's duration."""
        if cal.duration_ns <= 0:
            return
        for qubit in cal.qubits:
            qcal = self.qubit_calibrations[qubit]
            channel = thermal_relaxation(
                qcal.t1 / max(scale, 1e-9),
                qcal.t2 / max(scale, 1e-9),
                cal.duration_ns,
            )
            model.add_gate_error(cal.name, cal.qubits, _one_qubit_on(channel, qubit, cal.qubits))
        return

    def average_cx_error(self) -> float:
        """Return the mean calibrated CX error rate (reporting helper)."""
        rates = [c.error_rate for c in self.gate_calibrations if c.name == "cx"]
        if not rates:
            return 0.0
        return sum(rates) / len(rates)

    def __repr__(self) -> str:
        return (
            f"DeviceModel({self.name!r}, num_qubits={self.num_qubits}, "
            f"basis_gates={list(self.basis_gates)})"
        )


def _one_qubit_on(channel, qubit: int, gate_qubits: Tuple[int, ...]):
    """Lift a 1-qubit channel so NoiseModel maps it onto one operand only.

    ``NoiseModel.add_gate_error`` applies a 1-qubit channel to *every*
    operand; to target a single operand we expand the channel with identity
    Kraus factors into a full-arity channel.
    """
    import numpy as np

    from repro.noise.channels import KrausChannel

    position = gate_qubits.index(qubit)
    ops = []
    for k_op in channel.operators:
        factors = []
        for i in range(len(gate_qubits)):
            factors.append(k_op if i == position else np.eye(2, dtype=complex))
        full = factors[0]
        for factor in factors[1:]:
            full = np.kron(full, factor)
        ops.append(full)
    return KrausChannel(ops, name=f"{channel.name}@q{qubit}")
