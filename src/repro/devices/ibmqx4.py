"""The IBM Q 5-qubit ``ibmqx4`` (Tenerife) device model.

This is the machine the paper ran its hardware experiments on (§4).  The
coupling map is the documented bow-tie with **directed** CX edges:

    q1 -> q0,  q2 -> q0,  q2 -> q1,  q3 -> q2,  q3 -> q4,  q2 -> q4

Calibration values are representative of the device's published 2018/2019
calibration snapshots: single-qubit gate errors around 1e-3, CX errors of
2-4e-2, readout misassignment of 3-8 %, T1/T2 in the tens of microseconds.
We cannot reproduce the exact drift of the authors' session; the experiments
only require the right noise *regime* (readout error dominating a 1-CX
circuit, CX error dominating the Bell-pair circuit), which these numbers put
us in.
"""

from __future__ import annotations

from repro.devices.calibration import GateCalibration, QubitCalibration
from repro.devices.device import DeviceModel
from repro.devices.topology import CouplingMap

#: Directed native CX orientation of ibmqx4 (control -> target).
IBMQX4_EDGES = ((1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (2, 4))

#: Microseconds -> nanoseconds.
_US = 1000.0

# Representative per-qubit calibration (T1/T2 in ns, readout flips).
_QUBITS = (
    QubitCalibration(t1=50.0 * _US, t2=40.0 * _US,
                     readout_p0_given_1=0.055, readout_p1_given_0=0.025,
                     frequency_ghz=5.25),
    QubitCalibration(t1=45.0 * _US, t2=20.0 * _US,
                     readout_p0_given_1=0.050, readout_p1_given_0=0.020,
                     frequency_ghz=5.30),
    QubitCalibration(t1=55.0 * _US, t2=45.0 * _US,
                     readout_p0_given_1=0.045, readout_p1_given_0=0.020,
                     frequency_ghz=5.35),
    QubitCalibration(t1=40.0 * _US, t2=30.0 * _US,
                     readout_p0_given_1=0.070, readout_p1_given_0=0.030,
                     frequency_ghz=5.43),
    QubitCalibration(t1=45.0 * _US, t2=35.0 * _US,
                     readout_p0_given_1=0.060, readout_p1_given_0=0.030,
                     frequency_ghz=5.18),
)

_SINGLE_QUBIT_ERROR = (1.2e-3, 1.5e-3, 1.0e-3, 2.0e-3, 1.6e-3)
_SINGLE_QUBIT_DURATION_NS = 100.0

_CX_ERROR = {
    (1, 0): 0.030,
    (2, 0): 0.028,
    (2, 1): 0.032,
    (3, 2): 0.038,
    (3, 4): 0.035,
    (2, 4): 0.030,
}
_CX_DURATION_NS = 350.0


def ibmqx4() -> DeviceModel:
    """Return the ``ibmqx4`` device model with representative calibration."""
    gate_calibrations = []
    for qubit, rate in enumerate(_SINGLE_QUBIT_ERROR):
        for name in ("u1", "u2", "u3"):
            # u1 is a virtual frame change: error-free and instantaneous.
            error = 0.0 if name == "u1" else rate
            duration = 0.0 if name == "u1" else _SINGLE_QUBIT_DURATION_NS
            gate_calibrations.append(
                GateCalibration(name=name, qubits=(qubit,), error_rate=error,
                                duration_ns=duration)
            )
    for edge, rate in _CX_ERROR.items():
        gate_calibrations.append(
            GateCalibration(name="cx", qubits=edge, error_rate=rate,
                            duration_ns=_CX_DURATION_NS)
        )
    return DeviceModel(
        name="ibmqx4",
        coupling_map=CouplingMap(IBMQX4_EDGES, num_qubits=5),
        basis_gates=("u1", "u2", "u3", "cx"),
        qubit_calibrations=_QUBITS,
        gate_calibrations=gate_calibrations,
    )
