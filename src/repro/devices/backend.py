"""Execution backends: the ``run(circuit, shots) -> Result`` abstraction.

Backends bundle an engine with (optionally) a device model and the
transpiler, so experiments can be written once and pointed at an ideal
simulator or a noisy device model interchangeably — the same way the paper's
experiments moved between QUIRK and IBM Q.

For batch workloads, prefer going through :mod:`repro.runtime`:
``repro.runtime.execute`` fans circuits and shot chunks out over a thread
pool, deduplicates identical jobs, and resolves backends by name via
``repro.runtime.get_backend`` (e.g. ``"noisy:ibmqx4"``).  Device-model
backends transparently memoise their transpile step through the runtime's
fingerprint-keyed :class:`~repro.runtime.cache.TranspileCache`.
"""

from __future__ import annotations

from typing import Optional

from repro.circuits.circuit import QuantumCircuit
from repro.devices.device import DeviceModel
from repro.exceptions import DeviceError
from repro.results.result import Result
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.simulators.stabilizer import StabilizerSimulator
from repro.simulators.statevector import StatevectorSimulator


class Backend:
    """Abstract backend interface."""

    name = "abstract"

    #: ``True`` when :meth:`run` results carry the exact outcome
    #: distribution in ``result.probabilities`` (lets the runtime's
    #: batching layer re-sample counts instead of re-simulating).
    returns_probabilities = False

    #: ``True`` when the engine simulates its shots along a NumPy batch
    #: axis (GIL-releasing kernels): the runtime then prefers thread
    #: fan-out and fatter shot chunks over process pools (see
    #: :mod:`repro.runtime.scheduler`).  Purely a throughput hint — it
    #: never affects counts.
    vectorized_shots = False

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        seed: Optional[int] = None,
    ) -> Result:
        """Execute ``circuit`` for ``shots`` shots."""
        raise NotImplementedError

    def content_fingerprint(self) -> Optional[str]:
        """Return a content hash of everything the output distribution
        depends on, or ``None`` when the backend cannot describe itself.

        The runtime's cross-call
        :class:`~repro.runtime.distcache.DistributionCache` keys entries on
        this value, so two instances must share a fingerprint iff they
        would produce identical distributions for every circuit.  The
        conservative default (``None``) opts a backend out of cross-call
        caching entirely — correct for arbitrary user subclasses, which may
        hide mutable state.
        """
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class StatevectorBackend(Backend):
    """Ideal pure-state backend (the "QUIRK" role).

    ``method``/``max_batch`` steer the post-``max_branches`` per-shot
    fallback (see :class:`~repro.simulators.statevector.StatevectorSimulator`);
    they are pure throughput knobs — fallback counts are bit-identical
    across both for a fixed seed — so they stay out of the content
    fingerprint.
    """

    name = "statevector"
    returns_probabilities = True

    def __init__(
        self,
        max_branches: int = 4096,
        method: str = "auto",
        max_batch: Optional[int] = None,
    ) -> None:
        from repro.simulators import _batched

        self.max_branches = max_branches
        self.method = method
        self.max_batch = (
            _batched.DEFAULT_MAX_BATCH if max_batch is None else max_batch
        )
        self._simulator = StatevectorSimulator(
            max_branches=max_branches, method=method, max_batch=self.max_batch
        )

    def run(self, circuit, shots=1024, seed=None):
        return self._simulator.run(circuit, shots=shots, seed=seed)

    def content_fingerprint(self):
        # max_branches decides when the engine falls back to per-shot mode
        # (no exact distribution), so it participates.
        return f"statevector|branches={self.max_branches}"


class DensityMatrixBackend(Backend):
    """Ideal mixed-state backend (exact distributions)."""

    name = "density_matrix"
    returns_probabilities = True

    def __init__(self, max_branches: int = 4096) -> None:
        self.max_branches = max_branches
        self._simulator = DensityMatrixSimulator(max_branches=max_branches)

    def run(self, circuit, shots=1024, seed=None):
        return self._simulator.run(circuit, shots=shots, seed=seed)

    def content_fingerprint(self):
        return f"density_matrix|branches={self.max_branches}"


class StabilizerBackend(Backend):
    """Clifford-only backend for large-qubit-count runs."""

    name = "stabilizer"

    def __init__(self) -> None:
        self._simulator = StabilizerSimulator()

    def run(self, circuit, shots=1024, seed=None):
        return self._simulator.run(circuit, shots=shots, seed=seed)

    def content_fingerprint(self):
        # Stateless engine; the fingerprint exists for completeness (the
        # distribution cache never stores per-shot backends anyway).
        return "stabilizer"


class DeviceBackend(Backend):
    """Shared base for backends that lower circuits to a device model.

    Subclasses provide the engine via :meth:`_make_simulator`; qubit-count
    validation, (cached) transpilation and result metadata stamping are
    handled here once.

    Parameters
    ----------
    device:
        The :class:`DeviceModel` to emulate.
    noise_scale:
        Multiplier on all calibrated error rates (1.0 = nominal; 0 = ideal).
    transpile:
        Set ``False`` if circuits are already in device-native form with
        physical qubit indices.
    layout:
        Pin the virtual->physical placement instead of selecting one (the
        Table 1/2 reproductions pin the paper's published qubit choices).
    cache:
        Transpile cache policy: ``None`` (default) shares the process-wide
        :data:`repro.runtime.cache.DEFAULT_CACHE` (which persists across
        processes when ``$REPRO_CACHE_DIR`` is set); a
        :class:`~repro.runtime.cache.TranspileCache` instance uses that
        cache; ``False`` disables caching entirely.
    """

    _family = "device"

    def __init__(
        self,
        device: DeviceModel,
        noise_scale: float = 1.0,
        transpile: bool = True,
        layout=None,
        cache=None,
    ) -> None:
        self.device = device
        self.noise_scale = noise_scale
        self.transpile = transpile
        self.layout = layout
        self.cache = cache
        self.name = f"{self._family}({device.name})"
        self._noise_model = device.noise_model(scale=noise_scale)
        self._simulator = self._make_simulator()

    def _make_simulator(self):
        raise NotImplementedError

    @property
    def noise_model(self):
        """Return the compiled noise model (shared with the engine)."""
        return self._noise_model

    def prepare(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Return the circuit as it would execute (transpiled if enabled).

        Transpilation goes through the runtime's fingerprint-keyed cache,
        so sweeps that re-run an identical circuit (any shots, seed or
        noise scale) lower it exactly once per ``(circuit, device,
        layout)``.
        """
        if circuit.num_qubits > self.device.num_qubits:
            raise DeviceError(
                f"circuit needs {circuit.num_qubits} qubits but "
                f"{self.device.name} has {self.device.num_qubits}"
            )
        if not self.transpile:
            return circuit
        if self.cache is False:
            from repro.transpiler import transpile_for_device

            return transpile_for_device(circuit, self.device, layout=self.layout)
        from repro.runtime.cache import transpile_cached

        return transpile_cached(
            circuit,
            self.device,
            layout=self.layout,
            cache=self.cache,
        )

    def run(self, circuit, shots=1024, seed=None):
        executed = self.prepare(circuit)
        result = self._simulator.run(executed, shots=shots, seed=seed)
        result.metadata["device"] = self.device.name
        result.metadata["noise_scale"] = self.noise_scale
        result.metadata["transpiled_ops"] = executed.count_ops()
        return result

    def content_fingerprint(self):
        """Device calibration, noise scale, transpile flag and layout all
        shape the output distribution, so all participate in the hash."""
        from repro.runtime.cache import device_fingerprint

        layout_key = (
            None if self.layout is None else tuple(self.layout.virtual_to_physical)
        )
        return (
            f"{self._family}|{device_fingerprint(self.device)}"
            f"|scale={self.noise_scale!r}|transpile={self.transpile}"
            f"|layout={layout_key}"
        )


class NoisyDeviceBackend(DeviceBackend):
    """Transpile to a device and execute on the density-matrix engine.

    This backend plays the role of the IBM Q machine in the paper's §4:
    circuits are lowered to the device's basis gates and coupling
    constraints, then evolved under the calibrated noise model, and the
    returned counts are multinomial samples of the exact noisy distribution.
    """

    _family = "noisy"
    returns_probabilities = True

    def _make_simulator(self):
        return DensityMatrixSimulator(noise_model=self._noise_model)


class TrajectoryDeviceBackend(DeviceBackend):
    """Monte-Carlo noisy backend (scales past the density-matrix engine).

    Extra parameters (on top of :class:`DeviceBackend`):

    method / max_batch:
        Forwarded to :class:`~repro.noise.trajectories.TrajectorySimulator`:
        ``"batched"`` (the ``"auto"`` default resolves to it for device
        noise models) simulates whole shot tiles along a NumPy batch axis,
        ``"loop"`` keeps the per-shot walker.  Counts are bit-identical
        across methods and tilings for a fixed seed, so both are pure
        throughput knobs; the runtime's cost model still profiles them
        separately (see :data:`cost_tag`).
    """

    _family = "trajectory"

    def __init__(
        self,
        device: DeviceModel,
        noise_scale: float = 1.0,
        transpile: bool = True,
        layout=None,
        cache=None,
        method: str = "auto",
        max_batch: Optional[int] = None,
    ) -> None:
        from repro.simulators import _batched

        self.method = method
        self.max_batch = (
            _batched.DEFAULT_MAX_BATCH if max_batch is None else max_batch
        )
        super().__init__(
            device,
            noise_scale=noise_scale,
            transpile=transpile,
            layout=layout,
            cache=cache,
        )

    def _make_simulator(self):
        from repro.noise.trajectories import TrajectorySimulator

        return TrajectorySimulator(
            noise_model=self._noise_model,
            method=self.method,
            max_batch=self.max_batch,
        )

    @property
    def resolved_method(self) -> str:
        """Return the concrete execution path (``"batched"`` or ``"loop"``)."""
        from repro.simulators import _batched

        return _batched.resolve_method(self.method, self._noise_model)

    @property
    def vectorized_shots(self) -> bool:
        """Batch-axis engines prefer thread fan-out (kernels release the GIL)."""
        return self.resolved_method == "batched"

    @property
    def cost_tag(self) -> str:
        """Cost-model discriminator: batched and looped costs differ ~10x,
        so they must not share one per-shot EWMA (see
        :func:`repro.runtime.profile.profile_key`)."""
        return self.resolved_method
