"""Execution backends: the ``run(circuit, shots) -> Result`` abstraction.

Backends bundle an engine with (optionally) a device model and the
transpiler, so experiments can be written once and pointed at an ideal
simulator or a noisy device model interchangeably — the same way the paper's
experiments moved between QUIRK and IBM Q.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.devices.device import DeviceModel
from repro.exceptions import DeviceError
from repro.results.result import Result
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.simulators.stabilizer import StabilizerSimulator
from repro.simulators.statevector import StatevectorSimulator


class Backend:
    """Abstract backend interface."""

    name = "abstract"

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        seed: Optional[int] = None,
    ) -> Result:
        """Execute ``circuit`` for ``shots`` shots."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class StatevectorBackend(Backend):
    """Ideal pure-state backend (the "QUIRK" role)."""

    name = "statevector"

    def __init__(self, max_branches: int = 4096) -> None:
        self._simulator = StatevectorSimulator(max_branches=max_branches)

    def run(self, circuit, shots=1024, seed=None):
        return self._simulator.run(circuit, shots=shots, seed=seed)


class DensityMatrixBackend(Backend):
    """Ideal mixed-state backend (exact distributions)."""

    name = "density_matrix"

    def __init__(self, max_branches: int = 4096) -> None:
        self._simulator = DensityMatrixSimulator(max_branches=max_branches)

    def run(self, circuit, shots=1024, seed=None):
        return self._simulator.run(circuit, shots=shots, seed=seed)


class StabilizerBackend(Backend):
    """Clifford-only backend for large-qubit-count runs."""

    name = "stabilizer"

    def __init__(self) -> None:
        self._simulator = StabilizerSimulator()

    def run(self, circuit, shots=1024, seed=None):
        return self._simulator.run(circuit, shots=shots, seed=seed)


class NoisyDeviceBackend(Backend):
    """Transpile to a device and execute on the density-matrix engine.

    This backend plays the role of the IBM Q machine in the paper's §4:
    circuits are lowered to the device's basis gates and coupling
    constraints, then evolved under the calibrated noise model, and the
    returned counts are multinomial samples of the exact noisy distribution.

    Parameters
    ----------
    device:
        The :class:`DeviceModel` to emulate.
    noise_scale:
        Multiplier on all calibrated error rates (1.0 = nominal; 0 = ideal).
    transpile:
        Set ``False`` if circuits are already in device-native form with
        physical qubit indices.
    """

    def __init__(
        self,
        device: DeviceModel,
        noise_scale: float = 1.0,
        transpile: bool = True,
    ) -> None:
        self.device = device
        self.noise_scale = noise_scale
        self.transpile = transpile
        self.name = f"noisy({device.name})"
        self._noise_model = device.noise_model(scale=noise_scale)
        self._simulator = DensityMatrixSimulator(noise_model=self._noise_model)

    @property
    def noise_model(self):
        """Return the compiled noise model (shared with the engine)."""
        return self._noise_model

    def run(self, circuit, shots=1024, seed=None):
        executed = self.prepare(circuit)
        result = self._simulator.run(executed, shots=shots, seed=seed)
        result.metadata["device"] = self.device.name
        result.metadata["noise_scale"] = self.noise_scale
        result.metadata["transpiled_ops"] = executed.count_ops()
        return result

    def prepare(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Return the circuit as it would execute (transpiled if enabled)."""
        if circuit.num_qubits > self.device.num_qubits:
            raise DeviceError(
                f"circuit needs {circuit.num_qubits} qubits but "
                f"{self.device.name} has {self.device.num_qubits}"
            )
        if not self.transpile:
            return circuit
        from repro.transpiler import transpile_for_device

        return transpile_for_device(circuit, self.device)


class TrajectoryDeviceBackend(Backend):
    """Monte-Carlo noisy backend (scales past the density-matrix engine)."""

    def __init__(
        self,
        device: DeviceModel,
        noise_scale: float = 1.0,
        transpile: bool = True,
    ) -> None:
        from repro.noise.trajectories import TrajectorySimulator

        self.device = device
        self.noise_scale = noise_scale
        self.transpile = transpile
        self.name = f"trajectory({device.name})"
        self._noise_model = device.noise_model(scale=noise_scale)
        self._simulator = TrajectorySimulator(noise_model=self._noise_model)

    def run(self, circuit, shots=1024, seed=None):
        if circuit.num_qubits > self.device.num_qubits:
            raise DeviceError(
                f"circuit needs {circuit.num_qubits} qubits but "
                f"{self.device.name} has {self.device.num_qubits}"
            )
        executed = circuit
        if self.transpile:
            from repro.transpiler import transpile_for_device

            executed = transpile_for_device(circuit, self.device)
        result = self._simulator.run(executed, shots=shots, seed=seed)
        result.metadata["device"] = self.device.name
        result.metadata["noise_scale"] = self.noise_scale
        return result
