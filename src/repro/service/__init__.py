"""Multi-tenant async service layer over the runtime scheduler.

:class:`~repro.service.service.RuntimeService` wraps the fair-share
:class:`~repro.runtime.scheduler.Scheduler` into a long-running service:
``async submit()`` returns an awaitable :class:`ServiceJob` handle with a
stable id, completion streams through ``async for`` over
``as_completed()``, and admission is gated by hashed-token
authentication with expiry and scopes (:mod:`repro.service.auth`),
per-client concurrency quotas and shots/sec token buckets
(:mod:`repro.service.quota`), with service-level observability
(:mod:`repro.service.stats`) behind one ``stats()`` call.

The service is restart-durable: every submission and settlement is
write-ahead-journaled through a disk-backed store
(:mod:`repro.service.journal`), so a restarted service still answers
``status()``/``result()``/``counts()`` for pre-restart ``svc-N`` ids and
re-runs unsettled work via :meth:`RuntimeService.recover`.  Settled jobs
charge per-tenant cost ledgers (:mod:`repro.service.accounting`) that
can feed back into fair-share weights.

The service decides *when* and *whether* work runs — never *what* it
computes: seeded submissions return counts bit-identical to calling
:func:`repro.runtime.execute.execute` directly.
"""

from repro.exceptions import (
    QueueTimeout,
    RegistrationConflict,
    ScopeDenied,
    ServiceError,
)
from repro.service.accounting import CostLedger
from repro.service.auth import (
    DEFAULT_SCOPES,
    SCOPES,
    AuthenticationError,
    ClientIdentity,
    TokenAuthenticator,
)
from repro.service.journal import JobJournal
from repro.service.quota import (
    OVER_QUOTA_POLICIES,
    UNLIMITED,
    ClientQuota,
    QuotaExceeded,
    RateLimited,
    TokenBucket,
)
from repro.service.service import RecoveredJob, RuntimeService, ServiceJob
from repro.service.stats import ClientStats, LatencyWindow, RateMeter

__all__ = [
    "AuthenticationError",
    "ClientIdentity",
    "ClientQuota",
    "ClientStats",
    "CostLedger",
    "DEFAULT_SCOPES",
    "JobJournal",
    "LatencyWindow",
    "OVER_QUOTA_POLICIES",
    "QueueTimeout",
    "QuotaExceeded",
    "RateLimited",
    "RateMeter",
    "RecoveredJob",
    "RegistrationConflict",
    "RuntimeService",
    "SCOPES",
    "ScopeDenied",
    "ServiceError",
    "ServiceJob",
    "TokenAuthenticator",
    "TokenBucket",
    "UNLIMITED",
]
