"""Multi-tenant async service layer over the runtime scheduler.

:class:`~repro.service.service.RuntimeService` wraps the fair-share
:class:`~repro.runtime.scheduler.Scheduler` into a long-running service:
``async submit()`` returns an awaitable :class:`ServiceJob` handle with a
stable id, completion streams through ``async for`` over
``as_completed()``, and admission is gated by authentication stubs
(:mod:`repro.service.auth`), per-client concurrency quotas and
shots/sec token buckets (:mod:`repro.service.quota`), with service-level
observability (:mod:`repro.service.stats`) behind one ``stats()`` call.

The service decides *when* and *whether* work runs — never *what* it
computes: seeded submissions return counts bit-identical to calling
:func:`repro.runtime.execute.execute` directly.
"""

from repro.exceptions import QueueTimeout, ServiceError
from repro.service.auth import (
    AuthenticationError,
    ClientIdentity,
    TokenAuthenticator,
)
from repro.service.quota import (
    OVER_QUOTA_POLICIES,
    UNLIMITED,
    ClientQuota,
    QuotaExceeded,
    RateLimited,
    TokenBucket,
)
from repro.service.service import RuntimeService, ServiceJob
from repro.service.stats import ClientStats, LatencyWindow, RateMeter

__all__ = [
    "AuthenticationError",
    "ClientIdentity",
    "ClientQuota",
    "ClientStats",
    "LatencyWindow",
    "OVER_QUOTA_POLICIES",
    "QueueTimeout",
    "QuotaExceeded",
    "RateLimited",
    "RateMeter",
    "RuntimeService",
    "ServiceError",
    "ServiceJob",
    "TokenAuthenticator",
    "TokenBucket",
    "UNLIMITED",
]
