"""Multi-tenant async service layer over the runtime scheduler.

:class:`~repro.service.service.RuntimeService` wraps the fair-share
:class:`~repro.runtime.scheduler.Scheduler` into a long-running service:
``async submit()`` returns an awaitable :class:`ServiceJob` handle with a
stable id, completion streams through ``async for`` over
``as_completed()``, and admission is gated by hashed-token
authentication with expiry and scopes (:mod:`repro.service.auth`),
per-client concurrency quotas and shots/sec token buckets
(:mod:`repro.service.quota`), with service-level observability
(:mod:`repro.service.stats`) behind one ``stats()`` call.

The service is restart-durable: every submission and settlement is
write-ahead-journaled through a disk-backed store
(:mod:`repro.service.journal`), so a restarted service still answers
``status()``/``result()``/``counts()`` for pre-restart ``svc-N`` ids and
re-runs unsettled work via :meth:`RuntimeService.recover`.  Settled jobs
charge per-tenant cost ledgers (:mod:`repro.service.accounting`) that
can feed back into fair-share weights.

The service decides *when* and *whether* work runs — never *what* it
computes: seeded submissions return counts bit-identical to calling
:func:`repro.runtime.execute.execute` directly.

The whole surface is reachable over the network too:
:mod:`repro.service.http` serves it as a stdlib-asyncio HTTP/1.1 API
(``POST /v1/jobs`` with circuits as OpenQASM, id-based status/result/
counts, Server-Sent completion events) and
:class:`~repro.service.client.ServiceClient` is the matching
``http.client`` consumer that re-raises the same typed exceptions.
"""

from repro.exceptions import (
    CircuitOpen,
    QueueTimeout,
    RegistrationConflict,
    ScopeDenied,
    ServiceError,
    ServiceOverloaded,
    UnknownJob,
)
from repro.service.accounting import CostLedger
from repro.service.auth import (
    DEFAULT_SCOPES,
    SCOPES,
    AuthenticationError,
    ClientIdentity,
    TokenAuthenticator,
)
from repro.service.client import ServiceClient
from repro.service.http import BackgroundServer, ServiceServer, serve
from repro.service.journal import JobJournal
from repro.service.quota import (
    OVER_QUOTA_POLICIES,
    UNLIMITED,
    ClientQuota,
    QuotaExceeded,
    RateLimited,
    TokenBucket,
)
from repro.service.service import RecoveredJob, RuntimeService, ServiceJob
from repro.service.stats import ClientStats, LatencyWindow, RateMeter

__all__ = [
    "AuthenticationError",
    "BackgroundServer",
    "CircuitOpen",
    "ClientIdentity",
    "ClientQuota",
    "ClientStats",
    "CostLedger",
    "DEFAULT_SCOPES",
    "JobJournal",
    "LatencyWindow",
    "OVER_QUOTA_POLICIES",
    "QueueTimeout",
    "QuotaExceeded",
    "RateLimited",
    "RateMeter",
    "RecoveredJob",
    "RegistrationConflict",
    "RuntimeService",
    "SCOPES",
    "ScopeDenied",
    "ServiceClient",
    "ServiceError",
    "ServiceJob",
    "ServiceOverloaded",
    "ServiceServer",
    "TokenAuthenticator",
    "TokenBucket",
    "UNLIMITED",
    "UnknownJob",
    "serve",
]
