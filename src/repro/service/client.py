"""Synchronous stdlib client for the service's HTTP front-end.

:class:`ServiceClient` is the other end of :mod:`repro.service.http`: a
plain-``http.client`` consumer that serializes circuits to OpenQASM 2.0,
submits them with a bearer token, polls/awaits ``svc-N`` ids and streams
Server-Sent completion events — from a different thread, a different
process or a different machine.  The counts it reads back are
bit-identical to an in-process :func:`repro.runtime.execute.execute` of
the same submission (``tests/service/test_client.py`` pins it under both
executors), because the wire carries histograms verbatim and the service
never touches *what* runs.

Error handling mirrors the server's typed table in reverse: the
``error.type`` field of a non-2xx body is rebuilt into the same exception
the in-process API would have raised — :class:`RateLimited` with
``retry_after`` (from the body, falling back to the ``Retry-After``
header), :class:`QuotaExceeded`, :class:`ScopeDenied` with its scope
telemetry, :class:`AuthenticationError`, :class:`QueueTimeout`,
:class:`UnknownJob` — so calling code cannot tell a local service from a
remote one by its exceptions either.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlencode, urlsplit

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import circuit_to_qasm
from repro.exceptions import (
    CircuitOpen,
    JobError,
    QasmError,
    QueueTimeout,
    ScopeDenied,
    ServiceError,
    ServiceOverloaded,
    UnknownJob,
)
from repro.service.auth import AuthenticationError
from repro.service.quota import QuotaExceeded, RateLimited


def _rebuild_rate_limited(message, info, headers):
    retry_after = info.get("retry_after")
    if retry_after is None:
        retry_after = headers.get("Retry-After", 0)
    return RateLimited(message, client=info.get("client", ""),
                       retry_after=float(retry_after or 0))


def _rebuild_quota(message, info, headers):
    return QuotaExceeded(message, client=info.get("client", ""),
                         in_flight=int(info.get("in_flight", 0)),
                         limit=int(info.get("limit", 0)))


def _rebuild_scope(message, info, headers):
    return ScopeDenied(message, client=info.get("client", ""),
                       scope=info.get("scope", ""),
                       granted=tuple(info.get("granted", ())))


def _rebuild_overloaded(message, info, headers):
    retry_after = info.get("retry_after")
    if retry_after is None:
        retry_after = headers.get("Retry-After", 1)
    return ServiceOverloaded(message,
                             retry_after=float(retry_after or 1),
                             queue_depth=int(info.get("queue_depth", 0)),
                             limit=int(info.get("limit", 0)),
                             reason=info.get("reason", "queue_depth"))


def _rebuild_circuit_open(message, info, headers):
    retry_after = info.get("retry_after")
    if retry_after is None:
        retry_after = headers.get("Retry-After", 0)
    return CircuitOpen(message, backend=info.get("backend", ""),
                       retry_after=float(retry_after or 0))


def _rebuild_queue_timeout(message, info, headers):
    return QueueTimeout(message, client=info.get("client", ""),
                        waited=float(info.get("waited", 0.0)),
                        queue_position=info.get("queue_position"),
                        queued_batches=int(info.get("queued_batches", 0)))


#: ``error.type`` on the wire -> rebuilder; the reverse of the server's
#: ERROR_STATUS table for the types that carry structured telemetry.
_REBUILDERS = {
    "RateLimited": _rebuild_rate_limited,
    "QuotaExceeded": _rebuild_quota,
    "ServiceOverloaded": _rebuild_overloaded,
    "CircuitOpen": _rebuild_circuit_open,
    "ScopeDenied": _rebuild_scope,
    "QueueTimeout": _rebuild_queue_timeout,
    "AuthenticationError": lambda m, i, h: AuthenticationError(m),
    "UnknownJob": lambda m, i, h: UnknownJob(m, job_id=i.get("job_id", "")),
    "QasmError": lambda m, i, h: QasmError(m),
    "ValueError": lambda m, i, h: ValueError(m),
    "TypeError": lambda m, i, h: TypeError(m),
}


class ServiceClient:
    """Talk to a :class:`~repro.service.http.ServiceServer` over HTTP.

    Parameters
    ----------
    base_url:
        ``"http://host:port"`` (or bare ``"host:port"``).
    token:
        Bearer token sent with every request (``None`` relies on the
        server allowing anonymous access).
    timeout:
        Socket timeout in seconds for each HTTP exchange.  This bounds the
        *transport*; how long the server holds a ``result``/``counts``
        poll open is the separate per-call ``timeout=`` argument, which
        must be comfortably smaller.
    retries:
        Back-off-and-retry budget for *transient* rejections: the rate
        limiter's 429 (:class:`RateLimited`) and the 503s
        (:class:`~repro.exceptions.ServiceOverloaded`,
        :class:`~repro.exceptions.CircuitOpen`).  Each retry honours the
        server's ``retry_after`` (never sleeping less than it), adds
        jitter so a rejected storm does not re-arrive in lockstep, and
        caps the sleep at ``max_backoff_s``.  :class:`QuotaExceeded` is
        *not* retried — freeing quota is the caller's (or the server's
        ``over_quota="queue"`` policy's) job.  The default ``0`` keeps
        the historic raise-immediately behaviour.
    backoff_s / max_backoff_s:
        Base and cap for the retry sleep (exponential, jittered).

    One client holds one keep-alive connection and is not thread-safe —
    use a client per thread (they are cheap; the storm bench does exactly
    that).  Usable as a context manager.
    """

    #: Typed errors the retry budget applies to: all carry a
    #: ``retry_after`` hint and describe a *transient* server condition.
    RETRYABLE = (RateLimited, ServiceOverloaded, CircuitOpen)

    def __init__(self, base_url: str, token: Optional[str] = None,
                 timeout: float = 600.0, retries: int = 0,
                 backoff_s: float = 0.05, max_backoff_s: float = 5.0) -> None:
        if "//" not in base_url:
            base_url = "http://" + base_url
        url = urlsplit(base_url)
        if url.scheme != "http" or url.hostname is None:
            raise ValueError(
                f"base_url must be an http://host:port URL, got {base_url!r}"
            )
        self.host = url.hostname
        self.port = url.port if url.port is not None else 80
        self.token = token
        self.timeout = float(timeout)
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries!r}")
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing --------------------------------------------------------

    def _headers(self) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None,
                 query: Optional[dict] = None, raw: bool = False,
                 any_status: bool = False):
        """One logical exchange, retried per the client's retry policy.

        With ``retries=0`` this is exactly one :meth:`_request_once`.
        Otherwise :data:`RETRYABLE` rejections are retried up to
        ``retries`` times, sleeping ``max(retry_after, exponential
        backoff)`` plus jitter between attempts, capped at
        ``max_backoff_s``; the final attempt's error propagates.
        """
        attempts = self.retries + 1
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, payload, query,
                                          raw, any_status)
            except self.RETRYABLE as exc:
                if attempt == attempts - 1:
                    raise
                hint = float(getattr(exc, "retry_after", 0.0) or 0.0)
                delay = max(hint, self.backoff_s * (2 ** attempt))
                delay += random.uniform(0.0, delay / 2)
                time.sleep(min(delay, self.max_backoff_s))

    def _request_once(self, method: str, path: str,
                      payload: Optional[dict] = None,
                      query: Optional[dict] = None, raw: bool = False,
                      any_status: bool = False):
        """One exchange; reconnects once over a stale keep-alive.

        Returns the parsed JSON body — or, with ``raw=True``, the decoded
        text body untouched (the metrics endpoint speaks Prometheus text,
        not JSON).  Errors are always JSON and map through the typed
        table either way; ``any_status=True`` suppresses the raise and
        hands back whatever body came with the status (the health probe
        wants the 503 report, not an exception).
        """
        if query:
            path = f"{path}?{urlencode(query)}"
        body = None
        headers = self._headers()
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                break
            except (http.client.BadStatusLine, http.client.CannotSendRequest,
                    BrokenPipeError, ConnectionResetError):
                # The server closed the idle keep-alive connection between
                # calls; a fresh connection retries exactly once.
                self.close()
                if attempt:
                    raise
        data = response.read()
        text = data.decode("utf-8", errors="replace") if data else ""
        try:
            parsed = json.loads(text) if data else {}
        except json.JSONDecodeError:
            parsed = {}
        if response.status >= 400 and not any_status:
            raise self._error_for(response.status, parsed,
                                  dict(response.getheaders()))
        return text if raw else parsed

    @staticmethod
    def _error_for(status: int, payload: dict,
                   headers: Dict[str, str]) -> Exception:
        info = (payload or {}).get("error") or {}
        name = info.get("type", "")
        message = info.get("message") or f"HTTP {status}"
        rebuild = _REBUILDERS.get(name)
        if rebuild is not None:
            return rebuild(message, info, headers)
        if status == 401:
            return AuthenticationError(message)
        if status == 403:
            return ScopeDenied(message)
        if status == 404:
            return UnknownJob(message)
        if status == 503:
            return ServiceOverloaded(
                message, retry_after=float(headers.get("Retry-After", 1) or 1)
            )
        if status == 504:
            return QueueTimeout(message)
        if status == 400:
            return ValueError(message)
        if name == "JobError" or status >= 500:
            return JobError(message)
        return ServiceError(f"HTTP {status}: {message}")

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the wire API ----------------------------------------------------

    def submit(self, circuits, backend: str, shots=1024, seed=None,
               priority: int = 0) -> str:
        """Submit circuits and return the service's ``svc-N`` job id.

        ``circuits`` may be a :class:`QuantumCircuit`, an OpenQASM 2.0
        string, or a list mixing either; circuits are serialized with
        :func:`~repro.circuits.qasm.circuit_to_qasm` before the hop.
        """
        single = isinstance(circuits, (QuantumCircuit, str))
        sources = [circuits] if single else list(circuits)
        serialized = [
            circuit_to_qasm(c) if isinstance(c, QuantumCircuit) else c
            for c in sources
        ]
        payload = {
            "circuits": serialized[0] if single else serialized,
            "backend": backend,
            "shots": shots,
            "priority": priority,
        }
        if seed is not None:
            payload["seed"] = seed
        return self._request("POST", "/v1/jobs", payload)["job_id"]

    def job(self, job_id: str) -> dict:
        """Return the full status snapshot for ``job_id``."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def status(self, job_id: str) -> str:
        """Return the job's status string by id."""
        return self.job(job_id)["status"]

    def result(self, job_id: str,
               timeout: Optional[float] = None) -> List[dict]:
        """Await and return ``[{counts, shots, metadata}, ...]`` by id."""
        query = {} if timeout is None else {"timeout": timeout}
        payload = self._request("GET", f"/v1/jobs/{job_id}/result",
                                query=query)
        return payload["results"]

    def counts(self, job_id: str,
               timeout: Optional[float] = None) -> List[Dict[str, int]]:
        """Await and return the ordered histograms by id — bit-identical
        to the in-process ``execute().counts()`` of the same submission."""
        query = {} if timeout is None else {"timeout": timeout}
        payload = self._request("GET", f"/v1/jobs/{job_id}/counts",
                                query=query)
        return payload["counts"]

    def trace(self, job_id: str) -> dict:
        """Return the job's trace span tree by id (owner or admin).

        The tree mirrors :meth:`RuntimeService.trace`: nested spans with
        root-relative ``start_s``/``duration_s`` seconds, per-chunk
        worker wall-clocks and engine names in ``attrs``, and structured
        ``events``.  Works for live jobs (in-flight spans report
        ``duration_s: null``) and for recovered pre-restart ids whose
        trace was journaled at settlement.
        """
        return self._request("GET", f"/v1/jobs/{job_id}/trace")["trace"]

    def stats(self) -> dict:
        """Return the service's ``stats()`` snapshot (admin scope)."""
        return self._request("GET", "/v1/stats")

    def metrics(self) -> str:
        """Return the ``/v1/metrics`` Prometheus text page (admin scope)."""
        return self._request("GET", "/v1/metrics", raw=True)

    def health(self) -> dict:
        """Return the ``/v1/health`` readiness report (no auth needed).

        Always returns the report — for a draining or load-shedding
        service (the wire 503) the report itself says so
        (``ready: false`` plus breaker/pool/journal detail) instead of
        raising, so monitoring loops need no exception handling.
        """
        return self._request_once("GET", "/v1/health", any_status=True)

    def events(self, job_id: str,
               timeout: Optional[float] = None) -> Iterator[Tuple[str, dict]]:
        """Stream the job's Server-Sent Events as ``(event, data)`` pairs.

        Yields one ``("job", {...})`` per completed runtime job in
        completion order, then a terminal ``("settled", {...})`` — or an
        ``("error", {...})`` carrying the typed wire body if the job went
        wrong mid-stream.  Uses a dedicated connection so the client's
        keep-alive connection stays free for status polls.
        """
        path = f"/v1/jobs/{job_id}/events"
        if timeout is not None:
            path += "?" + urlencode({"timeout": timeout})
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", path, headers=self._headers())
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    parsed = json.loads(data.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    parsed = {}
                raise self._error_for(response.status, parsed,
                                      dict(response.getheaders()))
            event: Optional[str] = None
            data_lines: List[str] = []
            for raw in iter(response.readline, b""):
                line = raw.decode("utf-8").rstrip("\r\n")
                if line:
                    field, _, value = line.partition(":")
                    if field == "event":
                        event = value.strip()
                    elif field == "data":
                        data_lines.append(value.strip())
                    continue
                if event is None and not data_lines:
                    continue  # stray blank line
                data = json.loads("\n".join(data_lines)) if data_lines else {}
                yield (event or "message"), data
                event, data_lines = None, []
        finally:
            conn.close()

    def __repr__(self) -> str:
        return f"<ServiceClient http://{self.host}:{self.port}>"
