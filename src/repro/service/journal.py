"""Write-ahead job journal: the service's restart-durable memory.

:class:`RuntimeService` forgets everything when its process dies — every
``svc-N`` handle, every result a tenant has not yet collected.  The
journal closes that gap: each submission is recorded *before* it reaches
the scheduler, and each settlement (result counts or a typed failure) is
recorded when the service observes it, both written through a
:class:`~repro.runtime.store.CacheStore` disk tier under
``<cache_dir>/service/journal/``.

A restarted service loads the journal and can then

* answer ``status()``/``result()``/``counts()`` for settled pre-restart
  jobs — counts come back bit-identical because they are the journaled
  counts themselves, and
* re-submit journaled-but-unsettled jobs (write-ahead means a crash
  between journal write and scheduler accept errs toward re-running, and
  re-running is safe: counts are a pure function of circuit, backend,
  shots and seed).

Durability inherits the store's contract: atomic write-temp-then-rename,
digest-checked reads, and *corruption is a miss* — a record truncated by
a crash mid-write simply drops out of the journal instead of poisoning
recovery.

Not every submission is durable.  Circuits, backends and options must
survive a pickle round-trip to be re-submittable; when they do not, the
journal keeps a degraded record (fingerprints and settlement counts, but
``recoverable=False``) so the job's *results* still survive a restart
even though the job itself could not be re-run.
"""

from __future__ import annotations

import pickle
import threading
import time
from typing import Dict, List, Optional

from repro import faults
from repro.exceptions import ServiceError
from repro.runtime.store import CacheStore

#: Journal records live under this namespace inside the shared cache dir.
JOURNAL_NAMESPACE = "service/journal"

#: Terminal statuses a settlement may record.
SETTLED_STATUSES = ("done", "failed", "dropped", "cancelled")


def _fingerprint(circuit) -> Optional[str]:
    try:
        return circuit.fingerprint()
    except Exception:
        return None


def _probe_picklable(value) -> bool:
    try:
        pickle.dumps(value)
        return True
    except Exception:
        return False


class JobJournal:
    """Persistent record of every submission and settlement.

    Parameters
    ----------
    cache_dir:
        Parent cache directory (the journal lives in
        ``<cache_dir>/service/journal/``).  Ignored when ``store`` is
        given.  ``None`` keeps the journal memory-only — useful in tests,
        pointless for durability.
    store:
        A pre-built :class:`~repro.runtime.store.CacheStore` to journal
        through (the journal adopts its tiers as-is).
    maxsize:
        Memory-tier bound when the journal builds its own store.

    The journal is thread-safe: submissions arrive on the event loop,
    settlements from executor threads, recovery queries from anywhere.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        store: Optional[CacheStore] = None,
        maxsize: int = 4096,
    ) -> None:
        if store is None:
            store = CacheStore(
                maxsize=maxsize,
                cache_dir=cache_dir,
                namespace=JOURNAL_NAMESPACE,
                disk_maxsize=None,  # a journal must not evict live records
            )
        self._store = store
        self._lock = threading.Lock()
        self._records: Dict[int, dict] = {}
        self._next = 1
        self._load()

    @property
    def durable(self) -> bool:
        """Whether records reach disk (``False`` = memory-only journal)."""
        return self._store.disk is not None

    def _load(self) -> None:
        """Populate the in-memory mirror from the store (corrupt ⇒ skip)."""
        highest = 0
        for key, value in self._store.items():
            if not (
                isinstance(key, tuple)
                and len(key) == 2
                and key[0] == "job"
                and isinstance(key[1], int)
            ):
                continue
            if not isinstance(value, dict) or value.get("id") != key[1]:
                continue  # malformed record: treat like a corrupt entry
            self._records[key[1]] = value
            highest = max(highest, key[1])
        self._next = highest + 1

    # ------------------------------------------------------------------
    # id allocation
    # ------------------------------------------------------------------

    def next_id(self) -> int:
        """Allocate the next journal id (monotonic across restarts)."""
        with self._lock:
            allocated = self._next
            self._next += 1
            return allocated

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def record_submission(
        self,
        job_id: int,
        client: str,
        circuits,
        backend,
        shots: int,
        seed,
        priority: int = 0,
        weight: int = 1,
        options: Optional[dict] = None,
    ) -> dict:
        """Write-ahead-record a submission; returns the stored record.

        ``circuits`` is the listified batch, ``backend`` either the spec
        string the tenant submitted or the backend instance.  Payloads
        that do not pickle are journaled in degraded form
        (``recoverable=False``): the job cannot be re-run after a crash,
        but its settlement counts are still made durable.
        """
        circuits = list(circuits)
        options = dict(options or {})
        recoverable = True
        if self.durable and not _probe_picklable((circuits, backend, options)):
            recoverable = False
        record = {
            "id": int(job_id),
            "job_id": f"svc-{int(job_id)}",
            "client": str(client),
            "weight": int(weight),
            "fingerprints": [_fingerprint(c) for c in circuits],
            "circuits": circuits if recoverable else None,
            "backend": backend if recoverable else repr(backend),
            "shots": shots,
            "seed": seed,
            "priority": int(priority),
            "options": options if recoverable else {},
            "size": len(circuits),
            "submitted_at": time.time(),
            "settled": False,
            "status": "submitted",
            "recoverable": recoverable,
        }
        with self._lock:
            self._records[record["id"]] = record
            self._next = max(self._next, record["id"] + 1)
        # Chaos hook: an injected journal.write fault models a wedged
        # disk at the worst moment — after the in-memory mirror updated,
        # before the durable write.
        faults.inject("journal.write")
        self._store.store(("job", record["id"]), record)
        return record

    def record_settlement(
        self,
        job_id: int,
        status: str,
        counts: Optional[List[dict]] = None,
        shots: Optional[List[int]] = None,
        error: Optional[BaseException] = None,
        trace: Optional[dict] = None,
    ) -> dict:
        """Record a job's terminal outcome; returns the updated record.

        ``counts`` is one plain ``{bitstring: occurrences}`` dict per
        circuit (only for ``status="done"``); ``error`` is journaled as
        ``{"type", "message"}`` so a restarted service can re-raise a
        meaningful failure.  ``trace`` is the submission's finished span
        tree (JSON-safe dicts) — journaling it lets a restarted service
        answer ``/v1/jobs/{id}/trace`` for pre-restart ids.
        """
        if status not in SETTLED_STATUSES:
            raise ServiceError(
                f"unknown settlement status {status!r}; valid: "
                f"{', '.join(SETTLED_STATUSES)}"
            )
        with self._lock:
            record = self._records.get(int(job_id))
            if record is None:
                raise ServiceError(
                    f"cannot settle unknown journal id {job_id!r}"
                )
            record = dict(record)
            record["settled"] = True
            record["status"] = status
            record["settled_at"] = time.time()
            record["counts"] = (
                [dict(c) for c in counts] if counts is not None else None
            )
            record["shots_out"] = list(shots) if shots is not None else None
            record["error"] = (
                {"type": type(error).__name__, "message": str(error)}
                if error is not None
                else None
            )
            if trace is not None:
                record["trace"] = trace
            # Settled records no longer need their (potentially large)
            # re-submission payload.
            record["circuits"] = None
            record["options"] = {}
            if not isinstance(record["backend"], str):
                record["backend"] = repr(record["backend"])
            self._records[record["id"]] = record
        # Chaos hook: a settlement-side journal.write fault is absorbed
        # by the service's settlement-error accounting, never raised at
        # a tenant.
        faults.inject("journal.write")
        self._store.store(("job", record["id"]), record)
        return record

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def record(self, job_id: int) -> Optional[dict]:
        """Return a copy of the record for ``job_id`` (or ``None``)."""
        with self._lock:
            record = self._records.get(int(job_id))
            return dict(record) if record is not None else None

    def records(self) -> List[dict]:
        """Return copies of every record, ordered by id."""
        with self._lock:
            return [dict(self._records[i]) for i in sorted(self._records)]

    def unsettled(self) -> List[dict]:
        """Return copies of journaled-but-unsettled records, by id."""
        return [r for r in self.records() if not r["settled"]]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
