"""Authentication stubs: token → client identity.

The service layer needs *some* notion of "who is submitting" before
quotas, rate limits and fair-share weights mean anything.  This module
provides the deliberately minimal shape — an in-memory token table with
constant-time comparison — so the rest of the service can be written
against a stable interface.

**Stub caveat**: tokens are opaque shared secrets held in process memory.
There is no hashing at rest, no expiry, no scopes and no transport
security — a production deployment would swap :class:`TokenAuthenticator`
for a real identity provider behind the same two calls
(``register``/``authenticate``).  Everything above this module only sees
:class:`ClientIdentity`.
"""

from __future__ import annotations

import hmac
import secrets
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import ServiceError


class AuthenticationError(ServiceError):
    """Raised when a submission's token maps to no registered client."""


@dataclass
class ClientIdentity:
    """A resolved client: the name the scheduler sees plus its policy.

    ``weight`` feeds the scheduler's weighted round-robin; ``quota`` is
    interpreted by the service's admission layer (see
    :mod:`repro.service.quota`).
    """

    name: str
    weight: int = 1
    quota: Optional[object] = None  # ClientQuota; untyped to avoid a cycle
    metadata: dict = field(default_factory=dict)


class TokenAuthenticator:
    """In-memory token table (the authentication *stub*).

    Parameters
    ----------
    allow_anonymous:
        When ``True`` (default ``False``), a missing token resolves to the
        shared ``"anonymous"`` identity instead of raising — convenient
        for single-tenant embedding, wrong for anything multi-tenant.
    """

    #: Name every unauthenticated submission shares under allow_anonymous.
    ANONYMOUS = "anonymous"

    def __init__(self, allow_anonymous: bool = False) -> None:
        self.allow_anonymous = bool(allow_anonymous)
        self._lock = threading.Lock()
        self._tokens: Dict[str, ClientIdentity] = {}
        self._anonymous = ClientIdentity(self.ANONYMOUS)

    def register(
        self,
        name: str,
        token: Optional[str] = None,
        weight: int = 1,
        quota: Optional[object] = None,
        **metadata,
    ) -> str:
        """Register ``name`` and return its bearer token.

        ``token=None`` generates a fresh 32-hex-char secret.  Re-using a
        token for a second name is rejected — a token must resolve to
        exactly one identity.
        """
        if not isinstance(name, str) or not name:
            raise ServiceError(
                f"client name must be a non-empty string, got {name!r}"
            )
        if weight < 1:
            raise ServiceError(f"client weight must be positive, got {weight}")
        token = token if token is not None else secrets.token_hex(16)
        with self._lock:
            existing = self._tokens.get(token)
            if existing is not None and existing.name != name:
                raise ServiceError(
                    f"token already registered to client {existing.name!r}"
                )
            self._tokens[token] = ClientIdentity(
                name, int(weight), quota, dict(metadata)
            )
        return token

    def revoke(self, token: str) -> bool:
        """Forget ``token``; returns whether it was registered."""
        with self._lock:
            return self._tokens.pop(token, None) is not None

    def authenticate(self, token: Optional[str]) -> ClientIdentity:
        """Resolve ``token`` to its :class:`ClientIdentity`.

        Raises
        ------
        AuthenticationError
            For a missing token (unless ``allow_anonymous``) or one that
            matches no registration.
        """
        if token is None:
            if self.allow_anonymous:
                return self._anonymous
            raise AuthenticationError(
                "no token supplied and anonymous access is disabled"
            )
        with self._lock:
            for registered, identity in self._tokens.items():
                # Constant-time comparison; linear scan is fine at the
                # stub's scale (a real deployment replaces this module).
                if hmac.compare_digest(registered, token):
                    return identity
        raise AuthenticationError("unknown token")

    def clients(self) -> list:
        """Return the registered client names (no tokens)."""
        with self._lock:
            return sorted({identity.name for identity in self._tokens.values()})
