"""Authentication: hashed-at-rest tokens → client identity.

The service layer needs *some* notion of "who is submitting" before
quotas, rate limits and fair-share weights mean anything.  This module
maps bearer tokens to :class:`ClientIdentity` records behind two calls
(``register``/``authenticate``) so everything above it stays agnostic to
how identity is actually resolved.

Unlike the original stub, tokens are never held in plaintext: the table
keys are salted SHA-256 digests (one random salt per authenticator), so
``authenticate`` is an O(1) dict lookup and a process core dump reveals
no usable secrets.  Tokens optionally expire (``expires_in`` seconds on
an injectable wall clock) and carry *scopes* — ``"submit"``, ``"read"``
and ``"admin"`` — checked by ``authenticate(token, scope=...)``; the
``admin`` scope implies the others.

Client *policy* (fair-share weight, quota, metadata) is tracked per
**name**, not per token: a name may hold several tokens, but they must
agree on policy.  Registering a second token for an existing name with a
different ``weight``/``quota`` raises
:class:`~repro.exceptions.RegistrationConflict`; re-registering the
*same* token is the explicit way to update policy.

Passing ``store=`` (a :class:`~repro.runtime.store.CacheStore`) persists
the salt, digest records and name policies across restarts — plaintext
tokens are never written anywhere.
"""

from __future__ import annotations

import hashlib
import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.exceptions import RegistrationConflict, ScopeDenied, ServiceError

#: Every scope a token may carry.  ``admin`` implies the other two.
SCOPES = ("submit", "read", "admin")

#: Scopes granted when ``register`` is not told otherwise.
DEFAULT_SCOPES = ("submit", "read")


class AuthenticationError(ServiceError):
    """Raised when a submission's token maps to no registered client."""


@dataclass
class ClientIdentity:
    """A resolved client: the name the scheduler sees plus its policy.

    ``weight`` feeds the scheduler's weighted round-robin; ``quota`` is
    interpreted by the service's admission layer (see
    :mod:`repro.service.quota`).  ``scopes`` comes from the *token* that
    authenticated, not the name — two tokens for one client may carry
    different scopes.
    """

    name: str
    weight: int = 1
    quota: Optional[object] = None  # ClientQuota; untyped to avoid a cycle
    metadata: dict = field(default_factory=dict)
    scopes: Tuple[str, ...] = DEFAULT_SCOPES

    def has_scope(self, scope: str) -> bool:
        """Whether this identity's token covers ``scope`` (admin ⇒ all)."""
        return scope in self.scopes or "admin" in self.scopes


def _normalize_scopes(scopes: Optional[Iterable[str]]) -> Tuple[str, ...]:
    if scopes is None:
        return DEFAULT_SCOPES
    result = tuple(dict.fromkeys(scopes))  # dedupe, keep order
    for scope in result:
        if scope not in SCOPES:
            raise ServiceError(
                f"unknown scope {scope!r}; valid scopes: {', '.join(SCOPES)}"
            )
    if not result:
        raise ServiceError("a token must carry at least one scope")
    return result


class TokenAuthenticator:
    """Salted-digest token table with expiry, scopes and persistence.

    Parameters
    ----------
    allow_anonymous:
        When ``True`` (default ``False``), a missing token resolves to the
        shared ``"anonymous"`` identity instead of raising — convenient
        for single-tenant embedding, wrong for anything multi-tenant.
    store:
        Optional :class:`~repro.runtime.store.CacheStore`.  When given,
        the salt, token digests and name policies are persisted through
        it (and reloaded on construction), so registrations survive a
        restart.  Plaintext tokens are never stored.
    clock:
        Wall clock used for expiry checks (default :func:`time.time`).
        Injectable for tests.
    """

    #: Name every unauthenticated submission shares under allow_anonymous.
    ANONYMOUS = "anonymous"

    _SALT_KEY = ("auth", "salt")

    def __init__(
        self,
        allow_anonymous: bool = False,
        store: Optional[object] = None,
        clock=time.time,
    ) -> None:
        self.allow_anonymous = bool(allow_anonymous)
        self._clock = clock
        self._lock = threading.Lock()
        self._store = store
        # digest hex -> {"name": str, "scopes": tuple, "expires_at": float|None}
        self._tokens: Dict[str, dict] = {}
        # name -> {"weight": int, "quota": ..., "metadata": dict}
        self._policies: Dict[str, dict] = {}
        # allow_anonymous is for single-tenant embedding: the process
        # itself is the trusted owner, so anonymous carries every scope.
        # Real multi-tenancy turns anonymous off and scopes its tokens.
        self._anonymous = ClientIdentity(self.ANONYMOUS, scopes=SCOPES)
        self._salt = self._load_or_create_salt()
        if store is not None:
            self._load_records()

    # ------------------------------------------------------------------
    # persistence plumbing
    # ------------------------------------------------------------------

    def _load_or_create_salt(self) -> bytes:
        if self._store is not None:
            salt_hex = self._store.lookup(self._SALT_KEY)
            if isinstance(salt_hex, str):
                return bytes.fromhex(salt_hex)
        salt = secrets.token_bytes(16)
        if self._store is not None:
            self._store.store(self._SALT_KEY, salt.hex())
        return salt

    def _load_records(self) -> None:
        for key, value in self._store.items():
            if not (isinstance(key, tuple) and len(key) >= 2 and key[0] == "auth"):
                continue
            if key[1] == "token" and isinstance(value, dict):
                self._tokens[key[2]] = {
                    "name": value.get("name", ""),
                    "scopes": tuple(value.get("scopes", DEFAULT_SCOPES)),
                    "expires_at": value.get("expires_at"),
                }
            elif key[1] == "policy" and isinstance(value, dict):
                self._policies[key[2]] = {
                    "weight": int(value.get("weight", 1)),
                    "quota": value.get("quota"),
                    "metadata": dict(value.get("metadata", {})),
                }

    def _persist_token(self, digest: str) -> None:
        if self._store is not None:
            self._store.store(("auth", "token", digest), dict(self._tokens[digest]))

    def _persist_policy(self, name: str) -> None:
        if self._store is not None:
            self._store.store(("auth", "policy", name), dict(self._policies[name]))

    def _digest(self, token: str) -> str:
        return hashlib.sha256(self._salt + token.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        token: Optional[str] = None,
        weight: int = 1,
        quota: Optional[object] = None,
        scopes: Optional[Iterable[str]] = None,
        expires_in: Optional[float] = None,
        **metadata,
    ) -> str:
        """Register ``name`` and return its bearer token.

        ``token=None`` generates a fresh 32-hex-char secret.  Re-using a
        token for a second name is rejected — a token must resolve to
        exactly one identity.  Re-registering the *same* token is an
        explicit policy/scope/expiry update.  A *new* token for an
        existing name must agree with the name's current ``weight`` and
        ``quota``; a disagreement raises
        :class:`~repro.exceptions.RegistrationConflict` (update through
        the original token instead).

        ``scopes`` defaults to ``("submit", "read")``; ``expires_in`` is
        seconds-from-now on the authenticator's wall clock (``None`` =
        never expires).
        """
        if not isinstance(name, str) or not name:
            raise ServiceError(
                f"client name must be a non-empty string, got {name!r}"
            )
        if weight < 1:
            raise ServiceError(f"client weight must be positive, got {weight}")
        if expires_in is not None and expires_in <= 0:
            raise ServiceError(
                f"expires_in must be positive seconds, got {expires_in}"
            )
        scopes = _normalize_scopes(scopes)
        token = token if token is not None else secrets.token_hex(16)
        digest = self._digest(token)
        expires_at = (
            self._clock() + float(expires_in) if expires_in is not None else None
        )
        with self._lock:
            existing = self._tokens.get(digest)
            if existing is not None and existing["name"] != name:
                raise ServiceError(
                    f"token already registered to client {existing['name']!r}"
                )
            policy = self._policies.get(name)
            if existing is None and policy is not None:
                # A *new* token for a known name: policy must agree.
                if int(weight) != policy["weight"]:
                    raise RegistrationConflict(
                        f"client {name!r} is registered with weight "
                        f"{policy['weight']}, refusing a new token with "
                        f"weight {weight}; re-register the original token "
                        f"to update policy",
                        client=name,
                        field="weight",
                    )
                if quota != policy["quota"]:
                    raise RegistrationConflict(
                        f"client {name!r} is registered with a different "
                        f"quota; re-register the original token to update "
                        f"policy",
                        client=name,
                        field="quota",
                    )
            self._tokens[digest] = {
                "name": name,
                "scopes": scopes,
                "expires_at": expires_at,
            }
            self._policies[name] = {
                "weight": int(weight),
                "quota": quota,
                "metadata": dict(metadata),
            }
            self._persist_token(digest)
            self._persist_policy(name)
        return token

    def revoke(self, token: str) -> bool:
        """Forget ``token``; returns whether it was registered.

        The name's policy survives revocation — other tokens for the same
        client keep working, and a later re-registration resumes the same
        weight/quota without a conflict.
        """
        digest = self._digest(token)
        with self._lock:
            removed = self._tokens.pop(digest, None) is not None
            if removed and self._store is not None:
                self._store.remove(("auth", "token", digest))
            return removed

    def authenticate(
        self, token: Optional[str], scope: Optional[str] = None
    ) -> ClientIdentity:
        """Resolve ``token`` to its :class:`ClientIdentity`.

        When ``scope`` is given, the token must carry it (or ``admin``).

        Raises
        ------
        AuthenticationError
            For a missing token (unless ``allow_anonymous``), one that
            matches no registration, or one past its expiry.
        ScopeDenied
            For a valid token whose scopes do not cover ``scope``.
        """
        if token is None:
            if self.allow_anonymous:
                return self._check_scope(self._anonymous, scope)
            raise AuthenticationError(
                "no token supplied and anonymous access is disabled"
            )
        digest = self._digest(token)
        with self._lock:
            record = self._tokens.get(digest)
            if record is None:
                raise AuthenticationError("unknown token")
            expires_at = record["expires_at"]
            if expires_at is not None and self._clock() >= expires_at:
                # Expired tokens are dropped eagerly so the table (and its
                # persisted mirror) stays bounded by live registrations.
                del self._tokens[digest]
                if self._store is not None:
                    self._store.remove(("auth", "token", digest))
                raise AuthenticationError("token expired")
            name = record["name"]
            policy = self._policies.get(
                name, {"weight": 1, "quota": None, "metadata": {}}
            )
            identity = ClientIdentity(
                name=name,
                weight=policy["weight"],
                quota=policy["quota"],
                metadata=dict(policy["metadata"]),
                scopes=record["scopes"],
            )
        return self._check_scope(identity, scope)

    @staticmethod
    def _check_scope(
        identity: ClientIdentity, scope: Optional[str]
    ) -> ClientIdentity:
        if scope is not None and not identity.has_scope(scope):
            raise ScopeDenied(
                f"client {identity.name!r} token lacks scope {scope!r} "
                f"(granted: {', '.join(identity.scopes)})",
                client=identity.name,
                scope=scope,
                granted=identity.scopes,
            )
        return identity

    def clients(self) -> list:
        """Return the client names holding at least one live token."""
        with self._lock:
            return sorted({record["name"] for record in self._tokens.values()})
