"""Service-level observability: latency percentiles and counter rollups.

The scheduler already counts what *it* can see (queue depth, dispatches,
drops).  The service layer adds the tenant-facing view: per-client and
service-wide submission/rejection/completion counters, queue-latency
percentiles (p50/p99 over a bounded sample window) and a completion-rate
estimate — everything :meth:`RuntimeService.stats` snapshots and the
storm benchmark asserts on.

All structures are thread-safe: samples arrive from dispatcher and
executor callback threads while ``stats()`` reads from anywhere.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Dict, Optional


def _nearest_rank(samples, percent: float) -> float:
    """Nearest-rank percentile over an already-sorted non-empty sample list."""
    rank = max(1, math.ceil(percent / 100.0 * len(samples)))
    return samples[min(rank, len(samples)) - 1]


class LatencyWindow:
    """A bounded window of latency samples with percentile queries.

    The window keeps the most recent ``maxlen`` samples — a service cares
    about *current* tail latency, not the all-time distribution — plus a
    lifetime count/max so long-gone spikes still show in ``max_s``.
    Snapshots report the two populations separately: ``mean_s`` and the
    percentiles describe the ``window_count`` retained samples, while
    ``total_count`` is the lifetime number of samples ever added (so
    ``mean_s * window_count`` is a real sum, which a single ``count``
    field covering both could not promise once the window wrapped).
    """

    def __init__(self, maxlen: int = 4096) -> None:
        self._samples = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self._count = 0
        self._max = 0.0

    def add(self, seconds: float) -> None:
        if not math.isfinite(seconds) or seconds < 0:
            return
        with self._lock:
            self._samples.append(float(seconds))
            self._count += 1
            self._max = max(self._max, float(seconds))

    def percentile(self, percent: float) -> Optional[float]:
        """Return the ``percent``-th percentile (nearest-rank), or ``None``
        when no samples have arrived.

        ``percent`` must lie in ``(0, 100]``: the nearest-rank definition
        has no 0th percentile, and silently returning the minimum sample
        for ``percentile(0)`` hid caller bugs.
        """
        if not 0.0 < percent <= 100.0:
            raise ValueError(
                f"percent must be in (0, 100], got {percent!r}"
            )
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return None
        return _nearest_rank(samples, percent)

    def snapshot(self) -> dict:
        """Return ``{window_count, total_count, mean_s, p50_s, p99_s,
        max_s}``; the mean and percentiles cover the retained window, the
        max is lifetime."""
        with self._lock:
            samples = sorted(self._samples)
            total, maximum = self._count, self._max
        if not samples:
            return {"window_count": 0, "total_count": total, "mean_s": None,
                    "p50_s": None, "p99_s": None, "max_s": None}
        return {
            "window_count": len(samples),
            "total_count": total,
            "mean_s": sum(samples) / len(samples),
            "p50_s": _nearest_rank(samples, 50.0),
            "p99_s": _nearest_rank(samples, 99.0),
            "max_s": maximum,
        }


class RateMeter:
    """Completions-per-second over a sliding wall-clock window."""

    def __init__(self, window_seconds: float = 60.0, clock=time.monotonic) -> None:
        self.window = float(window_seconds)
        self._clock = clock
        self._events = deque()
        self._lock = threading.Lock()
        self._total = 0
        self._started = clock()

    def tick(self, count: int = 1) -> None:
        now = self._clock()
        with self._lock:
            self._events.append((now, int(count)))
            self._total += int(count)
            self._trim(now)

    def _trim(self, now: float) -> None:
        horizon = now - self.window
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def rate(self) -> float:
        """Events per second over the (elapsed part of the) window.

        The denominator is the elapsed time since the meter started,
        capped at the window length — never the span between the oldest
        retained event and now.  A since-first-event denominator collapses
        to ~0 with a single event in the window, reporting one completion
        as ~1e9 events/sec; elapsed-since-start keeps early-window rates
        sane (one completion five seconds into the window is 0.2/sec) and
        converges to the plain sliding-window rate once the meter has run
        a full window.
        """
        now = self._clock()
        with self._lock:
            self._trim(now)
            if not self._events:
                return 0.0
            span = min(max(now - self._started, 1e-9), self.window)
            return sum(count for _stamp, count in self._events) / span

    @property
    def total(self) -> int:
        with self._lock:
            return self._total


class ClientStats:
    """One client's service-side counters (all mutations under one lock)."""

    FIELDS = (
        "submitted_batches",
        "submitted_jobs",
        "completed_batches",
        "completed_jobs",
        "failed_batches",
        "cancelled_batches",
        "dropped_batches",
        "rejected_quota",
        "rejected_rate",
        "rejected_overload",
        "queued_waits",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {field: 0 for field in self.FIELDS}
        self.queue_latency = LatencyWindow()

    def bump(self, field: str, count: int = 1) -> None:
        if field not in self._counters:
            raise ValueError(
                f"unknown counter {field!r}; valid fields: "
                f"{', '.join(self.FIELDS)}"
            )
        with self._lock:
            self._counters[field] += count

    def get(self, field: str) -> int:
        with self._lock:
            return self._counters[field]

    def snapshot(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
        counters["queue_latency"] = self.queue_latency.snapshot()
        return counters
