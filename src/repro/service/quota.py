"""Per-client quotas and token-bucket rate limiting.

Two admission dimensions, both enforced at ``submit()`` time by
:class:`~repro.service.service.RuntimeService`:

* **Concurrency** — ``max_in_flight_jobs`` bounds how many of a client's
  circuits may be queued-or-running at once (the scheduler's global
  ``max_in_flight`` protects the *machine*; this protects *other
  clients* from one tenant monopolising the queue).
* **Throughput** — ``shots_per_second`` is a classic token bucket over
  submitted shots: capacity ``burst_shots`` refills at the configured
  rate, every submission charges ``shots x circuits`` tokens, and an
  empty bucket means the submission is over rate.

What happens when a limit is hit is the client's ``over_quota`` policy:
``"reject"`` raises a typed error immediately (:class:`QuotaExceeded` /
:class:`RateLimited`, the latter carrying ``retry_after`` seconds), and
``"queue"`` makes the async front-end wait — backpressure instead of
errors — without ever blocking the event loop.

The bucket takes an injectable clock so tests drive time by hand.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ServiceError

#: Over-quota policies: fail fast, or apply backpressure.
OVER_QUOTA_POLICIES = ("reject", "queue")


class QuotaExceeded(ServiceError):
    """Raised when a submission would exceed a concurrency quota."""

    def __init__(self, message: str, client: str = "", in_flight: int = 0,
                 limit: int = 0) -> None:
        super().__init__(message)
        self.client = client
        self.in_flight = in_flight
        self.limit = limit


class RateLimited(ServiceError):
    """Raised when a submission exceeds the client's shots/sec budget.

    ``retry_after`` is the seconds until the token bucket holds enough
    for this submission — the value an HTTP front-end would surface as a
    ``Retry-After`` header.
    """

    def __init__(self, message: str, client: str = "",
                 retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.client = client
        self.retry_after = retry_after


@dataclass(frozen=True)
class ClientQuota:
    """One client's admission policy (``None`` fields are unlimited).

    ``burst_shots`` defaults to one second's worth of shots; submissions
    larger than the burst are still admitted from a full bucket (the
    bucket goes into debt, suppressing later submissions) so a single
    legitimately large batch cannot be starved forever.
    """

    max_in_flight_jobs: Optional[int] = None
    shots_per_second: Optional[float] = None
    burst_shots: Optional[float] = None
    over_quota: str = "reject"

    def __post_init__(self) -> None:
        if self.over_quota not in OVER_QUOTA_POLICIES:
            raise ServiceError(
                f"unknown over_quota policy {self.over_quota!r}; "
                f"choose from {list(OVER_QUOTA_POLICIES)}"
            )
        if self.max_in_flight_jobs is not None and self.max_in_flight_jobs < 1:
            raise ServiceError(
                f"max_in_flight_jobs must be positive, got "
                f"{self.max_in_flight_jobs}"
            )
        if self.shots_per_second is not None and self.shots_per_second <= 0:
            raise ServiceError(
                f"shots_per_second must be positive, got {self.shots_per_second}"
            )
        if self.burst_shots is not None and self.burst_shots <= 0:
            raise ServiceError(
                f"burst_shots must be positive, got {self.burst_shots}"
            )


#: The default policy: everything unlimited, reject on (unreachable) limits.
UNLIMITED = ClientQuota()


class TokenBucket:
    """A thread-safe token bucket with an injectable monotonic clock.

    ``capacity`` tokens refill at ``rate`` per second.  :meth:`acquire`
    charges ``amount`` and returns 0.0 when granted, else the seconds
    until enough tokens will have refilled (the caller's retry-after).
    An ``amount`` above ``capacity`` is granted from a full bucket and
    drives the level negative (bounded debt) rather than deadlocking.
    """

    def __init__(self, rate: float, capacity: Optional[float] = None,
                 clock=time.monotonic) -> None:
        if rate <= 0:
            raise ServiceError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.capacity = float(capacity) if capacity is not None else float(rate)
        if self.capacity <= 0:
            raise ServiceError(f"capacity must be positive, got {capacity}")
        self._clock = clock
        self._tokens = self.capacity
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._updated = now

    def acquire(self, amount: float) -> float:
        """Try to take ``amount`` tokens; return 0.0 or the retry-after."""
        if amount <= 0:
            return 0.0
        with self._lock:
            now = self._clock()
            self._refill(now)
            # A request larger than the whole burst passes from a full
            # bucket (debt model) so it cannot be starved forever.
            needed = min(float(amount), self.capacity)
            if self._tokens >= needed:
                self._tokens -= float(amount)
                return 0.0
            return (needed - self._tokens) / self.rate

    def credit(self, amount: float) -> None:
        """Return ``amount`` tokens (refund for an admitted submission
        that failed downstream), capped at ``capacity``."""
        if amount <= 0:
            return
        with self._lock:
            self._refill(self._clock())
            self._tokens = min(self.capacity, self._tokens + float(amount))

    @property
    def tokens(self) -> float:
        """Current token level (refilled to now; may be negative)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens
