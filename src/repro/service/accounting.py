"""Per-tenant cost accounting: measured spend feeding fair-share weights.

The scheduler's weighted round-robin treats a tenant's configured weight
as ground truth, but weights are set at registration time — before
anyone knows what the tenant's workload actually costs.  This module
closes the loop in the spirit of profile-guided optimization: every
settled job charges its tenant's ledger with the shots it ran and (when
the :class:`~repro.runtime.profile.CostModel` has measured the workload)
the estimated seconds those shots cost, and
:meth:`CostLedger.effective_weight` turns relative spend into a weight
adjustment the service can feed back into
:meth:`~repro.runtime.scheduler.Scheduler.client`.

Ledgers persist through a :class:`~repro.runtime.store.CacheStore` disk
tier under ``<cache_dir>/service/accounting/``, alongside the job
journal, so a restarted service resumes accounting where it left off.

The feedback policy is deliberately conservative:

* with fewer than two tenants that have any spend there is nothing to
  balance — the configured weight stands;
* spend is compared as a ratio to the *mean* spend, so the adjustment is
  scale-free (doubling everyone's traffic changes nothing);
* the result is clamped to ``[1, 4 × base]`` — accounting nudges shares,
  it never starves a tenant to zero or lets a light tenant monopolise.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.runtime.store import CacheStore

#: Ledger records live under this namespace inside the shared cache dir.
ACCOUNTING_NAMESPACE = "service/accounting"

#: effective_weight never exceeds ``base * WEIGHT_CLAMP`` (nor drops below 1).
WEIGHT_CLAMP = 4


class CostLedger:
    """Per-tenant spend totals (shots, estimated seconds, jobs).

    Parameters
    ----------
    cache_dir:
        Parent cache directory (ledgers live in
        ``<cache_dir>/service/accounting/``).  Ignored when ``store`` is
        given; ``None`` keeps the ledger memory-only.
    store:
        A pre-built :class:`~repro.runtime.store.CacheStore` to persist
        through.

    Thread-safe: charges arrive from executor settlement threads while
    snapshots are read from anywhere.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        store: Optional[CacheStore] = None,
        maxsize: int = 1024,
    ) -> None:
        if store is None:
            store = CacheStore(
                maxsize=maxsize,
                cache_dir=cache_dir,
                namespace=ACCOUNTING_NAMESPACE,
                disk_maxsize=None,  # one record per tenant; never evict
            )
        self._store = store
        self._lock = threading.Lock()
        self._ledgers: Dict[str, dict] = {}
        for key, value in store.items():
            if (
                isinstance(key, tuple)
                and len(key) == 2
                and key[0] == "ledger"
                and isinstance(value, dict)
            ):
                self._ledgers[key[1]] = {
                    "shots": int(value.get("shots", 0)),
                    "cost_s": float(value.get("cost_s", 0.0)),
                    "jobs": int(value.get("jobs", 0)),
                    "updated_at": value.get("updated_at"),
                }

    @property
    def durable(self) -> bool:
        """Whether ledgers reach disk (``False`` = memory-only)."""
        return self._store.disk is not None

    def charge(
        self, client: str, shots: int, cost_s: Optional[float] = None
    ) -> dict:
        """Add one settled job's spend to ``client``'s ledger.

        ``cost_s`` is the cost model's estimate for the job in seconds,
        or ``None`` when the workload has never been measured — the shots
        still count, so accounting works before profiles warm up.
        Returns a copy of the updated ledger.
        """
        with self._lock:
            ledger = self._ledgers.setdefault(
                client, {"shots": 0, "cost_s": 0.0, "jobs": 0,
                         "updated_at": None}
            )
            ledger["shots"] += max(0, int(shots))
            if cost_s is not None and cost_s > 0:
                ledger["cost_s"] += float(cost_s)
            ledger["jobs"] += 1
            ledger["updated_at"] = time.time()
            snapshot = dict(ledger)
        self._store.store(("ledger", client), snapshot)
        return snapshot

    def spend(self, client: str) -> Optional[dict]:
        """Return a copy of ``client``'s ledger, or ``None``."""
        with self._lock:
            ledger = self._ledgers.get(client)
            return dict(ledger) if ledger is not None else None

    def snapshot(self) -> Dict[str, dict]:
        """Return copies of every tenant's ledger, keyed by name."""
        with self._lock:
            return {name: dict(ledger) for name, ledger in self._ledgers.items()}

    def effective_weight(self, client: str, base: int) -> int:
        """Derive a fair-share weight for ``client`` from relative spend.

        Heavy spenders (relative to the mean across tenants with any
        spend) get their configured ``base`` weight scaled *down*, light
        spenders scaled *up*, clamped to ``[1, base * WEIGHT_CLAMP]``.
        Seconds (measured cost) are preferred over raw shots as the spend
        metric as soon as any tenant has a measured cost.
        """
        base = max(1, int(base))
        with self._lock:
            ledgers = {name: dict(l) for name, l in self._ledgers.items()}
        use_cost = any(l["cost_s"] > 0 for l in ledgers.values())
        metric = "cost_s" if use_cost else "shots"
        spends = {n: l[metric] for n, l in ledgers.items() if l[metric] > 0}
        if len(spends) < 2:
            return base
        own = spends.get(client, 0.0)
        mean = sum(spends.values()) / len(spends)
        if own <= 0 or mean <= 0:
            return base * WEIGHT_CLAMP
        ratio = own / mean
        return max(1, min(base * WEIGHT_CLAMP, round(base / ratio)))
