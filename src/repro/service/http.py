"""HTTP/1.1 transport front-end for :class:`RuntimeService`.

Everything below :mod:`repro.service.service` is in-process: a tenant
needs a Python interpreter inside the service's address space to submit
work.  This module puts the service on the wire — a stdlib-only asyncio
HTTP/1.1 server speaking JSON, so any process with a socket (``curl``,
the bundled :class:`~repro.service.client.ServiceClient`, a browser) can
submit circuits, poll ids and stream completions::

    service = RuntimeService(allow_anonymous=False)
    token = service.register_client("alice", scopes=("submit", "read"))
    server = await serve(service, "127.0.0.1", 8080)

    $ curl -H "Authorization: Bearer $TOKEN" \\
        -d '{"circuits": "<qasm>", "backend": "noisy:ibmqx4", \\
             "shots": 1024, "seed": 7}' http://127.0.0.1:8080/v1/jobs

Endpoints (all JSON unless noted)::

    POST /v1/jobs                  submit QASM circuits -> 201 {job_id,...}
    GET  /v1/jobs/{id}             status snapshot for a svc-N id
    GET  /v1/jobs/{id}/result      await + return [{counts, shots, metadata}]
    GET  /v1/jobs/{id}/counts      await + return the histograms only
    GET  /v1/jobs/{id}/events      Server-Sent Events completion stream
    GET  /v1/jobs/{id}/trace       trace span tree (owner or admin)
    GET  /v1/stats                 service stats() snapshot (admin scope)
    GET  /v1/metrics               Prometheus text exposition (admin scope)
    GET  /v1/healthz               liveness probe (no auth)
    GET  /v1/health                readiness + degradation detail (no auth;
                                   503 + Retry-After while draining/shedding)

``/result``, ``/counts`` and ``/events`` accept ``?timeout=SECONDS``.
Circuits travel as OpenQASM 2.0 text (:mod:`repro.circuits.qasm`), so the
wire format is engine-agnostic and the counts a remote client reads back
are bit-identical to an in-process :func:`repro.runtime.execute.execute`
of the same circuit/backend/shots/seed — the transport, like the service,
decides *when* and *whether*, never *what*.

Authentication is the service's own bearer-token scheme: the
``Authorization: Bearer <token>`` header value is handed verbatim to
:class:`~repro.service.auth.TokenAuthenticator` (absent header = the
anonymous identity, if the service allows it).  Typed service errors map
onto HTTP status codes through one table (:data:`ERROR_STATUS`) and every
error body has the same shape::

    {"error": {"type": "RateLimited", "message": "...", "retry_after": 1.5}}

with rate limits additionally answering a ``Retry-After`` header computed
from the token bucket — measured truth, not a canned backoff hint.

This is HTTP/1.1 with keep-alive and chunked responses only where needed
(the SSE stream); request bodies must carry ``Content-Length``.  TLS and
real credential management stay out of scope, exactly like
:mod:`repro.service.auth` documents.
"""

from __future__ import annotations

import asyncio
import json
import math
import re
import threading
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import faults
from repro.circuits.qasm import circuit_from_qasm
from repro.runtime import get_backend
from repro.exceptions import (
    CircuitError,
    CircuitOpen,
    JobError,
    ProviderError,
    QasmError,
    QueueTimeout,
    ScopeDenied,
    ServiceError,
    ServiceOverloaded,
    UnknownJob,
)
from repro.service.auth import AuthenticationError
from repro.service.quota import QuotaExceeded, RateLimited
from repro.service.service import RuntimeService, ServiceJob

#: The typed-error → HTTP status table, first match wins (subclasses
#: before their bases: ``QueueTimeout`` < ``JobError``, the service
#: errors < ``ServiceError``).  The client reverses this mapping from the
#: ``error.type`` field, so both ends speak the same exceptions.
ERROR_STATUS: Tuple[Tuple[type, int], ...] = (
    (RateLimited, 429),       # + Retry-After header from the token bucket
    (QuotaExceeded, 429),
    (ServiceOverloaded, 503),  # + Retry-After; load shedding / draining
    (CircuitOpen, 503),        # + Retry-After from the breaker cooldown
    (AuthenticationError, 401),
    (ScopeDenied, 403),
    (UnknownJob, 404),
    (QueueTimeout, 504),
    (QasmError, 400),         # unparsable circuit payload
    (CircuitError, 400),
    (ProviderError, 400),     # unknown backend spec
    (ServiceError, 400),      # residual service misuse (bad registration...)
    (ValueError, 400),
    (TypeError, 400),
    (JobError, 500),          # the job itself failed
)

#: Error attributes forwarded into the wire body when set, so typed
#: telemetry (retry seconds, queue position, granted scopes) survives the
#: hop and the client can rebuild the exception faithfully.
_ERROR_ATTRS = (
    "retry_after", "client", "scope", "granted", "in_flight", "limit",
    "waited", "queue_position", "queued_batches", "job_id",
    "queue_depth", "reason", "backend",
)

#: Submission payload fields; anything else is a 400 so typos fail loudly.
_SUBMIT_FIELDS = {"circuits", "backend", "shots", "seed", "priority"}

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 401: "Unauthorized",
    403: "Forbidden", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Hard cap on request bodies; a QASM batch is kilobytes, so anything
#: near this is abuse, not physics.
MAX_BODY_BYTES = 8 * 1024 * 1024

_MAX_HEADERS = 100

_JOB_PATH = re.compile(r"/v1/jobs/([^/]+)(?:/(result|counts|events|trace))?")


def status_for(exc: BaseException) -> int:
    """Return the HTTP status for ``exc`` per :data:`ERROR_STATUS`."""
    for cls, status in ERROR_STATUS:
        if isinstance(exc, cls):
            return status
    return 500


def error_body(exc: BaseException) -> dict:
    """Build the standard ``{"error": {...}}`` wire body for ``exc``."""
    info: Dict[str, object] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    for attr in _ERROR_ATTRS:
        value = getattr(exc, attr, None)
        if value is None or value == "" or value == ():
            continue
        info[attr] = list(value) if isinstance(value, tuple) else value
    return {"error": info}


class _HttpError(Exception):
    """An error already resolved to a status + wire body (transport-level
    parse failures, 404/405 routing, and remapped wait timeouts)."""

    def __init__(self, status: int, body: Optional[dict] = None,
                 message: str = "") -> None:
        super().__init__(message or (body or {}).get("error", {}).get("message", ""))
        self.status = status
        self.body = body if body is not None else {
            "error": {"type": "BadRequest", "message": message}
        }


class _Request:
    """One parsed request: method, split target, headers, raw body."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, target: str, headers: Dict[str, str],
                 body: bytes) -> None:
        url = urlsplit(target)
        self.method = method
        self.path = url.path
        self.query = parse_qs(url.query)
        self.headers = headers
        self.body = body

    def timeout(self) -> Optional[float]:
        """The ``?timeout=SECONDS`` parameter, validated."""
        values = self.query.get("timeout")
        if not values:
            return None
        try:
            timeout = float(values[-1])
        except ValueError:
            raise ValueError(
                f"timeout must be a number of seconds, got {values[-1]!r}"
            ) from None
        if not math.isfinite(timeout) or timeout < 0:
            raise ValueError(
                f"timeout must be finite and non-negative, got {timeout}"
            )
        return timeout

    def keep_alive(self) -> bool:
        """Whether the client wants the connection kept after this response."""
        return self.headers.get("connection", "").lower() != "close"

    def bearer_token(self) -> Optional[str]:
        """Extract the ``Authorization: Bearer`` token (``None`` = absent)."""
        header = self.headers.get("authorization")
        if header is None:
            return None
        scheme, _, value = header.partition(" ")
        if scheme.lower() != "bearer" or not value.strip():
            raise AuthenticationError(
                "malformed Authorization header; expected 'Bearer <token>'"
            )
        return value.strip()


class ServiceServer:
    """The asyncio HTTP server wrapping one :class:`RuntimeService`.

    Construct, then ``await start()`` on the loop the service should bind
    to; ``port`` reports the actually-bound port (pass ``port=0`` for an
    OS-assigned one).  One server per service: requests run as plain
    coroutines on the service's loop, so every in-process invariant
    (admission under the service lock, settlement on the loop) holds for
    wire traffic too.
    """

    def __init__(self, service: RuntimeService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "ServiceServer":
        if self._server is not None:
            raise ServiceError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        return self

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def __aenter__(self) -> "ServiceServer":
        if self._server is None:
            await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- connection plumbing ---------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        if faults.should_fail("http.accept"):
            # Chaos hook: drop the connection on the floor, exactly like
            # an accept under memory pressure — clients see a reset and
            # must reconnect/retry.
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await _send_json(writer, exc.status, exc.body,
                                     keep_alive=False)
                    return
                if request is None:
                    return
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError, TimeoutError):
            pass  # peer went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None  # clean EOF between keep-alive requests
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise _HttpError(400, message=f"malformed request line {line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                return None  # EOF mid-headers: treat as a dropped peer
            if len(headers) >= _MAX_HEADERS:
                raise _HttpError(400, message="too many headers")
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, message=f"malformed header {raw!r}")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(400, message="malformed Content-Length") from None
            if length < 0:
                raise _HttpError(400, message="malformed Content-Length")
            if length > MAX_BODY_BYTES:
                raise _HttpError(
                    413, message=f"request body over {MAX_BODY_BYTES} bytes"
                )
            body = await reader.readexactly(length)
        elif headers.get("transfer-encoding"):
            raise _HttpError(
                400, message="chunked request bodies are not supported; "
                "send Content-Length"
            )
        return _Request(method, target, headers, body)

    # -- routing ---------------------------------------------------------

    async def _dispatch(self, request: _Request,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns whether to keep the connection.

        A client that sent ``Connection: close`` gets the same header
        echoed back and the connection torn down after the response.
        """
        keep = request.headers.get("connection", "").lower() != "close"
        try:
            handler, args = self._route(request)
            return await handler(request, writer, *args) and keep
        except _HttpError as exc:
            await _send_json(writer, exc.status, exc.body, keep_alive=keep)
            return keep
        except Exception as exc:  # the typed table, then a generic 500
            status = status_for(exc)
            headers = {}
            if isinstance(exc, (RateLimited, ServiceOverloaded, CircuitOpen)):
                headers["Retry-After"] = _retry_after_header(exc.retry_after)
            await _send_json(writer, status, error_body(exc),
                             extra_headers=headers, keep_alive=keep)
            return keep

    def _route(self, request: _Request) -> Tuple[Callable, tuple]:
        path = request.path
        if path == "/v1/healthz":
            self._require_method(request, "GET")
            return self._handle_healthz, ()
        if path == "/v1/health":
            self._require_method(request, "GET")
            return self._handle_health, ()
        if path == "/v1/jobs":
            self._require_method(request, "POST")
            return self._handle_submit, ()
        match = _JOB_PATH.fullmatch(path)
        if match:
            self._require_method(request, "GET")
            job_id, view = match.groups()
            handler = {
                None: self._handle_status,
                "result": self._handle_result,
                "counts": self._handle_counts,
                "events": self._handle_events,
                "trace": self._handle_trace,
            }[view]
            return handler, (job_id,)
        if path == "/v1/stats":
            self._require_method(request, "GET")
            return self._handle_stats, ()
        if path == "/v1/metrics":
            self._require_method(request, "GET")
            return self._handle_metrics, ()
        raise _HttpError(404, {
            "error": {"type": "NotFound", "message": f"no route for {path!r}"}
        })

    @staticmethod
    def _require_method(request: _Request, method: str) -> None:
        if request.method != method:
            raise _HttpError(405, {
                "error": {
                    "type": "MethodNotAllowed",
                    "message": f"{request.path} only accepts {method}",
                }
            })

    # -- handlers --------------------------------------------------------

    async def _handle_healthz(self, request: _Request,
                              writer: asyncio.StreamWriter) -> bool:
        await _send_json(writer, 200, {"ok": True},
                         keep_alive=request.keep_alive())
        return True

    async def _handle_health(self, request: _Request,
                             writer: asyncio.StreamWriter) -> bool:
        """Readiness probe: the service's ``health()`` report, unauthed.

        200 while the service would accept a submission; 503 with a
        ``Retry-After`` header while draining or shedding load — the
        shape load balancers and orchestrators expect, with the breaker
        /pool/journal detail in the body for humans.
        """
        report = self.service.health()
        status = 200 if report["ready"] else 503
        headers = {}
        if not report["ready"]:
            headers["Retry-After"] = _retry_after_header(
                report.get("retry_after", 1.0)
            )
        await _send_json(writer, status, _json_safe(report),
                         extra_headers=headers,
                         keep_alive=request.keep_alive())
        return True

    async def _handle_submit(self, request: _Request,
                             writer: asyncio.StreamWriter) -> bool:
        token = request.bearer_token()
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body must be a JSON object: {exc}") from None
        if not isinstance(payload, dict):
            raise ValueError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - _SUBMIT_FIELDS
        if unknown:
            raise ValueError(
                f"unknown submission field(s) {sorted(unknown)}; valid "
                f"fields: {sorted(_SUBMIT_FIELDS)}"
            )
        qasm = payload.get("circuits")
        single = isinstance(qasm, str)
        sources = [qasm] if single else qasm
        if (not isinstance(sources, list) or not sources
                or not all(isinstance(q, str) for q in sources)):
            raise ValueError(
                "'circuits' must be an OpenQASM 2.0 string or a non-empty "
                "list of them"
            )
        circuits = [circuit_from_qasm(q) for q in sources]
        backend = payload.get("backend")
        if not isinstance(backend, str) or not backend:
            raise ValueError("'backend' must be a backend spec string, e.g. "
                             "'statevector' or 'noisy:ibmqx4'")
        # Resolve eagerly: an unknown spec is this request's 400, not a
        # failed job the tenant discovers at collection time.
        get_backend(backend)
        shots = _validate_int_or_list(payload.get("shots", 1024), "shots")
        seed = payload.get("seed")
        if seed is not None:
            seed = _validate_int_or_list(seed, "seed")
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ValueError(f"'priority' must be an integer, got {priority!r}")
        handle = await self.service.submit(
            circuits[0] if single else circuits, backend, shots=shots,
            seed=seed, token=token, priority=priority,
        )
        await _send_json(writer, 201, {
            "job_id": handle.job_id,
            "status": handle.status(),
            "client": handle.client,
            "size": handle.size,
        }, keep_alive=request.keep_alive())
        return True

    async def _handle_status(self, request: _Request,
                             writer: asyncio.StreamWriter,
                             job_id: str) -> bool:
        handle = self.service.job(job_id, request.bearer_token())
        await _send_json(writer, 200, {
            "job_id": handle.job_id,
            "status": handle.status(),
            "done": handle.done(),
            "client": handle.client,
            "size": handle.size,
        }, keep_alive=request.keep_alive())
        return True

    async def _collect(self, request: _Request, job_id: str):
        """Shared await-the-results path for ``/result`` and ``/counts``.

        A wait that times out while the job is genuinely still queued or
        running answers 504 (same as a queue-deadline drop) rather than
        the generic JobError 500 — the request timed out, the job did not
        fail.
        """
        handle = self.service.job(job_id, request.bearer_token())
        timeout = request.timeout()
        try:
            return handle, await handle.result(timeout)
        except QueueTimeout:
            raise
        except JobError as exc:
            if not handle.done() and handle.status() in ("queued", "running"):
                raise _HttpError(504, error_body(exc)) from exc
            raise

    async def _handle_result(self, request: _Request,
                             writer: asyncio.StreamWriter,
                             job_id: str) -> bool:
        handle, results = await self._collect(request, job_id)
        await _send_json(writer, 200, {
            "job_id": handle.job_id,
            "status": handle.status(),
            "results": [
                {
                    "counts": dict(result.counts),
                    "shots": result.shots,
                    "metadata": _json_safe(result.metadata),
                }
                for result in results
            ],
        }, keep_alive=request.keep_alive())
        return True

    async def _handle_counts(self, request: _Request,
                             writer: asyncio.StreamWriter,
                             job_id: str) -> bool:
        handle, results = await self._collect(request, job_id)
        await _send_json(writer, 200, {
            "job_id": handle.job_id,
            "counts": [dict(result.counts) for result in results],
        }, keep_alive=request.keep_alive())
        return True

    async def _handle_trace(self, request: _Request,
                            writer: asyncio.StreamWriter,
                            job_id: str) -> bool:
        # service.trace() reuses the owner-or-admin job() lookup, so the
        # wire endpoint inherits exactly the per-job read policy — and
        # answers journaled traces for recovered pre-restart ids.
        trace = self.service.trace(job_id, request.bearer_token())
        await _send_json(writer, 200, {
            "job_id": job_id,
            "trace": _json_safe(trace),
        }, keep_alive=request.keep_alive())
        return True

    async def _handle_metrics(self, request: _Request,
                              writer: asyncio.StreamWriter) -> bool:
        # Same tenant-boundary argument as /v1/stats: registry metrics
        # aggregate every client's traffic, so scraping needs admin.
        self.service.authenticator.authenticate(
            request.bearer_token(), scope="admin"
        )
        from repro.obs.metrics import DEFAULT_REGISTRY

        await _send_text(
            writer, 200, DEFAULT_REGISTRY.render_prometheus(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
            keep_alive=request.keep_alive(),
        )
        return True

    async def _handle_stats(self, request: _Request,
                            writer: asyncio.StreamWriter) -> bool:
        # Service-wide numbers cross tenant boundaries: admin only (the
        # anonymous identity of a single-tenant service carries it).
        self.service.authenticator.authenticate(
            request.bearer_token(), scope="admin"
        )
        await _send_json(writer, 200, _json_safe(self.service.stats()),
                         keep_alive=request.keep_alive())
        return True

    async def _handle_events(self, request: _Request,
                             writer: asyncio.StreamWriter,
                             job_id: str) -> bool:
        """Stream a job's completions as Server-Sent Events.

        One ``job`` event per finished runtime job (completion order, the
        async counterpart of ``as_completed()``), then one terminal
        ``settled`` event.  Typed errors *before* the stream starts map
        through the normal status table; errors mid-stream (the response
        status is already on the wire) become a final ``error`` event
        carrying the same body the plain endpoints would have returned.
        """
        handle = self.service.job(job_id, request.bearer_token())
        timeout = request.timeout()
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        async def emit(event: str, data: dict) -> None:
            frame = f"event: {event}\ndata: {json.dumps(_json_safe(data))}\n\n"
            payload = frame.encode("utf-8")
            writer.write(f"{len(payload):x}\r\n".encode("ascii"))
            writer.write(payload + b"\r\n")
            await writer.drain()

        try:
            if isinstance(handle, ServiceJob):
                index = 0
                async for job in handle.as_completed(timeout):
                    await emit("job", {
                        "index": index,
                        "status": job.status().value,
                        "circuit": getattr(job.circuit, "name", None),
                    })
                    index += 1
            await handle.wait(timeout)
            await emit("settled", {
                "job_id": handle.job_id,
                "status": handle.status(),
            })
        except (JobError, ServiceError) as exc:
            await emit("error", {
                **error_body(exc)["error"],
                "http_status": status_for(exc),
            })
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return False  # SSE responses close the connection


async def serve(service: RuntimeService, host: str = "127.0.0.1",
                port: int = 0, recover: bool = True) -> ServiceServer:
    """Start (and return) a :class:`ServiceServer` for ``service``.

    With ``recover=True`` (the default) a journaled service replays its
    journal first, so pre-restart ``svc-N`` ids resolve over the wire
    from the very first request the fresh process answers.
    """
    if recover and service.journal is not None:
        await service.recover()
    server = ServiceServer(service, host, port)
    await server.start()
    return server


class BackgroundServer:
    """Run a :class:`ServiceServer` on a dedicated event-loop thread.

    For synchronous embeddings — benchmarks, tests, driving a service
    from a plain script: the server (and therefore the service) gets its
    own loop on a daemon thread; :meth:`start` blocks until the port is
    bound, :meth:`stop` shuts the server down and (by default) closes the
    service with it.  Usable as a context manager.
    """

    def __init__(self, service: RuntimeService, host: str = "127.0.0.1",
                 port: int = 0, recover: bool = True) -> None:
        self.service = service
        self._host = host
        self._port = port
        self._recover = recover
        self._server: Optional[ServiceServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._close_service = True

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(60):
            raise ServiceError("HTTP server failed to start within 60s")
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures to start()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await serve(
            self.service, self._host, self._port, recover=self._recover
        )
        self._ready.set()
        await self._stop.wait()
        await self._server.close()
        if self._close_service:
            await self.service.close()

    @property
    def url(self) -> str:
        return self._server.url

    @property
    def port(self) -> int:
        return self._server.port

    def stop(self, close_service: bool = True) -> None:
        """Stop the server thread; ``close_service=False`` leaves the
        service's scheduler running for the caller to reuse."""
        if self._thread is None or self._loop is None:
            return
        self._close_service = close_service
        try:
            self._loop.call_soon_threadsafe(self._stop.set)
        except RuntimeError:
            pass  # loop already gone (startup failure path)
        self._thread.join(timeout=60)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _retry_after_header(retry_after: float) -> str:
    """Render the bucket's refill estimate as a Retry-After header value.

    HTTP Retry-After is integer seconds; round *up* so a client honouring
    it never retries into a still-empty bucket.
    """
    return str(max(1, math.ceil(retry_after)))


def _validate_int_or_list(value, field: str):
    """Validate a wire field that may be one int or a per-circuit list."""
    if isinstance(value, bool):
        raise ValueError(f"{field!r} must be an integer, got {value!r}")
    if isinstance(value, int):
        return value
    if (isinstance(value, list) and value
            and all(isinstance(v, int) and not isinstance(v, bool)
                    for v in value)):
        return value
    raise ValueError(
        f"{field!r} must be an integer or a non-empty list of integers, "
        f"got {value!r}"
    )


def _json_safe(value):
    """Recursively coerce ``value`` into JSON-serializable primitives.

    Result metadata may carry arbitrary objects (numpy scalars, enum
    members); the wire view stringifies what it cannot represent instead
    of failing the whole response.
    """
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        try:
            return _json_safe(value.item())
        except Exception:
            pass
    return str(value)


async def _send_json(writer: asyncio.StreamWriter, status: int, payload: dict,
                     extra_headers: Optional[Dict[str, str]] = None,
                     keep_alive: bool = True) -> None:
    await _send_body(
        writer, status, json.dumps(payload).encode("utf-8"),
        "application/json", extra_headers, keep_alive,
    )


async def _send_text(writer: asyncio.StreamWriter, status: int, text: str,
                     content_type: str = "text/plain; charset=utf-8",
                     keep_alive: bool = True) -> None:
    await _send_body(
        writer, status, text.encode("utf-8"), content_type, None, keep_alive
    )


async def _send_body(writer: asyncio.StreamWriter, status: int, body: bytes,
                     content_type: str,
                     extra_headers: Optional[Dict[str, str]],
                     keep_alive: bool) -> None:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()
