"""`RuntimeService`: the asyncio multi-tenant front door of the runtime.

The fair-share :class:`~repro.runtime.scheduler.Scheduler` is a library
object — a caller constructs it and blocks threads on batch handles.
This module promotes it to a *service*: a long-running object many
concurrent (async) clients talk to through four calls::

    service = RuntimeService()
    token = service.register_client("alice", weight=2,
                                    quota=ClientQuota(max_in_flight_jobs=8))

    job = await service.submit(circuits, "noisy:ibmqx4", shots=2048,
                               seed=7, token=token)
    async for finished in job.as_completed():     # streaming collection
        ...
    results = await job.result()                  # or bulk collection

    async for handle in service.as_completed([job, other, third]):
        ...                                       # cross-submission stream

Design rules:

* **Never block the event loop.**  Submission is admission-control math
  plus a queue insert; completion is bridged from the executor futures by
  callbacks (:meth:`Job.add_done_callback` →
  ``loop.call_soon_threadsafe``), not by polling threads; result
  *collection* (which may merge chunks or lazily re-run a derived job)
  runs in the loop's default thread pool.
* **Admission before execution.**  Authentication
  (:mod:`repro.service.auth`), per-client concurrency quotas and
  shots/sec token buckets (:mod:`repro.service.quota`) gate ``submit()``
  with typed errors — or, under ``over_quota="queue"``, with async
  backpressure.  The scheduler's queue policies (deadlines, preemption,
  cost-model width planning) act after admission.
* **Counts are sacred.**  The service adds *when* and *whether*, never
  *what*: everything flows through the same ``Scheduler`` → ``execute()``
  stack, so a seeded submission's counts are bit-identical to calling
  :func:`repro.runtime.execute.execute` directly
  (``tests/service/test_service.py`` pins it).
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import threading
import time
from typing import AsyncIterator, Dict, List, Optional

from repro.exceptions import (
    JobError,
    QueueTimeout,
    ScopeDenied,
    ServiceError,
    ServiceOverloaded,
    UnknownJob,
)
from repro.obs.metrics import DEFAULT_REGISTRY
from repro.obs.trace import Span, tracing_enabled
from repro.runtime.scheduler import ScheduledBatch, Scheduler
from repro.runtime.store import CacheStore, default_cache_dir
from repro.service.accounting import CostLedger
from repro.service.auth import AuthenticationError, ClientIdentity, TokenAuthenticator
from repro.service.journal import JobJournal
from repro.service.quota import (
    UNLIMITED,
    ClientQuota,
    QuotaExceeded,
    RateLimited,
    TokenBucket,
)
from repro.service.stats import ClientStats, LatencyWindow, RateMeter

logger = logging.getLogger("repro.service")

#: Batch states in which a handle's work is finished even if the
#: settlement callback has not reached the event loop yet.
_TERMINAL_STATUSES = ("done", "failed", "dropped", "cancelled")

#: Fallback id source for journal-less services.  A journaled service
#: allocates ids from the journal instead, so they stay monotonic across
#: restarts.
_service_job_counter = itertools.count(1)

# Process-wide service instruments (shared across service instances —
# they describe the process, like the pool and cache collectors).  Hot
# paths touch pre-created instruments only; labeled variants are
# pre-created per known terminal status / rejection reason so a storm
# never takes the registry lock.
_M_SUBMITTED = DEFAULT_REGISTRY.counter(
    "repro_service_submitted_jobs_total", help="Jobs admitted by submit()"
)
_M_SETTLED = {
    status: DEFAULT_REGISTRY.counter(
        "repro_service_settled_jobs_total",
        {"status": status},
        help="Jobs settled, by terminal status",
    )
    for status in _TERMINAL_STATUSES
}
_M_REJECTED = {
    reason: DEFAULT_REGISTRY.counter(
        "repro_service_rejected_total",
        {"reason": reason},
        help="Submissions rejected before admission",
    )
    for reason in ("auth", "quota", "rate", "overload")
}
_M_SETTLEMENT_ERRORS = {
    stage: DEFAULT_REGISTRY.counter(
        "repro_service_settlement_errors_total",
        {"stage": stage},
        help="Settlement bookkeeping failures, by stage",
    )
    for stage in ("collect", "journal", "ledger")
}
_M_QUEUE_WAIT = DEFAULT_REGISTRY.histogram(
    "repro_service_queue_wait_seconds",
    help="Seconds batches spent in the fair-share queue",
)
_M_JOB_LATENCY = DEFAULT_REGISTRY.histogram(
    "repro_service_job_latency_seconds",
    help="Submit-to-settle seconds per submission",
)


class ServiceJob:
    """One submission's handle: a stable id plus async status/result APIs.

    Created by :meth:`RuntimeService.submit`; awaiting the handle (or
    calling :meth:`result`) yields the submission's ordered result list.
    The handle settles exactly once — on completion, failure, queue-drop,
    or cancellation — and :meth:`RuntimeService.as_completed` streams
    handles in settle order.
    """

    def __init__(
        self, service: "RuntimeService", client: str, batch: ScheduledBatch,
        size: int, loop: asyncio.AbstractEventLoop,
        job_id: Optional[int] = None,
    ) -> None:
        numeric = job_id if job_id is not None else next(_service_job_counter)
        self.journal_id = int(numeric)
        self.job_id = f"svc-{self.journal_id}"
        self.client = client
        self.batch = batch
        self.size = size
        self._service = service
        self._loop = loop
        self._dispatched = asyncio.Event()
        self._settled = asyncio.Event()
        # Accounting references, attached by submit()/recover(): what this
        # job ran, so settlement can price it against the cost model.
        self._circuits = None
        self._backend = None
        self._shots = None
        # Trace plumbing, attached by submit()/_resubmit(): the root span
        # of this submission's trace tree and the open "settle" stage.
        self._span: Optional[Span] = None
        self._settle_span: Optional[Span] = None

    # -- lifecycle -------------------------------------------------------

    def status(self) -> str:
        """Return ``"queued"``, ``"running"``, ``"done"``, ``"failed"``,
        ``"dropped"`` or ``"cancelled"`` (the batch states, service-side)."""
        return self.batch.status()

    def done(self) -> bool:
        """Return ``True`` once the handle has settled (any terminal state)."""
        return self._settled.is_set()

    def cancel(self) -> bool:
        """Cancel: dequeue while queued, else cancel the not-yet-run jobs."""
        return self.batch.cancel()

    async def wait(self, timeout: Optional[float] = None) -> "ServiceJob":
        """Wait until the handle settles; returns ``self`` (never raises
        for job failure — inspect :meth:`status` / collect to surface it)."""
        await self._await_settled(timeout)
        return self

    async def _await_settled(self, timeout: Optional[float]) -> None:
        try:
            await asyncio.wait_for(self._settled.wait(), timeout)
        except asyncio.TimeoutError:
            status = self.batch.status()
            if status == "queued":
                # Raises the typed QueueTimeout with position + wait time.
                self.batch.jobs(timeout=0)
            if status in _TERMINAL_STATUSES:
                # Settle/timeout race: the batch finished, but the
                # call_soon_threadsafe settlement callback has not run on
                # the loop yet (it may even be queued behind this very
                # wakeup).  The job IS finished — treating it as a timeout
                # hands the caller a spurious JobError for completed work.
                return
            raise JobError(
                f"{self.job_id} not finished within {timeout}s"
            ) from None

    # -- collection ------------------------------------------------------

    async def jobs(self, timeout: Optional[float] = None):
        """Wait for dispatch and return the underlying runtime ``JobSet``.

        Raises the batch's typed error (:class:`QueueTimeout` for a
        deadline drop, :class:`~repro.exceptions.JobError` otherwise) when
        the batch never made it out of the queue.
        """
        try:
            await asyncio.wait_for(self._dispatched.wait(), timeout)
        except asyncio.TimeoutError:
            self.batch.jobs(timeout=0)  # raises QueueTimeout while queued
            raise JobError(
                f"{self.job_id} not dispatched within {timeout}s"
            ) from None
        return self.batch.jobs(timeout=0)

    async def result(self, timeout: Optional[float] = None) -> List:
        """Await completion and return the ordered result list.

        Chunk merging (and the rare derived-job fallback simulation) runs
        in the loop's default executor so the event loop never blocks.
        """
        await self._await_settled(timeout)
        jobset = self.batch.jobs(timeout=0)  # raises the typed queue error
        return await self._loop.run_in_executor(None, jobset.result)

    async def counts(self, timeout: Optional[float] = None) -> List:
        """Shorthand for ``[r.counts for r in await job.result()]``."""
        return [result.counts for result in await self.result(timeout)]

    def __await__(self):
        return self.result().__await__()

    def trace(self) -> dict:
        """Return this submission's trace span tree as JSON-safe dicts.

        Safe at any point in the job's life: spans still in flight report
        ``duration_s: null``.  A job submitted while process-wide tracing
        was disabled returns a minimal untraced stub so the wire endpoint
        always has an answer.
        """
        if self._span is not None:
            return self._span.to_dict()
        return {
            "name": "job",
            "span_id": None,
            "start_s": 0.0,
            "duration_s": None,
            "attrs": {
                "job_id": self.job_id,
                "client": self.client,
                "status": self.status(),
                "traced": False,
            },
            "children": [],
        }

    async def as_completed(
        self, timeout: Optional[float] = None
    ) -> AsyncIterator:
        """Yield the submission's runtime ``Job`` objects in completion
        order, each exactly once — cancelled and failed jobs included
        (their ``result()`` raises), so the stream never drops work.

        The async counterpart of
        :meth:`repro.runtime.job.JobSet.as_completed`, driven by future
        done-callbacks instead of a polling thread.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        jobset = await self.jobs(timeout)
        queue: asyncio.Queue = asyncio.Queue()
        for job in jobset:
            job.add_done_callback(
                lambda j: RuntimeService._post(self._loop, queue.put_nowait, j)
            )
        for _ in range(len(jobset)):
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                yield await asyncio.wait_for(queue.get(), remaining)
            except asyncio.TimeoutError:
                raise JobError(
                    f"{self.job_id}: jobs still pending after {timeout}s"
                ) from None

    def __repr__(self) -> str:
        return (
            f"<ServiceJob {self.job_id} client={self.client!r} "
            f"size={self.size} status={self.status()}>"
        )


class RecoveredJob:
    """A settled pre-restart job, reconstructed from its journal record.

    Mirrors the terminal slice of the :class:`ServiceJob` interface —
    ``status``/``done``/``wait``/``result``/``counts``/``cancel`` — so
    tenants polling a ``svc-N`` id across a service restart cannot tell
    the difference.  Counts come straight from the journal, so they are
    bit-identical to what the pre-restart service computed; failures
    re-raise with the journaled type name and message.
    """

    def __init__(self, record: dict) -> None:
        self.journal_id = record["id"]
        self.job_id = record["job_id"]
        self.client = record["client"]
        self.size = record.get("size", len(record.get("fingerprints") or []))
        self._record = record

    def status(self) -> str:
        return self._record["status"]

    def done(self) -> bool:
        return True

    def cancel(self) -> bool:
        return False  # already terminal

    async def wait(self, timeout: Optional[float] = None) -> "RecoveredJob":
        return self

    def trace(self) -> dict:
        """Return the journaled trace span tree for this pre-restart id.

        The pre-restart service journaled the finished tree at settlement
        where it could; records settled without one (older journals,
        tracing disabled, crash before settlement) degrade to a stub
        built from the journaled submit/settle wall-clock timestamps.
        """
        trace = self._record.get("trace")
        if trace is not None:
            return trace
        record = self._record
        duration = None
        if record.get("settled_at") and record.get("submitted_at"):
            duration = max(0.0, record["settled_at"] - record["submitted_at"])
        return {
            "name": "job",
            "span_id": None,
            "start_s": 0.0,
            "duration_s": duration,
            "attrs": {
                "job_id": self.job_id,
                "client": self.client,
                "status": record["status"],
                "recovered": True,
                "traced": False,
            },
            "children": [],
        }

    async def result(self, timeout: Optional[float] = None) -> List:
        """Rebuild the result list from journaled counts, or re-raise."""
        record = self._record
        status = record["status"]
        if status == "done":
            from repro.results.counts import Counts
            from repro.results.result import Result

            counts = record.get("counts") or []
            shots = record.get("shots_out") or [
                sum(c.values()) for c in counts
            ]
            return [
                Result(
                    counts=Counts(c),
                    shots=n,
                    metadata={"recovered": True, "job_id": self.job_id},
                )
                for c, n in zip(counts, shots)
            ]
        error = record.get("error") or {}
        message = (
            f"{self.job_id} {status} before restart"
            + (f": [{error['type']}] {error['message']}" if error else "")
        )
        if status == "dropped":
            raise QueueTimeout(message, client=self.client)
        raise JobError(message)

    async def counts(self, timeout: Optional[float] = None) -> List:
        return [result.counts for result in await self.result(timeout)]

    def __await__(self):
        return self.result().__await__()

    def __repr__(self) -> str:
        return (
            f"<RecoveredJob {self.job_id} client={self.client!r} "
            f"size={self.size} status={self.status()}>"
        )


class _ServiceClient:
    """Service-side per-client state: quota machinery and counters."""

    __slots__ = ("identity", "quota", "bucket", "stats", "in_flight_jobs",
                 "condition")

    def __init__(self, identity: ClientIdentity, quota: ClientQuota,
                 clock) -> None:
        self.identity = identity
        self.quota = quota
        self.bucket = (
            TokenBucket(
                quota.shots_per_second,
                quota.burst_shots
                if quota.burst_shots is not None
                else quota.shots_per_second,
                clock=clock,
            )
            if quota.shots_per_second is not None
            else None
        )
        self.stats = ClientStats()
        self.in_flight_jobs = 0
        self.condition: Optional[asyncio.Condition] = None


class RuntimeService:
    """A long-running multi-tenant async service over the runtime stack.

    Parameters
    ----------
    authenticator:
        Token resolver (default: a fresh
        :class:`~repro.service.auth.TokenAuthenticator` honouring
        ``allow_anonymous``).
    default_quota:
        :class:`~repro.service.quota.ClientQuota` applied to clients
        registered without one (and to anonymous submissions); default
        unlimited.
    allow_anonymous:
        Accept token-less submissions under the shared ``"anonymous"``
        client (default ``True`` — turn off for real multi-tenancy).
    preempt_after / width_planning:
        Queue policies, forwarded to the scheduler: boost batches queued
        longer than ``preempt_after`` seconds, and size each dispatch's
        pool width from the cost model (on by default — the service's
        whole point is many concurrent clients sharing one machine).
    breaker:
        Per-backend circuit-breaker policy, forwarded to the scheduler:
        ``None``/``True`` for the default thresholds, ``False`` to
        disable, or a dict of
        :class:`~repro.runtime.breaker.CircuitBreaker` kwargs.
    max_queue_depth:
        Load-shedding watermark: submissions arriving while the
        scheduler queue already holds this many batches are rejected
        with :class:`~repro.exceptions.ServiceOverloaded` (a 503 with
        ``Retry-After`` on the wire) instead of deepening the queue.
        ``None`` (default) never sheds.
    max_in_flight / executor / max_workers / schedule:
        Forwarded to the underlying
        :class:`~repro.runtime.scheduler.Scheduler`.
    cache_dir:
        Root for the service's durable state (``<cache_dir>/service/``:
        job journal, cost ledgers, hashed token records).  Defaults to
        ``$REPRO_CACHE_DIR``; ``None`` with the variable unset means no
        durability.
    journal / accounting:
        The write-ahead :class:`~repro.service.journal.JobJournal` and
        per-tenant :class:`~repro.service.accounting.CostLedger`.  Each
        accepts an instance, ``False`` (disable), or ``None`` (default):
        auto-construct under ``cache_dir`` when one resolves.
    cost_weighted_shares:
        When ``True`` (default ``False``), settled jobs feed the cost
        ledger back into scheduler fair-share weights — heavy spenders
        are nudged down, light ones up (see
        :meth:`~repro.service.accounting.CostLedger.effective_weight`).
    cost_model:
        :class:`~repro.runtime.profile.CostModel` pricing settled jobs
        for the ledger (default: the process-wide model).
    clock / sleep:
        Injectable monotonic clock and async sleep, used together by the
        rate limiter (``clock`` feeds the token buckets, ``sleep`` paces
        ``over_quota="queue"`` backpressure).  They must agree: a
        test-injected fake clock needs a matching fake sleep that
        advances it, or queued rate-limited submissions wait on real
        time the fake clock never reaches.

    One service binds to one event loop (the loop of its first async
    call); the scheduler and executor machinery below it remain plain
    threads and processes.
    """

    def __init__(
        self,
        authenticator: Optional[TokenAuthenticator] = None,
        default_quota: Optional[ClientQuota] = None,
        allow_anonymous: bool = True,
        max_in_flight: Optional[int] = None,
        executor: Optional[str] = None,
        max_workers: Optional[int] = None,
        schedule: Optional[str] = None,
        preempt_after: Optional[float] = None,
        width_planning: bool = True,
        breaker=None,
        max_queue_depth: Optional[int] = None,
        clock=time.monotonic,
        sleep=asyncio.sleep,
        cache_dir: Optional[str] = None,
        journal=None,
        accounting=None,
        cost_weighted_shares: bool = False,
        cost_model=None,
    ) -> None:
        resolved_dir = cache_dir if cache_dir is not None else default_cache_dir()
        if authenticator is not None:
            self.authenticator = authenticator
        else:
            auth_store = (
                CacheStore(
                    maxsize=1024,
                    cache_dir=resolved_dir,
                    namespace="service/auth",
                    disk_maxsize=None,
                )
                if resolved_dir
                else None
            )
            self.authenticator = TokenAuthenticator(
                allow_anonymous=allow_anonymous, store=auth_store
            )
        if journal is None:
            self.journal = JobJournal(cache_dir=resolved_dir) if resolved_dir else None
        else:
            self.journal = journal or None  # False disables
        if accounting is None:
            self.accounting = (
                CostLedger(cache_dir=resolved_dir) if resolved_dir else None
            )
        else:
            self.accounting = accounting or None  # False disables
        self.cost_weighted_shares = bool(cost_weighted_shares)
        if cost_model is not None:
            self._cost_model = cost_model
        else:
            from repro.runtime.profile import DEFAULT_COST_MODEL

            self._cost_model = DEFAULT_COST_MODEL
        self.default_quota = (
            default_quota if default_quota is not None else UNLIMITED
        )
        self.scheduler = Scheduler(
            max_in_flight=max_in_flight,
            executor=executor,
            max_workers=max_workers,
            schedule=schedule,
            require_registration=True,
            preempt_after=preempt_after,
            width_planning=width_planning,
            breaker=breaker,
        )
        if max_queue_depth is not None and int(max_queue_depth) < 1:
            raise ServiceError(
                f"max_queue_depth must be a positive integer or None, "
                f"got {max_queue_depth!r}"
            )
        self.max_queue_depth = (
            int(max_queue_depth) if max_queue_depth is not None else None
        )
        self._draining = False
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._clients: Dict[str, _ServiceClient] = {}
        self._jobs: Dict[str, object] = {}  # job_id -> ServiceJob/RecoveredJob
        self._backend_cache: Dict[str, object] = {}  # spec -> resolved backend
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._rejected_auth = 0
        self._settlement_errors = 0
        self._settlement_warned: set = set()  # (stage, exc type) seen
        self._queue_latency = LatencyWindow()
        self._completions = RateMeter(clock=clock)
        self._started = clock()
        if self.authenticator.allow_anonymous:
            self.scheduler.client(TokenAuthenticator.ANONYMOUS, weight=1)
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Expose this service's live gauges through the registry.

        Registered under the fixed collector name ``"service"`` —
        replace-by-name means the newest service instance owns the slot
        (the common case is one per process; tests churn through many).
        The weakref keeps dead instances collectable.
        """
        import weakref

        ref = weakref.ref(self)

        def collect():
            service = ref()
            if service is None:
                return []
            with service._lock:
                clients = dict(service._clients)
                rejected_auth = service._rejected_auth
                settlement_errors = service._settlement_errors
            samples = [
                ("repro_service_uptime_seconds", None,
                 service._clock() - service._started),
                ("repro_service_jobs_per_second", None,
                 service._completions.rate()),
                ("repro_service_completed_jobs", None,
                 service._completions.total, "counter"),
                ("repro_service_rejected_auth", None, rejected_auth,
                 "counter"),
                ("repro_service_settlement_errors", None, settlement_errors,
                 "counter"),
                ("repro_service_known_jobs", None, len(service._jobs)),
                ("repro_service_clients", None, len(clients)),
            ]
            for name, state in clients.items():
                labels = {"client": name}
                samples.append(
                    ("repro_service_client_in_flight_jobs", labels,
                     state.in_flight_jobs)
                )
                snapshot = state.stats.snapshot()
                for field in ("submitted_jobs", "completed_jobs"):
                    samples.append(
                        (f"repro_service_client_{field}_total", labels,
                         snapshot.get(field, 0), "counter")
                    )
            return samples

        DEFAULT_REGISTRY.register_collector("service", collect)

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------

    def register_client(
        self,
        name: str,
        token: Optional[str] = None,
        weight: int = 1,
        quota: Optional[ClientQuota] = None,
        scopes=None,
        expires_in: Optional[float] = None,
        **metadata,
    ) -> str:
        """Register a tenant and return its bearer token.

        ``weight`` feeds the scheduler's weighted round-robin; ``quota``
        (default: the service's ``default_quota``) bounds the client's
        concurrency and shots/sec.  ``scopes`` (default
        ``("submit", "read")``) and ``expires_in`` seconds attach to the
        *token*.  Re-registering the same token is an explicit policy
        update; issuing an additional token for a name requires the same
        weight/quota (a mismatch raises
        :class:`~repro.exceptions.RegistrationConflict` — one client,
        one policy).
        """
        token = self.authenticator.register(
            name, token=token, weight=weight, quota=quota,
            scopes=scopes, expires_in=expires_in, **metadata
        )
        self.scheduler.client(name, weight=weight)
        identity = ClientIdentity(name, weight, quota, dict(metadata))
        effective = quota if quota is not None else self.default_quota
        with self._lock:
            state = self._clients.get(name)
            if state is None:
                self._clients[name] = _ServiceClient(
                    identity, effective, self._clock
                )
            else:
                # Re-registration updates policy but keeps counters.
                fresh = _ServiceClient(identity, effective, self._clock)
                state.identity = identity
                state.quota = effective
                state.bucket = fresh.bucket
        return token

    def _client_state(self, identity: ClientIdentity) -> _ServiceClient:
        with self._lock:
            state = self._clients.get(identity.name)
            if state is None:
                quota = (
                    identity.quota
                    if identity.quota is not None
                    else self.default_quota
                )
                state = _ServiceClient(identity, quota, self._clock)
                self._clients[identity.name] = state
            return state

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def _bind_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise ServiceError(
                "RuntimeService is bound to another event loop; create one "
                "service per loop"
            )
        return loop

    @staticmethod
    def _batch_shape(circuits, shots) -> (int, int):
        """Return ``(num_circuits, total_shots)`` for admission math.

        ``circuits`` must already be a single circuit or a materialized
        sequence — :meth:`submit` listifies iterators before admission so
        a generator is not exhausted here and then replayed empty into
        the scheduler.
        """
        from repro.circuits.circuit import QuantumCircuit

        size = 1 if isinstance(circuits, QuantumCircuit) else len(circuits)
        if isinstance(shots, (list, tuple)):
            total = sum(int(s) for s in shots)
        else:
            total = int(shots) * size
        return size, total

    def _check_admission_open(self, state: _ServiceClient) -> None:
        """Shed load before any admission math runs.

        Raises :class:`ServiceOverloaded` (the wire's 503 +
        ``Retry-After``) while the service is draining or the scheduler
        queue sits at the ``max_queue_depth`` watermark.  Shedding comes
        before quota/rate admission on purpose: an overloaded service
        must not debit a client's token bucket for work it refuses.
        """
        if self._draining:
            state.stats.bump("rejected_overload")
            _M_REJECTED["overload"].inc()
            raise ServiceOverloaded(
                "service is draining and no longer accepts submissions",
                retry_after=5.0,
                reason="draining",
            )
        if self.max_queue_depth is None:
            return
        depth = self.scheduler.queue_depth()
        if depth >= self.max_queue_depth:
            state.stats.bump("rejected_overload")
            _M_REJECTED["overload"].inc()
            raise ServiceOverloaded(
                f"scheduler queue holds {depth} batch(es), at the "
                f"load-shedding watermark of {self.max_queue_depth}",
                retry_after=1.0,
                queue_depth=depth,
                limit=self.max_queue_depth,
            )

    def _try_admit(self, state: _ServiceClient, size: int, total_shots: int):
        """One admission attempt; returns ``(kind, retry_after)``.

        ``kind`` is ``"ok"`` (in-flight charged, bucket debited),
        ``"quota"`` (concurrency limit) or ``"rate"`` (bucket empty,
        ``retry_after`` seconds until it refills enough).

        A single submission larger than the whole concurrency limit is
        admitted once nothing else is in flight (debt model, matching
        ``Scheduler._admits`` and :class:`TokenBucket`) — otherwise the
        ``"queue"`` policy would wait on a settle that can never come.
        """
        with self._lock:
            limit = state.quota.max_in_flight_jobs
            if limit is not None and state.in_flight_jobs + size > limit:
                if not (size > limit and state.in_flight_jobs == 0):
                    return "quota", None
            if state.bucket is not None:
                retry_after = state.bucket.acquire(total_shots)
                if retry_after > 0:
                    return "rate", retry_after
            state.in_flight_jobs += size
            return "ok", None

    async def submit(
        self,
        circuits,
        backend,
        shots=1024,
        seed=None,
        token: Optional[str] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
        deadline_action: str = "drop",
        **options,
    ) -> ServiceJob:
        """Authenticate, admit and queue a submission; return its handle.

        ``circuits``/``backend``/``shots``/``seed``/``**options`` are
        :func:`repro.runtime.execute.execute` arguments, ``priority`` /
        ``deadline`` / ``deadline_action`` are scheduler queue policy.
        Raises :class:`AuthenticationError`, :class:`QuotaExceeded` or
        :class:`RateLimited` (typed, with retry telemetry) for rejected
        submissions — or, for ``over_quota="queue"`` clients, applies
        backpressure by awaiting capacity instead.  A draining or
        queue-saturated service rejects with
        :class:`~repro.exceptions.ServiceOverloaded`, and a backend
        whose circuit breaker is open with
        :class:`~repro.exceptions.CircuitOpen` — both carry
        ``retry_after`` so clients can back off honestly.
        """
        from repro.circuits.circuit import QuantumCircuit

        loop = self._bind_loop()
        try:
            identity = self.authenticator.authenticate(token, scope="submit")
        except (AuthenticationError, ScopeDenied):
            with self._lock:
                self._rejected_auth += 1
            _M_REJECTED["auth"].inc()
            raise
        state = self._client_state(identity)
        self._check_admission_open(state)
        if not isinstance(circuits, QuantumCircuit):
            circuits = list(circuits)  # admission math must not eat iterators
        size, total_shots = self._batch_shape(circuits, shots)
        root_span = None
        admission_span = None
        if tracing_enabled():
            root_span = Span(
                "job",
                {"client": identity.name, "size": size, "shots": total_shots},
            )
            admission_span = root_span.child("admission")
        while True:
            kind, retry_after = self._try_admit(state, size, total_shots)
            if kind == "ok":
                break
            if state.quota.over_quota == "reject":
                if kind == "quota":
                    state.stats.bump("rejected_quota")
                    _M_REJECTED["quota"].inc()
                    raise QuotaExceeded(
                        f"client {identity.name!r} has "
                        f"{state.in_flight_jobs} job(s) in flight; "
                        f"{size} more would exceed its limit of "
                        f"{state.quota.max_in_flight_jobs}",
                        client=identity.name,
                        in_flight=state.in_flight_jobs,
                        limit=state.quota.max_in_flight_jobs,
                    )
                state.stats.bump("rejected_rate")
                _M_REJECTED["rate"].inc()
                raise RateLimited(
                    f"client {identity.name!r} exceeded "
                    f"{state.quota.shots_per_second:g} shots/sec; retry in "
                    f"{retry_after:.3f}s",
                    client=identity.name,
                    retry_after=retry_after,
                )
            # Backpressure: wait for capacity without blocking the loop.
            state.stats.bump("queued_waits")
            if admission_span is not None:
                admission_span.event("backpressure", kind=kind)
            if kind == "rate":
                await self._sleep(retry_after)
            else:
                if state.condition is None:
                    state.condition = asyncio.Condition()
                async with state.condition:
                    await state.condition.wait()
        if admission_span is not None:
            admission_span.finish()
        numeric_id = (
            self.journal.next_id()
            if self.journal is not None
            else next(_service_job_counter)
        )
        circuit_list = (
            [circuits] if isinstance(circuits, QuantumCircuit) else circuits
        )
        journaled = False
        try:
            if self.journal is not None:
                # Write-ahead: the record must exist before the scheduler
                # can possibly run the job, so a crash in between errs
                # toward re-running (safe — counts are a pure function of
                # circuit/backend/shots/seed), never toward losing it.
                self.journal.record_submission(
                    numeric_id,
                    identity.name,
                    circuit_list,
                    backend,
                    shots,
                    seed,
                    priority=priority,
                    weight=identity.weight,
                    options=options,
                )
                journaled = True
            batch = self.scheduler.submit(
                circuits,
                backend,
                shots=shots,
                seed=seed,
                client=identity.name,
                priority=priority,
                deadline=deadline,
                deadline_action=deadline_action,
                trace_span=root_span,
                **options,
            )
        except BaseException as exc:
            # Roll back admission in full: the concurrency charge AND the
            # shots already debited from the rate bucket, then wake any
            # over-quota waiters blocked on the freed capacity.
            with self._lock:
                state.in_flight_jobs -= size
                if state.bucket is not None:
                    state.bucket.credit(total_shots)
            if state.condition is not None:
                asyncio.ensure_future(self._notify(state.condition))
            if journaled:
                # Never leave an unsettled record for work the scheduler
                # refused — recovery would re-run a submission the tenant
                # saw rejected.
                self.journal.record_settlement(numeric_id, "failed", error=exc)
            raise
        state.stats.bump("submitted_batches")
        state.stats.bump("submitted_jobs", size)
        _M_SUBMITTED.inc(size)
        handle = ServiceJob(self, identity.name, batch, size, loop,
                            job_id=numeric_id)
        handle._circuits = circuit_list
        handle._backend = backend
        handle._shots = shots
        if root_span is not None:
            root_span.set(
                job_id=handle.job_id,
                backend=backend if isinstance(backend, str)
                else getattr(backend, "name", None),
            )
            handle._span = root_span
        with self._lock:
            self._jobs[handle.job_id] = handle
        # The bridge out of the threaded scheduler: fires on dispatch,
        # dispatch failure, deadline drop or queue-side cancel — possibly
        # on the dispatcher thread — and hops onto the loop.
        batch.add_dispatch_callback(
            lambda _batch: self._post(loop, self._on_left_queue, handle)
        )
        return handle

    @staticmethod
    def _post(loop: asyncio.AbstractEventLoop, fn, *args) -> None:
        """``call_soon_threadsafe`` tolerant of a loop closed mid-teardown."""
        try:
            loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass  # the owning loop is gone; nobody is awaiting the handle

    # ------------------------------------------------------------------
    # Settlement (event-loop thread)
    # ------------------------------------------------------------------

    def _on_left_queue(self, handle: ServiceJob) -> None:
        """The handle's batch left the queue: record latency, arm
        completion callbacks (or settle immediately on a queue-side
        terminal state)."""
        handle._dispatched.set()
        batch = handle.batch
        if batch.dispatched_at is not None:
            wait = batch.wait_time()
            self._queue_latency.add(wait)
            _M_QUEUE_WAIT.observe(wait)
            state = self._clients.get(handle.client)
            if state is not None:
                state.stats.queue_latency.add(wait)
        status = batch.status()
        if status in ("failed", "dropped", "cancelled"):
            self._settle(handle)
            return
        jobset = batch._jobset
        remaining = len(jobset.jobs)
        if remaining == 0:
            self._settle(handle)
            return
        countdown = {"left": remaining}
        lock = threading.Lock()

        def job_done(_job) -> None:
            with lock:
                countdown["left"] -= 1
                if countdown["left"]:
                    return
            self._post(handle._loop, self._settle, handle)

        for job in jobset:
            job.add_done_callback(job_done)

    def _settle(self, handle: ServiceJob) -> None:
        """Terminal bookkeeping; runs on the loop exactly once per handle."""
        if handle._settled.is_set():
            return
        handle._settled.set()
        state = self._clients.get(handle.client)
        status = handle.batch.status()
        if handle._span is not None:
            handle._settle_span = handle._span.child("settle", status=status)
        _M_SETTLED.get(status, _M_SETTLED["done"]).inc(handle.size)
        _M_JOB_LATENCY.observe(
            max(0.0, time.monotonic() - handle.batch.submitted_at)
        )
        if state is not None:
            with self._lock:
                state.in_flight_jobs -= handle.size
            if status == "dropped":
                state.stats.bump("dropped_batches")
            elif status == "cancelled":
                state.stats.bump("cancelled_batches")
            elif status == "failed":
                state.stats.bump("failed_batches")
            else:
                from repro.runtime.job import JobStatus

                jobset = handle.batch._jobset
                statuses = jobset.statuses()
                if any(s is JobStatus.ERROR for s in statuses):
                    state.stats.bump("failed_batches")
                elif any(s is JobStatus.CANCELLED for s in statuses):
                    state.stats.bump("cancelled_batches")
                else:
                    state.stats.bump("completed_batches")
                    state.stats.bump("completed_jobs", handle.size)
                    self._completions.tick(handle.size)
            if state.condition is not None:
                # Wake over-quota waiters; we are already on the loop.
                asyncio.ensure_future(self._notify(state.condition))
        if self.journal is not None or self.accounting is not None:
            # Journal/ledger writes and result collection are blocking
            # I/O — off the loop with them.  A closing loop leaves the
            # record unsettled, which recovery treats as re-runnable.
            try:
                handle._loop.run_in_executor(
                    None, self._record_settlement, handle
                )
            except RuntimeError:
                self._finalize_trace(handle, status)
        else:
            self._finalize_trace(handle, status)

    def _finalize_trace(self, handle: ServiceJob, terminal: str):
        """Close the handle's settle and root spans; return the tree.

        Idempotent (span ``finish`` is).  Returns the JSON-safe span tree
        for journaling, or ``None`` for an untraced handle.
        """
        span = handle._span
        if span is None:
            return None
        if handle._settle_span is not None:
            handle._settle_span.finish()
        if span.end_s is None:
            span.set(status=terminal)
        span.finish()
        return span.to_dict()

    @staticmethod
    async def _notify(condition: asyncio.Condition) -> None:
        async with condition:
            condition.notify_all()

    def _record_settlement(self, handle: ServiceJob) -> None:
        """Journal a handle's terminal outcome and charge its ledger.

        Runs in the loop's default executor: collecting results (chunk
        merging) and the store writes both block.  Mirrors the status
        logic of :meth:`_settle`; never raises — durability bookkeeping
        must not take the service down — but never *swallows* either: a
        failed journal write means recovery will re-run this job, a
        failed ledger charge under-bills the tenant, so each failure is
        counted (``stats()["settlement_errors"]``) and logged once per
        failure class via :meth:`_note_settlement_error`.
        """
        try:
            status = handle.batch.status()
            counts = shots_out = error = None
            if status in ("failed", "dropped", "cancelled"):
                terminal = status
                error = handle.batch._error
            else:
                from repro.runtime.job import JobStatus

                jobset = handle.batch._jobset
                statuses = jobset.statuses()
                if any(s is JobStatus.ERROR for s in statuses):
                    terminal = "failed"
                    error = next(
                        (job._error for job in jobset.jobs
                         if job._error is not None),
                        None,
                    )
                elif any(s is JobStatus.CANCELLED for s in statuses):
                    terminal = "cancelled"
                else:
                    terminal = "done"
                    results = jobset.result()
                    counts = [dict(r.counts) for r in results]
                    shots_out = [r.shots for r in results]
        except Exception as exc:
            self._note_settlement_error("collect", handle, exc)
            self._finalize_trace(handle, handle.batch.status())
            return
        trace = self._finalize_trace(handle, terminal)
        if self.journal is not None:
            try:
                self.journal.record_settlement(
                    handle.journal_id, terminal,
                    counts=counts, shots=shots_out, error=error,
                    trace=trace,
                )
            except Exception as exc:
                self._note_settlement_error("journal", handle, exc)
        if terminal == "done" and self.accounting is not None:
            try:
                self._charge(handle)
            except Exception as exc:
                self._note_settlement_error("ledger", handle, exc)

    def _note_settlement_error(self, stage: str, handle: ServiceJob,
                               exc: Exception) -> None:
        """Account for a failed settlement write instead of swallowing it.

        Every failure bumps the ``settlement_errors`` counter surfaced by
        :meth:`stats` (and the per-stage registry counter); every failure
        is also recorded as a structured ``settlement_error`` event on
        the owning job's trace span, so the *which job* question the
        once-per-class log line cannot answer is answered by the trace.
        The first failure of each ``(stage, exception class)`` pair
        additionally logs a warning — once, so a wedged disk under a
        storm does not turn the log into the bottleneck.
        """
        key = (stage, type(exc))
        with self._lock:
            self._settlement_errors += 1
            first = key not in self._settlement_warned
            self._settlement_warned.add(key)
        counter = _M_SETTLEMENT_ERRORS.get(stage)
        if counter is not None:
            counter.inc()
        span = handle._settle_span or handle._span
        if span is not None:
            span.event(
                "settlement_error",
                stage=stage,
                error=type(exc).__name__,
                message=str(exc),
            )
        if first:
            logger.warning(
                "settlement %s failed for %s (%s: %s); counting further "
                "failures of this class in stats()['settlement_errors'] "
                "without logging each one",
                stage, handle.job_id, type(exc).__name__, exc,
            )

    def _resolve_backend_cached(self, backend):
        """Resolve a backend spec for costing, memoized per spec string.

        Resolving ``"noisy:<device>"`` rebuilds the device noise model
        (~10ms); settlements would otherwise pay that per job.  Backend
        *objects* pass through untouched.
        """
        if not isinstance(backend, str):
            return backend
        resolved = self._backend_cache.get(backend)
        if resolved is None:
            from repro.runtime.provider import resolve_backend

            resolved = resolve_backend(backend)
            with self._lock:
                self._backend_cache.setdefault(backend, resolved)
        return resolved

    def _charge(self, handle: ServiceJob) -> None:
        """Charge the tenant's cost ledger for a completed handle and,
        under ``cost_weighted_shares``, rebalance its scheduler weight."""
        _size, total_shots = self._batch_shape(
            handle._circuits if handle._circuits is not None else [],
            handle._shots if handle._shots is not None else 0,
        )
        cost_s = None
        if handle._circuits is not None and handle._backend is not None:
            try:
                cost_s = self._cost_model.estimate_batch(
                    self._resolve_backend_cached(handle._backend),
                    handle._circuits,
                    handle._shots,
                )
            except Exception:
                cost_s = None  # unpriceable: the shots still count
        self.accounting.charge(handle.client, total_shots, cost_s)
        if not self.cost_weighted_shares:
            return
        state = self._clients.get(handle.client)
        if state is None:
            return
        base = state.identity.weight
        target = self.accounting.effective_weight(handle.client, base)
        if self.scheduler.client_weights().get(handle.client) != target:
            self.scheduler.client(handle.client, weight=target)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    async def as_completed(
        self, handles, timeout: Optional[float] = None
    ) -> AsyncIterator[ServiceJob]:
        """Yield each :class:`ServiceJob` as it settles, exactly once.

        Terminal-state agnostic: completed, failed, dropped and cancelled
        handles are all yielded (collecting the unlucky ones raises their
        typed error), so a many-client driver never loses track of work.
        """
        self._bind_loop()
        pending = {
            asyncio.ensure_future(handle.wait()): handle for handle in handles
        }
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            while pending:
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                done, _not_done = await asyncio.wait(
                    pending, timeout=remaining,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    raise JobError(
                        f"{len(pending)} submission(s) still pending after "
                        f"{timeout}s"
                    )
                for task in done:
                    yield pending.pop(task)
        finally:
            for task in pending:
                task.cancel()

    # ------------------------------------------------------------------
    # Durability / recovery
    # ------------------------------------------------------------------

    async def recover(self) -> dict:
        """Restore journaled jobs after a restart; returns what happened.

        Settled records become :class:`RecoveredJob` handles — their
        ``status()``/``result()``/``counts()`` answer for the pre-restart
        ``svc-N`` ids, counts bit-identical because they *are* the
        journaled counts.  Journaled-but-unsettled records are
        re-submitted to the scheduler exactly once (write-ahead means the
        original run may or may not have started; re-running is safe
        because counts are a pure function of circuit/backend/shots/seed
        and the id is reused, so the tenant still sees one job).
        Unsettled records whose payload did not survive pickling are
        settled as failed instead of silently dropped.

        Idempotent: ids already known to this service are skipped, so a
        second ``recover()`` is a no-op.  Returns
        ``{"restored": n, "resubmitted": n, "skipped": n}``.
        """
        loop = self._bind_loop()
        summary = {"restored": 0, "resubmitted": 0, "skipped": 0}
        if self.journal is None:
            return summary
        for record in self.journal.records():
            job_id = record["job_id"]
            with self._lock:
                if job_id in self._jobs:
                    summary["skipped"] += 1
                    continue
            if record["settled"]:
                with self._lock:
                    self._jobs[job_id] = RecoveredJob(record)
                summary["restored"] += 1
                continue
            if not record.get("recoverable", False):
                updated = self.journal.record_settlement(
                    record["id"], "failed",
                    error=ServiceError(
                        "journaled submission did not survive the restart "
                        "(payload was not picklable); re-submit it"
                    ),
                )
                with self._lock:
                    self._jobs[job_id] = RecoveredJob(updated)
                summary["skipped"] += 1
                continue
            handle = self._resubmit(record, loop)
            summary["resubmitted" if handle is not None else "skipped"] += 1
        return summary

    def _resubmit(self, record: dict, loop) -> Optional[ServiceJob]:
        """Re-run one unsettled journal record under its original id.

        Bypasses auth and quota admission — the submission was already
        admitted before the crash; charging it again could wedge recovery
        behind the tenant's own quota.
        """
        name = record["client"]
        weight = max(1, int(record.get("weight", 1)))
        self.scheduler.client(name, weight=weight)
        state = self._client_state(ClientIdentity(name, weight))
        size = record.get("size", len(record["circuits"]))
        with self._lock:
            state.in_flight_jobs += size
        root_span = None
        if tracing_enabled():
            root_span = Span(
                "job",
                {
                    "client": name,
                    "size": size,
                    "job_id": record["job_id"],
                    "resubmitted": True,
                },
            )
        try:
            batch = self.scheduler.submit(
                record["circuits"],
                record["backend"],
                shots=record["shots"],
                seed=record["seed"],
                client=name,
                priority=record.get("priority", 0),
                trace_span=root_span,
                **record.get("options", {}),
            )
        except BaseException as exc:
            with self._lock:
                state.in_flight_jobs -= size
            self.journal.record_settlement(record["id"], "failed", error=exc)
            with self._lock:
                self._jobs[record["job_id"]] = RecoveredJob(
                    self.journal.record(record["id"])
                )
            return None
        state.stats.bump("submitted_batches")
        state.stats.bump("submitted_jobs", size)
        handle = ServiceJob(self, name, batch, size, loop,
                            job_id=record["id"])
        handle._circuits = record["circuits"]
        handle._backend = record["backend"]
        handle._shots = record["shots"]
        handle._span = root_span
        with self._lock:
            self._jobs[handle.job_id] = handle
        batch.add_dispatch_callback(
            lambda _batch: self._post(loop, self._on_left_queue, handle)
        )
        return handle

    def job(self, job_id: str, token: Optional[str] = None):
        """Look a handle up by its stable ``svc-N`` id.

        ``token`` must carry the ``read`` scope and belong to the job's
        owner (or carry ``admin``).  Live :class:`ServiceJob` and
        post-restart :class:`RecoveredJob` handles come back through the
        same call — tenants never need to know a restart happened.
        """
        identity = self.authenticator.authenticate(token, scope="read")
        with self._lock:
            handle = self._jobs.get(job_id)
        if handle is None:
            raise UnknownJob(f"unknown job id {job_id!r}", job_id=str(job_id))
        if identity.name != handle.client and not identity.has_scope("admin"):
            raise ScopeDenied(
                f"client {identity.name!r} may not read job {job_id} "
                f"owned by {handle.client!r}",
                client=identity.name,
                scope="admin",
                granted=identity.scopes,
            )
        return handle

    def status(self, job_id: str, token: Optional[str] = None) -> str:
        """Return the job's terminal-or-live status by ``svc-N`` id."""
        return self.job(job_id, token).status()

    def trace(self, job_id: str, token: Optional[str] = None) -> dict:
        """Return the job's trace span tree by ``svc-N`` id.

        Owner-or-admin scoped like every per-job read.  Works for live
        handles (spans still in flight report ``duration_s: null``) and
        for pre-restart ids whose settled trace was journaled.
        """
        return self.job(job_id, token).trace()

    async def result(
        self, job_id: str, token: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> List:
        """Await and return the ordered result list by ``svc-N`` id."""
        return await self.job(job_id, token).result(timeout)

    async def counts(
        self, job_id: str, token: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> List:
        """Shorthand for ``[r.counts for r in await service.result(...)]``."""
        return [r.counts for r in await self.result(job_id, token, timeout)]

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Snapshot service-wide and per-client statistics.

        ``jobs_per_second`` is the completion rate over the meter's
        sliding window; ``queue_latency`` carries p50/p99/max over the
        recent dispatch waits.  Scheduler-side counters (queue depth,
        preemptions, drops) are folded in so one call tells the whole
        story.
        """
        scheduler = self.scheduler.stats()
        with self._lock:
            clients = dict(self._clients)
            rejected_auth = self._rejected_auth
            settlement_errors = self._settlement_errors
        per_client = {}
        for name, state in clients.items():
            snapshot = state.stats.snapshot()
            snapshot["in_flight_jobs"] = state.in_flight_jobs
            snapshot["weight"] = state.identity.weight
            scheduler_view = scheduler["clients"].get(name)
            if scheduler_view is not None:
                snapshot["scheduler"] = scheduler_view
            per_client[name] = snapshot
        totals = {
            field: sum(c["scheduler"][field] for c in per_client.values()
                       if "scheduler" in c)
            for field in ("preempted_batches", "reprioritized_batches",
                          "dropped_batches")
        }
        return {
            "uptime_s": self._clock() - self._started,
            "jobs_per_second": self._completions.rate(),
            "completed_jobs": self._completions.total,
            "rejected_auth": rejected_auth,
            "settlement_errors": settlement_errors,
            "queued_batches": scheduler["queued_batches"],
            "in_flight_jobs": scheduler["in_flight_jobs"],
            "max_in_flight": scheduler["max_in_flight"],
            "dispatched_batches": scheduler["dispatched_batches"],
            "queue_latency": self._queue_latency.snapshot(),
            **totals,
            "journal": (
                {"records": len(self.journal), "durable": self.journal.durable}
                if self.journal is not None
                else None
            ),
            "accounting": (
                self.accounting.snapshot()
                if self.accounting is not None
                else None
            ),
            "scheduler_weights": self.scheduler.client_weights(),
            "clients": per_client,
        }

    def health(self) -> dict:
        """Liveness + readiness snapshot for ``GET /v1/health``.

        Cheap enough for a load balancer to poll: queue depth, breaker
        and pool state, journal durability — no per-client rollups.
        ``ready`` is the admission answer (would a submission be
        accepted right now, load permitting); ``status`` is ``"ok"``,
        ``"degraded"`` (shedding load or a breaker is open) or
        ``"draining"``.  A not-ready report carries ``retry_after``
        seconds, which the wire endpoint turns into a 503 +
        ``Retry-After``.
        """
        from repro.runtime.pool import pool_stats

        depth = self.scheduler.queue_depth()
        breakers = self.scheduler.breakers()
        pools = pool_stats()
        shedding = (
            self.max_queue_depth is not None and depth >= self.max_queue_depth
        )
        open_breakers = sorted(
            key for key, snap in breakers.items() if snap["state"] == "open"
        )
        if self._draining:
            status, ready = "draining", False
        elif shedding:
            status, ready = "degraded", False
        elif open_breakers:
            status, ready = "degraded", True
        else:
            status, ready = "ok", True
        report = {
            "status": status,
            "ready": ready,
            "draining": self._draining,
            "uptime_s": self._clock() - self._started,
            "queued_batches": depth,
            "max_queue_depth": self.max_queue_depth,
            "open_breakers": open_breakers,
            "breakers": breakers,
            "pools": {
                "active": pools["active"],
                "rebuilds": pools["rebuilds"],
            },
            "journal": (
                {"records": len(self.journal), "durable": self.journal.durable}
                if self.journal is not None
                else None
            ),
        }
        if not ready:
            report["retry_after"] = 5.0 if self._draining else 1.0
        return report

    async def drain(self, timeout: Optional[float] = None) -> dict:
        """Gracefully drain: stop admissions, settle what is in flight.

        From the moment ``drain()`` is entered, new submissions are shed
        with :class:`~repro.exceptions.ServiceOverloaded`
        (``reason="draining"``) — and ``health()`` reports
        ``status="draining"``, so load balancers route elsewhere.
        Queued and in-flight work gets ``timeout`` seconds to settle;
        whatever remains stays journaled as unsettled (write-ahead), so
        a restarted service re-runs it rather than losing it.

        Returns a summary: ``settled`` (everything finished in time),
        the residual ``queued_batches``/``in_flight_jobs``, and
        ``unsettled_records`` still open in the journal.  Admissions
        stay closed afterwards; call :meth:`resume` to re-open them
        (tests do), or :meth:`close` to shut down.
        """
        loop = self._bind_loop()
        with self._lock:
            self._draining = True
        settled = await loop.run_in_executor(
            None, lambda: self.scheduler.wait_idle(timeout)
        )
        scheduler = self.scheduler
        unsettled = 0
        if self.journal is not None:
            try:
                unsettled = len(self.journal.unsettled())
            except Exception:
                # A wedged (or test-stubbed) journal must not turn a
                # graceful drain into a crash; the count is telemetry.
                unsettled = None
        return {
            "settled": bool(settled),
            "queued_batches": scheduler.queue_depth(),
            "in_flight_jobs": scheduler.stats()["in_flight_jobs"],
            "unsettled_records": unsettled,
        }

    def resume(self) -> None:
        """Re-open admissions after a :meth:`drain`."""
        with self._lock:
            self._draining = False

    async def close(self, wait: bool = True) -> None:
        """Shut the scheduler down (drain with ``wait=True``) off-loop."""
        loop = self._bind_loop()
        await loop.run_in_executor(
            None, lambda: self.scheduler.shutdown(wait)
        )

    def shutdown(self, wait: bool = True) -> None:
        """Synchronous shutdown for non-async owners (atexit, tests)."""
        self.scheduler.shutdown(wait)

    async def __aenter__(self) -> "RuntimeService":
        self._bind_loop()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close(wait=exc_info[0] is None)

    def __repr__(self) -> str:
        scheduler = self.scheduler.stats()
        return (
            f"<RuntimeService clients={len(self._clients)} "
            f"queued={scheduler['queued_batches']} "
            f"in_flight={scheduler['in_flight_jobs']}>"
        )
