"""Run results returned by backends and simulators."""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.results.counts import Counts


class Result:
    """The outcome of running a circuit.

    Attributes
    ----------
    counts:
        Histogram over measured classical bits (empty when the circuit has no
        measurements).
    shots:
        Number of shots requested.
    statevector:
        Final statevector when the backend tracks one and the run was
        single-branch (pure, no sampling); otherwise ``None``.
    probabilities:
        Exact classical-outcome distribution when the backend computed one
        (density-matrix and branch-enumeration engines); otherwise ``None``.
    metadata:
        Free-form backend information (engine name, seed, noise model...).
    """

    def __init__(
        self,
        counts: Optional[Counts] = None,
        shots: int = 0,
        statevector: Optional[np.ndarray] = None,
        probabilities: Optional[Dict[str, float]] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.counts = counts if counts is not None else Counts()
        self.shots = int(shots)
        self.statevector = statevector
        self.probabilities = probabilities
        self.metadata = dict(metadata or {})

    def __repr__(self) -> str:
        parts = [f"shots={self.shots}", f"counts={dict(sorted(self.counts.items()))}"]
        if self.statevector is not None:
            parts.append("statevector=<set>")
        if self.probabilities is not None:
            parts.append("probabilities=<set>")
        return f"Result({', '.join(parts)})"
